//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for **plain structs with named fields** —
//! the only shape this workspace derives. Implemented directly on
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline). Generics, enums, tuple structs, and `#[serde(...)]`
//! attributes are rejected with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Struct name + field identifiers, extracted from the derive input.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut trees = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    let name = loop {
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Swallow the attribute group.
                match trees.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub` or `pub(...)`.
                if let Some(TokenTree::Group(g)) = trees.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        trees.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match trees.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                _ => return Err("expected struct name".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("serde_derive shim: enums are not supported".into());
            }
            Some(other) => {
                return Err(format!("unexpected token before struct: {other}"));
            }
            None => return Err("no struct found".into()),
        }
    };

    // Next significant token must be the brace-delimited field list (no
    // generics in this workspace's derived types).
    let body = match trees.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("serde_derive shim: generic structs are not supported".into());
        }
        other => return Err(format!("expected braced struct body, found {other:?}")),
    };

    let mut fields = Vec::new();
    let mut inner = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes and visibility; next ident is the field
        // name; then `:`; then the type runs until a comma at angle-depth 0.
        let field = loop {
            match inner.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match inner.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = inner.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            inner.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in body: {other}")),
                None => break String::new(),
            }
        };
        if field.is_empty() {
            break;
        }
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        let mut angle_depth = 0i32;
        loop {
            match inner.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        fields.push(field);
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the serde shim's `Serialize` (JSON writer) for a named-field
/// struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (i, field) in shape.fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!("::serde::write_key({field:?}, out);\n"));
        body.push_str(&format!(
            "::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');\n");
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}}}\n\
         }}",
        name = shape.name,
    );
    output.parse().unwrap()
}

/// Derives the serde shim's `Deserialize` (JSON-tree reader) for a
/// named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for field in &shape.fields {
        inits.push_str(&format!("{field}: ::serde::field(obj, {field:?})?,\n"));
    }
    let output = format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_json(v: &::serde::value::Value) \
                -> ::std::result::Result<Self, ::std::string::String> {{\n\
                let obj = v.as_object().ok_or_else(|| ::std::format!(\
                    \"expected object for {name}, found {{}}\", v.kind()))?;\n\
                ::std::result::Result::Ok({name} {{\n{inits}}})\n\
            }}\n\
         }}",
        name = shape.name,
    );
    output.parse().unwrap()
}
