//! The parsed-JSON tree that [`Deserialize`](crate::Deserialize) reads
//! from. Numbers keep their source text so integer width and float bit
//! patterns are decided by the typed impl, not by the parser.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its exact source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
