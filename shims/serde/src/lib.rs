//! Offline shim for `serde`: `Serialize` / `Deserialize` traits over a
//! JSON-shaped data model, plus the derive macros (re-exported from the
//! sibling `serde_derive` proc-macro shim).
//!
//! The shim intentionally collapses serde's serializer-agnostic design to
//! the single backend this workspace uses (`serde_json`): `Serialize`
//! writes JSON text directly, `Deserialize` reads from a parsed
//! [`value::Value`] tree. Numbers keep their source text on the way in and
//! are printed with Rust's shortest-roundtrip formatter on the way out, so
//! `f64` survives a file round trip **bit-exactly** — the property the
//! checkpoint tests depend on (the real stack needs `serde_json`'s
//! `float_roundtrip` feature for the same guarantee).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Serializes `self` as JSON text appended to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Reconstructs `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from `v`, with a path-less diagnostic on mismatch.
    fn deserialize_json(v: &Value) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

/// Appends a JSON string literal (with escaping).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` — helper used by the derive expansion.
pub fn write_key(key: &str, out: &mut String) {
    write_json_string(key, out);
    out.push(':');
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*}
}
impl_serialize_display_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's Display for floats is shortest-roundtrip: parsing the
            // text back yields the identical bits.
            let text = self.to_string();
            out.push_str(&text);
        } else {
            // JSON has no literal for NaN/Inf; null round-trips to an error
            // rather than silently corrupting state.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out)
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*}
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(text) => text
                        .parse::<$t>()
                        .map_err(|e| format!("invalid {}: {text:?} ({e})", stringify!($t))),
                    other => Err(format!(
                        "expected {} number, found {}", stringify!($t), other.kind()
                    )),
                }
            }
        }
    )*}
}
impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_json(v: &Value) -> Result<Self, String> {
        match v {
            // Exact: Rust's float parser is correctly rounded, and the
            // writer printed the shortest roundtrip form.
            Value::Number(text) => text
                .parse::<f64>()
                .map_err(|e| format!("invalid f64: {text:?} ({e})")),
            other => Err(format!("expected f64 number, found {}", other.kind())),
        }
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(format!("expected array, found {}", other.kind())),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_json(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize_json(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(format!(
                        "expected {}-tuple, found array of {}", $len, items.len()
                    )),
                    other => Err(format!("expected tuple array, found {}", other.kind())),
                }
            }
        }
    )*}
}
impl_deserialize_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
}

/// Looks up `key` in an object and deserializes it — helper used by the
/// derive expansion.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, String> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize_json(v).map_err(|e| format!("field {key:?}: {e}")),
        None => Err(format!("missing field {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_text_roundtrip_is_bit_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            2f64.powi(-1074), // smallest subnormal
            1.7976931348623157e308,
            -0.0,
            6.02214076e23,
            std::f64::consts::PI,
        ] {
            let mut out = String::new();
            x.serialize_json(&mut out);
            let back = f64::deserialize_json(&Value::Number(out)).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x}");
        }
    }

    #[test]
    fn tuple_and_vec_roundtrip() {
        let v: Vec<(u32, u16, u16)> = vec![(1, 2, 3), (9, 8, 7)];
        let mut out = String::new();
        v.serialize_json(&mut out);
        assert_eq!(out, "[[1,2,3],[9,8,7]]");
    }

    #[test]
    fn strings_escape() {
        let mut out = String::new();
        "a\"b\\c\n".serialize_json(&mut out);
        assert_eq!(out, r#""a\"b\\c\n""#);
    }
}
