//! Offline shim for `crossbeam-deque`: the `Injector` / `Worker` /
//! `Stealer` / `Steal` API implemented with mutex-protected `VecDeque`s.
//! Semantics (each pushed item popped or stolen exactly once; stealers
//! keep the buffer alive independently of the `Worker`) match the real
//! crate; lock-freedom does not, which is fine for the scheduler's
//! correctness tests and coarse-grained economic workloads.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// Queue observed empty.
    Empty,
    /// One task obtained.
    Success(T),
    /// Transient contention; retry.
    Retry,
}

impl<T> Steal<T> {
    /// `true` iff the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// `true` iff the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// `true` iff a task was obtained.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Extracts the task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Returns `self` on success, otherwise evaluates `f`; an `Empty` from
    /// `f` is upgraded to `Retry` if `self` was `Retry`.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Success(t) => Steal::Success(t),
            Steal::Retry => match f() {
                Steal::Empty => Steal::Retry,
                other => other,
            },
            Steal::Empty => f(),
        }
    }
}

/// First `Success` wins; otherwise `Retry` if any attempt was `Retry`.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut saw_retry = false;
        for attempt in iter {
            match attempt {
                Steal::Success(t) => return Steal::Success(t),
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if saw_retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

#[derive(Debug)]
struct Buffer<T> {
    queue: Mutex<VecDeque<T>>,
}

/// A FIFO injector queue shared by all workers.
#[derive(Debug)]
pub struct Injector<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            buf: Arc::new(Buffer {
                queue: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        self.buf.queue.lock().unwrap().push_back(task);
    }

    /// `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.buf.queue.lock().unwrap().is_empty()
    }

    /// Steals one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self.buf.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch into `dest`'s local deque and pops one task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.buf.queue.lock().unwrap();
        let first = match queue.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Move up to half of the remainder (capped) to the worker.
        let grab = (queue.len() / 2).min(16);
        if grab > 0 {
            let mut local = dest.buf.queue.lock().unwrap();
            for _ in 0..grab {
                match queue.pop_front() {
                    Some(t) => local.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

/// Scheduling discipline of a worker's own deque.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// A worker's local deque. Not `Sync`: owned by one thread, exposed to
/// peers through [`Stealer`]s.
#[derive(Debug)]
pub struct Worker<T> {
    buf: Arc<Buffer<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// New FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker {
            buf: Arc::new(Buffer {
                queue: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Fifo,
        }
    }

    /// New LIFO worker queue.
    pub fn new_lifo() -> Self {
        Worker {
            buf: Arc::new(Buffer {
                queue: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Lifo,
        }
    }

    /// A stealer handle onto this worker's deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }

    /// Pushes a task onto the local end.
    pub fn push(&self, task: T) {
        self.buf.queue.lock().unwrap().push_back(task);
    }

    /// Pops from the local end (LIFO: newest first).
    pub fn pop(&self) -> Option<T> {
        let mut queue = self.buf.queue.lock().unwrap();
        match self.flavor {
            Flavor::Lifo => queue.pop_back(),
            Flavor::Fifo => queue.pop_front(),
        }
    }

    /// `true` if the local deque is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.queue.lock().unwrap().is_empty()
    }
}

/// A handle for stealing from one worker's deque (always from the cold
/// end). Cloneable and shareable across threads.
#[derive(Debug)]
pub struct Stealer<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the cold end.
    pub fn steal(&self) -> Steal<T> {
        match self.buf.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// `true` if the observed deque is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.queue.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_batch_moves_work_to_worker() {
        let injector = Injector::new();
        for i in 0..40 {
            injector.push(i);
        }
        let worker = Worker::new_lifo();
        let first = injector.steal_batch_and_pop(&worker);
        assert_eq!(first, Steal::Success(0));
        let mut seen = vec![0];
        while let Some(v) = worker.pop() {
            seen.push(v);
        }
        while let Steal::Success(v) = injector.steal() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn collect_prefers_success() {
        let attempts = vec![Steal::Empty, Steal::Retry, Steal::Success(7)];
        let merged: Steal<i32> = attempts.into_iter().collect();
        assert_eq!(merged, Steal::Success(7));
        let attempts: Vec<Steal<i32>> = vec![Steal::Empty, Steal::Retry];
        let merged: Steal<i32> = attempts.into_iter().collect();
        assert_eq!(merged, Steal::Retry);
        let attempts: Vec<Steal<i32>> = vec![Steal::Empty, Steal::Empty];
        let merged: Steal<i32> = attempts.into_iter().collect();
        assert_eq!(merged, Steal::Empty);
    }

    #[test]
    fn lifo_pop_order() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        let s = w.stealer();
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
    }
}
