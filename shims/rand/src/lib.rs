//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible reimplementation of exactly the
//! surface hddm uses: the [`Rng`] extension methods `gen`, `gen_range`,
//! `gen_bool`, the [`RngCore`] / [`SeedableRng`] traits, and a couple of
//! distributions. Generators live in sibling shims (`rand_chacha`).
//!
//! The shim is deterministic and self-contained; it makes no attempt to
//! reproduce the bit streams of the real `rand` crate, only its contracts
//! (uniformity, range correctness, seed determinism).

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64` by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable "from the uniform distribution over all values" —
/// the shim's stand-in for `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by widening multiply (unbiased enough for
/// simulation workloads; the bias is < 2^-64 · n).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*}
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] exactly as in the real crate.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fills a mutable slice of `Standard` values.
    fn fill<T: Standard>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for v in dest {
            *v = T::sample(self);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (fixed-size byte array in the shim).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator — deterministic across platforms and runs.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 sequence, used for seed expansion and as a cheap
/// general-purpose generator in `rngs`.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The shim's standard generator (SplitMix64-backed).
    #[derive(Clone, Debug)]
    pub struct StdRng(SplitMix64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(SplitMix64::new(u64::from_le_bytes(seed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
