//! Offline shim for `parking_lot`: the poison-free `Mutex` / `Condvar` /
//! `RwLock` API implemented over `std::sync`. Poisoned std locks are
//! recovered transparently (parking_lot has no poisoning), which keeps the
//! cluster communicator's panic-propagation semantics intact.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex with exclusive access"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(reacquired);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// A reader-writer lock with guard-returning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_rendezvous_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let clone = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*clone;
            let mut guard = lock.lock();
            *guard += 1;
            cv.notify_all();
            while *guard < 2 {
                cv.wait(&mut guard);
            }
            *guard
        });
        let (lock, cv) = &*pair;
        {
            let mut guard = lock.lock();
            while *guard < 1 {
                cv.wait(&mut guard);
            }
            *guard += 1;
            cv.notify_all();
        }
        assert_eq!(handle.join().unwrap(), 2);
    }
}
