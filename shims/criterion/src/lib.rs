//! Offline shim for `criterion`: the `criterion_group!`/`criterion_main!`
//! macros, `Criterion`/`BenchmarkGroup`/`Bencher` builders, `BenchmarkId`,
//! `Throughput`, `BatchSize`, and `black_box`. Instead of criterion's
//! statistical analysis it runs each benchmark for a fixed number of
//! timed iterations and prints a mean/min line — enough for the `fig*`
//! and `table*` workflows to get directional numbers, and for
//! `cargo build --benches` / `cargo bench` to work offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per sample (the shim times whole samples).
const ITERS_PER_SAMPLE: usize = 8;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim reads no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into().label, sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benches one function with an input value (criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().label,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: &str,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let full_name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.samples.is_empty() {
        println!("bench {full_name:<48} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|&(elapsed, iters)| elapsed.as_nanos() as f64 / iters.max(1) as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / mean)
        }
        _ => String::new(),
    };
    println!("bench {full_name:<48} mean {mean:>12.1} ns/iter  min {min:>12.1} ns/iter{extra}");
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// (elapsed, iterations) per sample.
    samples: Vec<(Duration, usize)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called in batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up call outside timing.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), ITERS_PER_SAMPLE));
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

/// How much setup product each batch consumes (ignored by the shim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput declaration for rate reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` compound id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("batched"), |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = selftest;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    }

    #[test]
    fn harness_runs_to_completion() {
        selftest();
    }
}
