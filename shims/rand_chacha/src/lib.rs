//! Offline shim for `rand_chacha`: a real ChaCha8 block cipher driven as a
//! counter-mode generator, implementing the `rand` shim's `RngCore` /
//! `SeedableRng`. Statistical quality matches the genuine article; the
//! exact output stream is *not* bit-compatible with the upstream crate
//! (nothing in this workspace depends on upstream bit streams, only on
//! seed determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in self.buffer.iter_mut().zip(&working) {
            *out = *inp;
        }
        for (out, inp) in self.buffer.iter_mut().zip(&self.state) {
            *out = out.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
