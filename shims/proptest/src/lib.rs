//! Offline shim for `proptest`: the `proptest!` macro, `Strategy`
//! combinators (`prop_map`, `prop_flat_map`), range / tuple / `Just` /
//! `any` / `collection::vec` / `sample::select` strategies, and the
//! `prop_assert*` macros — everything this workspace's property suites
//! use, reimplemented deterministically.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   suite seed; with pinned seeds the failure is exactly reproducible,
//!   which replaces shrinking for CI triage.
//! * **Determinism by default.** Each test's RNG is seeded from
//!   [`ProptestConfig::rng_seed`] mixed with the test's name, so runs are
//!   identical across machines and invocations — the de-flaking behavior
//!   the workspace pins explicitly in its suites.

use std::ops::{Range, RangeInclusive};

/// Run-time configuration of a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base seed; mixed with the test name for per-test streams.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: 0x5eed_1dea_cafe_f00d,
        }
    }
}

impl ProptestConfig {
    /// A config with the given number of cases (and the default seed).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a per-test stream from the suite seed and the test name.
    pub fn for_test(base_seed: u64, test_name: &str) -> Self {
        // FNV-1a over the name, folded into the base seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: base_seed ^ hash,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the produced strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values (retries until `f` accepts, capped).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*}
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, mixed-sign, mixed-magnitude values (no NaN/Inf: every
        // caller in this workspace feeds these into numeric kernels).
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exponent = (rng.below(61) as i32) - 30;
        mantissa * 2f64.powi(exponent)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let at = rng.below(self.options.len() as u64) as usize;
            self.options[at].clone()
        }
    }

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }
}

/// Drives one test's cases; called by the `proptest!` expansion.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut rng = TestRng::for_test(config.rng_seed, test_name);
    for case in 0..config.cases {
        if let Err(message) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{total} failed \
                 (suite seed {seed:#x}): {message}",
                total = config.cases,
                seed = config.rng_seed,
            );
        }
    }
}

/// The `proptest!` block: a config header plus `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, stringify!($name), |prop_rng| {
                    $(
                        let $pat = {
                            let strategy = $strat;
                            $crate::Strategy::generate(&strategy, prop_rng)
                        };
                    )+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}: {:?} != {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}: {:?} != {:?}: {}",
                stringify!($left), stringify!($right), left, right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}: both {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// The import surface test files bring in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in -2.0f64..=2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn flat_map_and_select((n, pick) in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::sample::select((0..n).collect::<Vec<_>>()))
        })) {
            prop_assert!(pick < n);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
        }
    }

    #[test]
    fn determinism_across_runs() {
        use super::{Strategy, TestRng};
        let mut a = TestRng::for_test(1, "t");
        let mut b = TestRng::for_test(1, "t");
        let s = (0u32..100, 0.0f64..1.0);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_case_info() {
        super::run_cases(&super::ProptestConfig::with_cases(4), "doomed", |_| {
            Err("boom".into())
        });
    }
}
