//! Offline shim for `serde_json`: [`to_string`] / [`from_str`] over the
//! serde shim's JSON-shaped data model, with a hand-rolled recursive
//! descent parser. Floats round-trip bit-exactly (the writer uses Rust's
//! shortest-roundtrip `Display`, the reader Rust's correctly rounded
//! parser), matching the behavior the real crate only provides with its
//! `float_roundtrip` feature.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Alias of [`to_string`] (the shim has no pretty printer).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses JSON text and deserializes a `T` from it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize_json(&value).map_err(Error)
}

/// Parses JSON text into the generic tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(Error(format!("trailing data at byte {at}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, token: u8) -> Result<(), Error> {
    skip_ws(bytes, at);
    if *at < bytes.len() && bytes[*at] == token {
        *at += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected {:?} at byte {}",
            token as char, *at
        )))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, at);
                let key = match parse_value(bytes, at)? {
                    Value::String(s) => s,
                    other => {
                        return Err(Error(format!(
                            "object key must be string, got {}",
                            other.kind()
                        )))
                    }
                };
                expect(bytes, at, b':')?;
                let value = parse_value(bytes, at)?;
                fields.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected ',' or '}}' at byte {at}",
                            at = *at
                        )))
                    }
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, at)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {at}", at = *at))),
                }
            }
        }
        Some(b'"') => parse_string(bytes, at).map(Value::String),
        Some(b't') => parse_keyword(bytes, at, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, at, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, at, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *at;
            *at += 1;
            while *at < bytes.len()
                && matches!(bytes[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *at += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*at]).map_err(|e| Error(e.to_string()))?;
            Ok(Value::Number(text.to_string()))
        }
        Some(c) => Err(Error(format!(
            "unexpected byte {:?} at {}",
            *c as char, *at
        ))),
    }
}

fn parse_keyword(bytes: &[u8], at: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *at)))
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, Error> {
    debug_assert_eq!(bytes[*at], b'"');
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*at + 1..*at + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                            16,
                        )
                        .map_err(|e| Error(e.to_string()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))?,
                        );
                        *at += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*at..]).map_err(|e| Error(e.to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec_f64_is_bit_exact() {
        let xs: Vec<f64> = vec![0.1, 1.0 / 3.0, -2.5e-17, 7.0, 1e300, 2f64.powi(-1074)];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs.len(), back.len());
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parses_nested_objects() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null, "d": true}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 3);
        assert_eq!(obj[0].0, "a");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0], Value::Number("1".into()));
        assert_eq!(arr.len(), 3);
        assert_eq!(obj[1].1, Value::Null);
        assert_eq!(obj[2].1, Value::Bool(true));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("[1,2] extra").is_err());
        assert!(parse("[1,2,]").is_err());
    }
}
