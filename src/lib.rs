//! # hddm — high-dimensional dynamic model solver
//!
//! An open-source reproduction of Kübler, Mikushin, Scheidegger & Schenk,
//! *"Rethinking large-scale economic modeling for efficiency: optimizations
//! for GPU and Xeon Phi clusters"* (IPDPS 2018): adaptive sparse grids with
//! index compression, vectorized interpolation kernels, a hybrid
//! work-stealing scheduler, a message-passing/cluster-simulation layer, and
//! a time-iteration driver solving stochastic overlapping-generations
//! economies.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`asg`] | `hddm-asg` | hierarchical basis, grids, refinement |
//! | [`compress`] | `hddm-compress` | Sec. IV-B index compression |
//! | [`kernels`] | `hddm-kernels` | gold/x86/avx/avx2/avx512 kernels |
//! | [`gpu`] | `hddm-gpu` | software GPU + cuda kernel |
//! | [`solver`] | `hddm-solver` | Newton/Broyden/LU (Ipopt substitute) |
//! | [`cluster`] | `hddm-cluster` | Comm runtime + scaling simulators |
//! | [`sched`] | `hddm-sched` | work-stealing + hybrid dispatch |
//! | [`olg`] | `hddm-olg` | the stochastic OLG economy |
//! | [`core`] | `hddm-core` | the time-iteration driver |
//! | [`scenarios`] | `hddm-scenarios` | batched multi-calibration sweeps + policy-surface cache |
//! | [`serve`] | `hddm-serve` | scenario serving facade: exact-hit fast path + miss micro-batching |
//! | [`telemetry`] | `hddm-telemetry` | lock-free metrics registry, span timing, JSON/text exposition |
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction inventory.
//!
//! ## End-to-end in eight lines
//!
//! ```
//! use hddm::core::{DriverConfig, OlgStep, TimeIteration};
//! use hddm::olg::{Calibration, OlgModel};
//!
//! // A 4-generation deterministic economy: time iteration must converge
//! // onto the analytic steady state.
//! let model = OlgModel::new(Calibration::deterministic(4, 3));
//! let mut ti = TimeIteration::new(OlgStep::new(model), DriverConfig {
//!     max_steps: 40, tolerance: 1e-9, ..Default::default()
//! });
//! let reports = ti.run();
//! assert!(reports.last().unwrap().sup_change < 1e-9);
//! ```

#![warn(missing_docs)]

pub use hddm_asg as asg;
pub use hddm_cluster as cluster;
pub use hddm_compress as compress;
pub use hddm_core as core;
pub use hddm_gpu as gpu;
pub use hddm_kernels as kernels;
pub use hddm_olg as olg;
pub use hddm_scenarios as scenarios;
pub use hddm_sched as sched;
pub use hddm_serve as serve;
pub use hddm_solver as solver;
pub use hddm_telemetry as telemetry;
