//! Checkpoint/restart round trip through the facade: a `TimeIteration`
//! interrupted mid-run, saved to a JSON file, reloaded, and resumed must
//! land **bit-identically** on the policy of an uninterrupted run — the
//! paper's ε-continuation restart protocol (Sec. V-C, footnote 12)
//! depends on exactly this property.

use hddm::core::{Checkpoint, DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{Calibration, OlgModel, PolicyOracle};
use hddm::sched::PoolConfig;

fn config(max_steps: usize) -> DriverConfig {
    DriverConfig {
        kernel: KernelKind::Avx2,
        start_level: 2,
        max_steps,
        tolerance: 0.0, // run exactly max_steps
        pool: PoolConfig {
            threads: 1,
            grain: 4,
        },
        ..Default::default()
    }
}

fn make_model() -> OlgModel {
    OlgModel::new(Calibration::small(5, 3, 2, 0.03))
}

/// Per-process scratch dir so concurrent `cargo test` invocations on one
/// machine cannot race on the checkpoint files.
fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hddm_roundtrip_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interpolates every discrete state's policy at several probe points and
/// returns the raw f64 bits, so equality means bitwise equality.
fn probe_bits_of(ti: &TimeIteration<OlgStep>, model: &OlgModel) -> Vec<u64> {
    let ndofs = model.ndofs();
    let base = model.steady.state_vector();
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let mut bits = Vec::new();
    for z in 0..model.num_states() {
        for scale in [1.0, 0.9, 1.15] {
            let x: Vec<f64> = base.iter().map(|v| v * scale).collect();
            let mut row = vec![0.0; ndofs];
            oracle.eval(z, &x, &mut row);
            bits.extend(row.iter().map(|v| v.to_bits()));
        }
    }
    bits
}

fn probe_bits(ti: &TimeIteration<OlgStep>) -> Vec<u64> {
    probe_bits_of(ti, &make_model())
}

#[test]
fn mid_run_file_checkpoint_resumes_bit_identically() {
    // Reference: four uninterrupted steps.
    let mut straight = TimeIteration::new(OlgStep::new(make_model()), config(4));
    straight.run();
    let want = probe_bits(&straight);

    // Interrupted: two steps, save, drop everything, load, two more.
    let path = scratch_dir().join("mid_run.json");
    {
        let mut first_half = TimeIteration::new(OlgStep::new(make_model()), config(2));
        first_half.run();
        Checkpoint::capture(&first_half).save(&path).unwrap();
    }
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.step, 2);
    let mut resumed = TimeIteration::resume(OlgStep::new(make_model()), config(2), &loaded);
    resumed.run();
    assert_eq!(resumed.step_index(), 4);

    let got = probe_bits(&resumed);
    assert_eq!(
        got, want,
        "resumed policy diverged bitwise from the uninterrupted run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_load_save_is_textually_stable() {
    // A checkpoint that goes through a file and back must serialize to the
    // identical JSON text: surpluses survive exactly (shortest-roundtrip
    // float formatting), structure arrays survive exactly.
    let mut ti = TimeIteration::new(OlgStep::new(make_model()), config(2));
    ti.run();

    let dir = scratch_dir();
    let path = dir.join("stable.json");
    Checkpoint::capture(&ti).save(&path).unwrap();
    let first_text = std::fs::read_to_string(&path).unwrap();

    let reloaded = Checkpoint::load(&path).unwrap();
    let path2 = dir.join("stable2.json");
    reloaded.save(&path2).unwrap();
    let second_text = std::fs::read_to_string(&path2).unwrap();

    assert_eq!(first_text, second_text, "JSON round trip not stable");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

#[test]
fn checkpoint_resume_with_refinement_enabled() {
    // The restart surface must also carry adaptively refined grids: run
    // with refinement on (small 3-D model so CI stays fast), checkpoint,
    // resume, and compare against the uninterrupted refined run.
    let small = || OlgModel::new(Calibration::small(4, 3, 2, 0.08));
    let mut cfg = config(3);
    cfg.refine_epsilon = Some(5e-4);
    cfg.max_level = 4;

    let mut straight = TimeIteration::new(OlgStep::new(small()), cfg.clone());
    straight.run();
    let want = probe_bits_of(&straight, &small());

    let mut cfg_half = cfg.clone();
    cfg_half.max_steps = 2;
    let mut first_half = TimeIteration::new(OlgStep::new(small()), cfg_half);
    first_half.run();
    let ck = Checkpoint::capture(&first_half);

    let mut cfg_rest = cfg;
    cfg_rest.max_steps = 1;
    let mut resumed = TimeIteration::resume(OlgStep::new(small()), cfg_rest, &ck);
    resumed.run();
    assert_eq!(resumed.step_index(), 3);

    let got = probe_bits_of(&resumed, &small());
    assert_eq!(
        got, want,
        "refined resumed policy diverged bitwise from the uninterrupted run"
    );
}
