//! Integration tests spanning the whole stack: economy → driver → kernels
//! → compression → scheduler, plus the distributed code path over the
//! threaded communicator.

use hddm::cluster::{proportional_ranks, Comm, ThreadComm};
use hddm::core::{DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{Calibration, OlgModel, PolicyOracle};
use hddm::sched::PoolConfig;

fn config(kernel: KernelKind, max_steps: usize) -> DriverConfig {
    DriverConfig {
        kernel,
        start_level: 2,
        max_steps,
        tolerance: 1e-7,
        pool: PoolConfig {
            threads: 2,
            grain: 2,
        },
        ..Default::default()
    }
}

/// The headline economics result at laptop scale: a stochastic OLG economy
/// solved to a recursive equilibrium, with Euler residuals vanishing at
/// grid points under the converged policy.
#[test]
fn stochastic_olg_reaches_equilibrium() {
    let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
    let check_model = model.clone();
    let mut ti = TimeIteration::new(OlgStep::new(model), config(KernelKind::Avx2, 80));
    let reports = ti.run();
    let last = reports.last().unwrap();
    assert!(
        last.sup_change < 1e-7,
        "not converged after {} steps: {}",
        reports.len(),
        last.sup_change
    );

    // Verify the fixed point: solving any grid point against the converged
    // policy must return (numerically) the policy itself.
    let mut oracle = ti.policy.oracle(KernelKind::X86);
    let mut scratch = hddm::olg::PointScratch::default();
    let x = check_model.steady.state_vector();
    for z in 0..check_model.num_states() {
        let mut warm = vec![0.0; check_model.ndofs()];
        oracle.eval(z, &x, &mut warm);
        let solution = check_model
            .solve_point(
                z,
                &x,
                &warm,
                &mut oracle,
                &mut scratch,
                &hddm::solver::NewtonOptions::default(),
            )
            .expect("point solve at equilibrium");
        for (a, s) in solution.savings.iter().enumerate() {
            assert!(
                (s - warm[a]).abs() < 5e-6 * (1.0 + warm[a].abs()),
                "state {z}, savings {a}: resolve {} vs policy {}",
                s,
                warm[a]
            );
        }
    }
}

/// Solution quality in the paper's own termination metric (Sec. V-D:
/// "average error below the satisfactory level of 0.1 percent"): the
/// converged policy's Euler errors along a simulated path must beat 10^-3
/// on average, and must be far smaller than the initial guess's errors.
#[test]
fn converged_policy_passes_the_papers_accuracy_bar() {
    use hddm::olg::{euler_errors_on_path, OlgModel};
    use rand::SeedableRng;

    let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
    let check_model = model.clone();
    let mut ti = TimeIteration::new(OlgStep::new(model), config(KernelKind::Avx2, 80));

    // Errors of the initial (steady-state-constant) policy.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let before = {
        let mut oracle = ti.policy.oracle(KernelKind::Avx2);
        euler_errors_on_path(&check_model, &mut oracle, 100, 10, &mut rng)
    };

    ti.run();

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let after = {
        let mut oracle = ti.policy.oracle(KernelKind::Avx2);
        euler_errors_on_path(&check_model, &mut oracle, 100, 10, &mut rng)
    };

    assert!(
        after.mean_error < 1e-3,
        "paper's 0.1% criterion violated: mean Euler error {}",
        after.mean_error
    );
    assert!(
        after.mean_error < before.mean_error,
        "time iteration did not improve accuracy: {} -> {}",
        before.mean_error,
        after.mean_error
    );
}

/// Every compressed kernel drives the same model to the same answer.
#[test]
fn kernels_are_interchangeable_in_the_driver() {
    let mut finals = Vec::new();
    for kernel in [KernelKind::X86, KernelKind::Avx, KernelKind::Avx512] {
        let model = OlgModel::new(Calibration::deterministic(4, 3));
        let probe = model.steady.state_vector();
        let mut ti = TimeIteration::new(OlgStep::new(model), config(kernel, 40));
        ti.run();
        let mut oracle = ti.policy.oracle(kernel);
        let mut row = vec![0.0; 6];
        oracle.eval(0, &probe, &mut row);
        finals.push(row);
    }
    for other in &finals[1..] {
        for (a, b) in finals[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}

/// The adaptive path: refinement changes per-state grid sizes, and the
/// spread mirrors the paper's observation (Fig. 9 note: 69,026–76,645
/// points across states at convergence — sizes differ per state).
#[test]
fn adaptive_refinement_runs_through_the_driver() {
    let model = OlgModel::new(Calibration::small(4, 3, 2, 0.08));
    let mut driver_config = config(KernelKind::Avx2, 3);
    driver_config.refine_epsilon = Some(5e-4);
    driver_config.max_level = 4;
    let mut ti = TimeIteration::new(OlgStep::new(model), driver_config);
    let reports = ti.run();
    let last = reports.last().unwrap();
    let level2 = hddm::asg::regular_grid_size(3, 2) as usize;
    assert!(
        last.points_per_state.iter().any(|&p| p > level2),
        "refinement never triggered: {:?}",
        last.points_per_state
    );
}

/// Distributed time step over the threaded communicator: ranks split into
/// per-state groups (Fig. 2), solve their share of points, and the merged
/// policy matches the serial run bit-for-bit (same solves, same order).
#[test]
fn distributed_step_matches_serial() {
    let ndofs = 8; // A=5 -> 2·4
    let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));

    // Serial reference: one step from the steady-state initial policy.
    let mut serial = TimeIteration::new(OlgStep::new(model.clone()), config(KernelKind::X86, 1));
    serial.step();
    let probe = model.steady.state_vector();
    let mut serial_row = vec![0.0; ndofs];
    serial
        .policy
        .oracle(KernelKind::X86)
        .eval(0, &probe, &mut serial_row);

    // Distributed: 4 ranks, comm split by state color, each group solves
    // its state's grid points, results allgathered and compared.
    let results = ThreadComm::launch(4, |world| {
        let ns = 2usize;
        let m = vec![1usize; ns]; // equal grids -> equal groups
        let counts = proportional_ranks(&m, world.size());
        // Color of this rank: first group covers ranks [0, counts[0]).
        let color = if world.rank() < counts[0] { 0 } else { 1 };
        let group = world.split(color);

        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let ti = TimeIteration::new(OlgStep::new(model), config(KernelKind::X86, 1));
        // Each group solves the full grid of its state; ranks within the
        // group split the points.
        let grid = hddm::asg::regular_grid(4, 2);
        let domain = ti.policy.domain.clone();
        let mut rows = Vec::new();
        let mut oracle = ti.policy.oracle(KernelKind::X86);
        let mut scratch = hddm::olg::PointScratch::default();
        let mut unit = vec![0.0; 4];
        let mut phys = vec![0.0; 4];
        let step = OlgStep::new(OlgModel::new(Calibration::small(5, 3, 2, 0.03)));
        for p in 0..grid.len() {
            if p % group.size() != group.rank() {
                continue;
            }
            grid.unit_point_of(p, &mut unit);
            domain.from_unit(&unit, &mut phys);
            let mut warm = vec![0.0; 8];
            oracle.eval(color, &phys, &mut warm);
            let solution = step
                .model
                .solve_point(
                    color,
                    &phys,
                    &warm,
                    &mut oracle,
                    &mut scratch,
                    &hddm::solver::NewtonOptions::default(),
                )
                .expect("distributed point solve");
            rows.push((p, solution.dof_row()));
        }
        // Merge within the group: flatten (p, row) pairs.
        let mut flat = Vec::new();
        for (p, row) in &rows {
            flat.push(*p as f64);
            flat.extend_from_slice(row);
        }
        let gathered = group.allgather(&flat);
        world.barrier();
        (color, group.rank(), gathered)
    });

    // Reassemble state-0 policy rows from the distributed run and compare
    // with the serial step at the grid points.
    let grid = hddm::asg::regular_grid(4, 2);
    let mut assembled = vec![vec![0.0; ndofs]; grid.len()];
    let mut seen = vec![false; grid.len()];
    for (color, _, gathered) in &results {
        if *color != 0 {
            continue;
        }
        for flat in gathered {
            let mut at = 0;
            while at < flat.len() {
                let p = flat[at] as usize;
                assembled[p].copy_from_slice(&flat[at + 1..at + 1 + ndofs]);
                seen[p] = true;
                at += 1 + ndofs;
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "distributed run missed points");

    // Serial step solved the same points against the same initial policy:
    // spot-check the steady-state-nearest grid point.
    let domain = serial.policy.domain.clone();
    let mut unit = vec![0.0; 4];
    let mut best = (0usize, f64::INFINITY);
    let mut phys = vec![0.0; 4];
    for p in 0..grid.len() {
        grid.unit_point_of(p, &mut unit);
        domain.from_unit(&unit, &mut phys);
        let d2: f64 = phys
            .iter()
            .zip(&probe)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        if d2 < best.1 {
            best = (p, d2);
        }
    }
    // The serial policy interpolated at that grid point equals the
    // distributed solve there.
    grid.unit_point_of(best.0, &mut unit);
    domain.from_unit(&unit, &mut phys);
    serial
        .policy
        .oracle(KernelKind::X86)
        .eval(0, &phys, &mut serial_row);
    for k in 0..ndofs {
        assert!(
            (serial_row[k] - assembled[best.0][k]).abs() < 1e-6 * (1.0 + serial_row[k].abs()),
            "dof {k}: serial {} vs distributed {}",
            serial_row[k],
            assembled[best.0][k]
        );
    }
}
