//! Property-based integration tests: the compressed representation and
//! every kernel built on it are *exact* reformulations of the dense
//! sparse-grid interpolant — on arbitrary adaptive grids, arbitrary
//! surpluses, arbitrary evaluation points.

use proptest::prelude::*;

use hddm::asg::{
    hierarchize, interpolate_reference, regular_grid, ActiveCoord, NodeKey, SparseGrid,
};
use hddm::compress::CompressedGrid;
use hddm::gpu::{CudaInterpolator, Device};
use hddm::kernels::{gold, CompressedState, DenseState, KernelKind, Scratch};

/// Strategy: a random ancestor-closed adaptive grid in `dim` dimensions.
fn adaptive_grid(dim: usize) -> impl Strategy<Value = SparseGrid> {
    let coords = prop::collection::vec((0..dim as u16, 2u8..=5u8, any::<u32>()), 0..12);
    coords.prop_map(move |raw| {
        let mut grid = SparseGrid::new(dim);
        grid.insert(NodeKey::root());
        for nodes in raw.chunks(2) {
            let active: Vec<ActiveCoord> = nodes
                .iter()
                .map(|&(d, l, i_seed)| {
                    let indices = hddm::asg::basis::level_indices(l);
                    ActiveCoord {
                        dim: d,
                        level: l,
                        index: indices[(i_seed as usize) % indices.len()],
                    }
                })
                .collect();
            // Deduplicate dims: keep the first occurrence.
            let mut seen = std::collections::HashSet::new();
            let unique: Vec<ActiveCoord> =
                active.into_iter().filter(|c| seen.insert(c.dim)).collect();
            grid.insert_closed(NodeKey::from_coords(unique));
        }
        grid
    })
}

proptest! {
    // Cases and RNG seed are pinned so CI explores the identical grid
    // population every run — a failure here reproduces locally verbatim.
    #![proptest_config(ProptestConfig::with_cases(64).with_rng_seed(0x0C04_0004))]

    /// compressed scalar == dense reference on random adaptive grids.
    #[test]
    fn compressed_equals_reference(
        grid in adaptive_grid(4),
        seed in any::<u64>(),
    ) {
        let ndofs = 3;
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let surplus: Vec<f64> = (0..grid.len() * ndofs).map(|_| rnd()).collect();
        let cg = CompressedGrid::build(&grid);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for _ in 0..5 {
            let x: Vec<f64> = (0..4).map(|_| rnd() + 0.5).collect();
            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut got);
            interpolate_reference(&grid, &surplus, ndofs, &x, &mut want);
            for k in 0..ndofs {
                prop_assert!((got[k] - want[k]).abs() < 1e-10,
                    "dof {} at {:?}: {} vs {}", k, x, got[k], want[k]);
            }
        }
    }

    /// Every kernel (including the simulated GPU) agrees with `gold` on
    /// random adaptive grids.
    #[test]
    fn all_kernels_agree(
        grid in adaptive_grid(3),
        seed in any::<u64>(),
    ) {
        let ndofs = 5;
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let surplus: Vec<f64> = (0..grid.len() * ndofs).map(|_| rnd()).collect();
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let cuda = CudaInterpolator::new(Device::p100(), &compressed).unwrap();
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; ndofs];
        let mut got = vec![0.0; ndofs];
        for _ in 0..3 {
            let x: Vec<f64> = (0..3).map(|_| rnd() + 0.5).collect();
            gold::interpolate(&dense, &x, &mut want);
            for kind in KernelKind::COMPRESSED {
                kind.evaluate_compressed(&compressed, &x, &mut scratch, &mut got);
                for k in 0..ndofs {
                    prop_assert!((got[k] - want[k]).abs() < 1e-10, "{:?}", kind);
                }
            }
            cuda.interpolate(&x, &mut got);
            for k in 0..ndofs {
                prop_assert!((got[k] - want[k]).abs() < 1e-10, "cuda");
            }
        }
    }

    /// Interpolation reproduces tabulated values exactly at grid points
    /// (hierarchization round trip) on random adaptive grids.
    #[test]
    fn exactness_at_nodes(grid in adaptive_grid(3)) {
        let ndofs = 2;
        let values = hddm::asg::tabulate(&grid, ndofs, |x, out| {
            out[0] = (3.1 * x[0] - 1.7 * x[1]).sin() + x[2];
            out[1] = x[0] * x[1] * x[2] + 0.25;
        });
        let mut surplus = values.clone();
        hierarchize(&grid, &mut surplus, ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        let mut out = vec![0.0; ndofs];
        let mut x = vec![0.0; 3];
        for p in 0..grid.len() {
            grid.unit_point_of(p, &mut x);
            KernelKind::Avx2.evaluate_compressed(&compressed, &x, &mut scratch, &mut out);
            for k in 0..ndofs {
                prop_assert!((out[k] - values[p * ndofs + k]).abs() < 1e-10);
            }
        }
    }

    /// Closure invariant: ancestor-closed insertion keeps the grid closed
    /// under arbitrary insert sequences.
    #[test]
    fn closure_invariant(grid in adaptive_grid(4)) {
        prop_assert!(grid.is_ancestor_closed());
    }

    /// The hash-table storage scheme (the paper's *other* incumbent,
    /// Sec. IV-B) agrees with the dense reference on random adaptive
    /// grids.
    #[test]
    fn hash_table_equals_reference(
        grid in adaptive_grid(4),
        seed in any::<u64>(),
    ) {
        use hddm::kernels::{hashtab, HashState};
        let ndofs = 3;
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let surplus: Vec<f64> = (0..grid.len() * ndofs).map(|_| rnd()).collect();
        let hashed = HashState::new(&grid, &surplus, ndofs);
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for _ in 0..5 {
            let x: Vec<f64> = (0..4).map(|_| rnd() + 0.5).collect();
            hashtab::interpolate(&hashed, &x, &mut got);
            interpolate_reference(&grid, &surplus, ndofs, &x, &mut want);
            for k in 0..ndofs {
                prop_assert!((got[k] - want[k]).abs() < 1e-10,
                    "dof {} at {:?}: {} vs {}", k, x, got[k], want[k]);
            }
        }
    }

    /// The two chain-walk ablation variants (no zero-skip; grid-order
    /// surplus gather) compute the same interpolant as the production
    /// kernel on random adaptive grids.
    #[test]
    fn ablation_variants_agree(
        grid in adaptive_grid(3),
        seed in any::<u64>(),
    ) {
        use hddm::kernels::x86;
        let ndofs = 2;
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let surplus: Vec<f64> = (0..grid.len() * ndofs).map(|_| rnd()).collect();
        let cg = CompressedGrid::build(&grid);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut scratch = Scratch::default();
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut want = vec![0.0; ndofs];
        let mut got = vec![0.0; ndofs];
        for _ in 0..4 {
            let x: Vec<f64> = (0..3).map(|_| rnd() + 0.5).collect();
            x86::interpolate(&compressed, &x, &mut scratch, &mut want);
            x86::interpolate_no_skip(&compressed, &x, &mut scratch, &mut got);
            for k in 0..ndofs {
                prop_assert!((got[k] - want[k]).abs() < 1e-12, "no_skip dof {}", k);
            }
            cg.interpolate_scalar_unordered(&surplus, ndofs, &x, &mut xpv, &mut got);
            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut want);
            for k in 0..ndofs {
                prop_assert!((got[k] - want[k]).abs() < 1e-12, "unordered dof {}", k);
            }
        }
    }

    /// Compressed grids survive dismantling into raw arrays and
    /// revalidation — the invariant the checkpoint file format rests on.
    #[test]
    fn raw_parts_roundtrip_on_random_grids(grid in adaptive_grid(4)) {
        let cg = CompressedGrid::build(&grid);
        let rebuilt = CompressedGrid::from_raw_parts(
            cg.dim(),
            cg.nfreq(),
            cg.xps().to_vec(),
            cg.chains().to_vec(),
            cg.order().to_vec(),
        );
        prop_assert_eq!(rebuilt.nno(), cg.nno());
        prop_assert_eq!(rebuilt.chains(), cg.chains());
        prop_assert_eq!(rebuilt.order(), cg.order());
        prop_assert_eq!(rebuilt.xps(), cg.xps());
    }
}

/// The exact Table-I shape on the real 59-dimensional grids (not random —
/// pinned paper numbers, kept here because it crosses asg + compress).
#[test]
fn table1_pinned_numbers() {
    let grid3 = regular_grid(59, 3);
    assert_eq!(grid3.len(), 7_081);
    let cg3 = CompressedGrid::build(&grid3);
    assert_eq!(cg3.xps().len(), 237);
    assert_eq!(cg3.nfreq(), 2);

    let grid4 = regular_grid(59, 4);
    assert_eq!(grid4.len(), 281_077);
    let cg4 = CompressedGrid::build(&grid4);
    assert_eq!(cg4.xps().len(), 473);
    assert_eq!(cg4.nfreq(), 3);

    // 16 states · 281,077 points · 59 unknowns = 265,336,688 (Sec. V-C).
    assert_eq!(16u64 * 281_077 * 59, 265_336_688);
    // 16 · 119 = 1,904 points and 112,336 variables (Sec. V-B).
    assert_eq!(16 * 119, 1_904);
    assert_eq!(16 * 119 * 59, 112_336);
}
