//! Why *adaptive* sparse grids (Sec. III, Fig. 1): on functions with
//! local features — exactly what kinked economic policy functions look
//! like — a-posteriori refinement concentrates points where the surpluses
//! are large and beats the a-priori regular sparse grid point-for-point.
//!
//! The target has a kink in its first coordinate (a borrowing constraint
//! binding at a capital threshold — the shape OLG savings policies take):
//!
//! ```text
//! f(x) = |x₀ − 0.4|^1.5 + smooth background over the other dimensions
//! ```
//!
//! The demo sweeps regular levels against adaptive ε values and prints
//! points vs. L∞/L2 error on a fixed Monte Carlo probe set.
//!
//! ```text
//! cargo run --release --example adaptive_grids [dim]
//! ```

use hddm::asg::{
    hierarchize, interpolate_reference, refine_frontier, regular_grid, tabulate, RefineConfig,
    SparseGrid, SurplusNorm,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn target(x: &[f64]) -> f64 {
    let d = x.len() as f64;
    (x[0] - 0.4).abs().powf(1.5) + 0.2 * x.iter().map(|&v| (2.0 * v).sin()).sum::<f64>() / d
}

fn errors(grid: &SparseGrid, surplus: &[f64], probes: &[Vec<f64>]) -> (f64, f64) {
    let mut out = [0.0];
    let mut linf = 0.0f64;
    let mut sum_sq = 0.0;
    for x in probes {
        interpolate_reference(grid, surplus, 1, x, &mut out);
        let err = (out[0] - target(x)).abs();
        linf = linf.max(err);
        sum_sq += err * err;
    }
    (linf, (sum_sq / probes.len() as f64).sqrt())
}

fn main() {
    let dim: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let probes: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();

    println!("target: kink |x0 − 0.4|^1.5 + smooth background, d = {dim}\n");

    println!("regular sparse grids (a-priori selection, Eq. 13):");
    println!(
        "  {:>6} {:>9} {:>12} {:>12}",
        "level", "points", "Linf", "L2"
    );
    for level in 2..=6u8 {
        let grid = regular_grid(dim, level);
        let mut surplus = tabulate(&grid, 1, |x, out| out[0] = target(x));
        hierarchize(&grid, &mut surplus, 1);
        let (linf, l2) = errors(&grid, &surplus, &probes);
        println!(
            "  {:>6} {:>9} {:>12.3e} {:>12.3e}",
            level,
            grid.len(),
            linf,
            l2
        );
    }

    println!("\nadaptive sparse grids (a-posteriori, g(α) ≥ ε, Lmax = 8):");
    println!(
        "  {:>8} {:>9} {:>12} {:>12}",
        "epsilon", "points", "Linf", "L2"
    );
    for &epsilon in &[1e-2, 3e-3, 1e-3, 3e-4] {
        // Start from the level-2 regular grid and refine level by level,
        // exactly like the driver's per-step loop.
        let mut grid = regular_grid(dim, 2);
        let mut surplus = tabulate(&grid, 1, |x, out| out[0] = target(x));
        hierarchize(&grid, &mut surplus, 1);
        let mut frontier: Vec<u32> = (0..grid.len() as u32).collect();
        let config = RefineConfig {
            epsilon,
            max_level: 8,
            norm: SurplusNorm::MaxAbs,
        };
        loop {
            let report = refine_frontier(&mut grid, &surplus, 1, &frontier, &config);
            if report.new_nodes.is_empty() {
                break;
            }
            // Re-tabulate + re-hierarchize the grown grid (the driver does
            // this incrementally; the demo keeps it simple).
            surplus = tabulate(&grid, 1, |x, out| out[0] = target(x));
            hierarchize(&grid, &mut surplus, 1);
            frontier = report.new_nodes;
        }
        let (linf, l2) = errors(&grid, &surplus, &probes);
        println!(
            "  {:>8.0e} {:>9} {:>12.3e} {:>12.3e}",
            epsilon,
            grid.len(),
            linf,
            l2
        );
    }

    println!("\nreading: at equal point budgets the adaptive grid reaches a lower error");
    println!("— the \"second layer of sparsity\" of Fig. 1, and the reason the paper's");
    println!("production runs are ε-driven rather than level-driven.");
}
