//! End-to-end economics: solve a stochastic OLG economy by time iteration,
//! inspect the converged lifecycle, and simulate the economy under the
//! solved policy — the full workflow of Sec. II/V-D at laptop scale.
//!
//! ```text
//! cargo run --release --example olg_lifecycle [lifespan] [states]
//! ```

use hddm::core::{DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{simulate, Calibration, OlgModel, PolicyOracle};
use hddm::sched::PoolConfig;
use rand::SeedableRng;

fn main() {
    let lifespan: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let states: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let work_years = (lifespan * 3) / 4;

    println!(
        "Stochastic OLG: A = {lifespan} generations (d = {}), Ns = {states} Markov states",
        lifespan - 1
    );
    let model = OlgModel::new(Calibration::small(lifespan, work_years, states, 0.05));
    println!(
        "steady state: K = {:.3}, r = {:.2}%, w = {:.3}, pension = {:.3}",
        model.steady.capital,
        model.steady.prices.interest * 100.0,
        model.steady.prices.wage,
        model.steady.prices.pension
    );

    // --- Time iteration (Algorithm 1).
    let check_model = model.clone();
    let mut ti = TimeIteration::new(
        OlgStep::new(model),
        DriverConfig {
            kernel: KernelKind::Avx2,
            start_level: 2,
            max_steps: 80,
            tolerance: 1e-8,
            pool: PoolConfig {
                threads: 2,
                grain: 2,
            },
            ..Default::default()
        },
    );
    println!("\ntime iteration:");
    let reports = ti.run();
    for r in reports.iter().step_by(5).chain(reports.last()) {
        println!(
            "  step {:>3}: ||p - pnext||_inf = {:.3e}  (L2 {:.3e}, {} pts/state, {:.2}s)",
            r.step, r.sup_change, r.l2_change, r.points_per_state[0], r.wall_seconds
        );
    }
    println!("converged in {} steps.", reports.len());

    // --- Lifecycle at the steady point under the converged policy.
    let x_bar = check_model.steady.state_vector();
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let mut row = vec![0.0; check_model.ndofs()];
    oracle.eval(0, &x_bar, &mut row);
    println!("\nlifecycle at the mean state (z = 0):");
    println!("  {:<6} {:>10} {:>12}", "age", "saving", "value");
    for a in 0..lifespan - 1 {
        println!(
            "  {:<6} {:>10.4} {:>12.4}",
            a + 1,
            row[a],
            row[lifespan - 1 + a]
        );
    }

    // --- Simulate the economy for 500 periods under the solved policy.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2026);
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let sim = simulate(&check_model, &mut oracle, 500, 50, &mut rng);
    println!("\nsimulation (500 periods, 50 burn-in):");
    println!(
        "  K: mean {:.3} (steady {:.3}), std {:.4}",
        sim.mean(|p| p.capital),
        check_model.steady.capital,
        sim.std(|p| p.capital)
    );
    println!(
        "  Y: mean {:.3}, std {:.4}   r: mean {:.2}%, std {:.3}pp",
        sim.mean(|p| p.output),
        sim.std(|p| p.output),
        sim.mean(|p| p.interest) * 100.0,
        sim.std(|p| p.interest) * 100.0
    );
    let corr_consumption_output = {
        let (mc, my) = (sim.mean(|p| p.consumption), sim.mean(|p| p.output));
        let cov: f64 = sim
            .path
            .iter()
            .map(|p| (p.consumption - mc) * (p.output - my))
            .sum::<f64>()
            / sim.path.len() as f64;
        cov / (sim.std(|p| p.consumption) * sim.std(|p| p.output))
    };
    println!("  corr(C, Y) = {corr_consumption_output:.3} (procyclical consumption)");
}
