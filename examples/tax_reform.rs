//! Counterfactual tax-policy analysis — the economics the paper's
//! introduction motivates ("optimal taxation and the optimal design of
//! public pension systems"; social security reform à la Krueger–Kubler).
//!
//! Two economies identical up to the pay-as-you-go system's size (labor
//! tax 20% vs 32%) are each solved to a recursive equilibrium with the
//! full stack (time iteration on adaptive sparse grids, compressed
//! kernels). The solved policies are then simulated to compare long-run
//! aggregates and newborn welfare, with Euler errors as the quality gate.
//!
//! ```text
//! cargo run --release --example tax_reform
//! ```

use hddm::core::{DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{
    consumption_equivalent, euler_errors_on_path, newborn_welfare, simulate, Calibration, OlgModel,
    WelfareReport,
};
use hddm::sched::PoolConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Lifespan of the example economies (laptop scale; the headline model
/// uses A = 60 — same code path).
const A: usize = 6;
const WORK: usize = 4;
const STATES: usize = 2;

fn reform(labor_tax: f64) -> Calibration {
    let mut cal = Calibration::small(A, WORK, STATES, 0.04);
    for regime in cal.regimes.iter_mut() {
        regime.labor_tax = labor_tax;
    }
    cal.validate();
    cal
}

struct Outcome {
    capital: f64,
    capital_sd: f64,
    output: f64,
    consumption: f64,
    pension_rate: f64,
    welfare: WelfareReport,
    euler_mean_log10: f64,
}

fn solve_and_evaluate(label: &str, labor_tax: f64) -> Outcome {
    println!("solving \"{label}\" (τ_l = {:.0}%)...", 100.0 * labor_tax);
    let cal = reform(labor_tax);
    let model = OlgModel::new(cal);
    let eval_model = model.clone();
    let mut ti = TimeIteration::new(
        OlgStep::new(model),
        DriverConfig {
            kernel: KernelKind::Avx2,
            start_level: 2,
            refine_epsilon: Some(1e-2),
            max_level: 4,
            max_steps: 60,
            tolerance: 1e-6,
            pool: PoolConfig {
                threads: 2,
                grain: 4,
            },
            ..Default::default()
        },
    );
    let reports = ti.run();
    println!(
        "  converged in {} steps (‖Δp‖∞ = {:.2e}, {}..{} points/state)",
        reports.len(),
        reports.last().unwrap().sup_change,
        reports
            .last()
            .unwrap()
            .points_per_state
            .iter()
            .min()
            .unwrap(),
        reports
            .last()
            .unwrap()
            .points_per_state
            .iter()
            .max()
            .unwrap(),
    );

    // Quality gate: Euler errors along the simulated path.
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let accuracy = euler_errors_on_path(&eval_model, &mut oracle, 300, 30, &mut rng);

    // Ergodic aggregates under the solved policy.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let sim = simulate(&eval_model, &mut oracle, 2000, 200, &mut rng);

    // Newborn welfare: the solved value function of generation 1 averaged
    // over the simulated ergodic distribution of (z, x) — see
    // `hddm::olg::welfare` for the CEV arithmetic.
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let welfare = newborn_welfare(&eval_model, &mut oracle, 1000, 0, &mut rng);

    let p_bar = hddm::olg::prices(&eval_model.cal, 0, sim.mean(|p| p.capital));
    Outcome {
        capital: sim.mean(|p| p.capital),
        capital_sd: sim.std(|p| p.capital),
        output: sim.mean(|p| p.output),
        consumption: sim.mean(|p| p.consumption),
        pension_rate: p_bar.pension,
        welfare,
        euler_mean_log10: accuracy.mean_log10,
    }
}

fn main() {
    println!("Social-security reform experiment (A = {A}, Ns = {STATES})\n");
    let low = solve_and_evaluate("small PAYG", 0.20);
    let high = solve_and_evaluate("large PAYG", 0.32);

    println!("\n                         small PAYG   large PAYG     change");
    let row = |name: &str, a: f64, b: f64| {
        println!(
            "  {name:<22} {a:>10.4}  {b:>11.4}   {:>+7.2}%",
            100.0 * (b / a - 1.0)
        );
    };
    row("mean capital K", low.capital, high.capital);
    row("sd(K)", low.capital_sd, high.capital_sd);
    row("mean output Y", low.output, high.output);
    row("mean consumption C", low.consumption, high.consumption);
    row("pension per retiree", low.pension_rate, high.pension_rate);
    println!(
        "  {:<22} {:>10.1}  {:>11.1}   (log10 mean Euler error)",
        "solution quality", low.euler_mean_log10, high.euler_mean_log10
    );

    // Consumption-equivalent variation: λ such that newborns under the
    // small-PAYG economy, with consumption scaled by (1+λ), match the
    // large-PAYG welfare.
    let lambda = consumption_equivalent(&low.welfare, &high.welfare);
    println!(
        "\nnewborn welfare: expanding the PAYG system is worth {:+.2}% of lifetime\n\
         consumption to a newborn at the ergodic mean (negative = reform hurts).",
        100.0 * lambda
    );
    println!(
        "mechanism: the larger pension crowds out private saving (K falls {:.1}%),\n\
         lowering wages; the gain is old-age insurance — the classic trade-off the\n\
         stochastic-OLG literature quantifies.",
        100.0 * (1.0 - high.capital / low.capital)
    );
}
