//! The paper's staged-run protocol (Sec. V-C / footnote 12): iterate at a
//! fixed refinement threshold ε until the error stops improving, write a
//! checkpoint, then **restart with a decreased ε** — "this measure then
//! slightly adds points to the grid and therefore further lowers the
//! error". Each stage here round-trips the solver state through a real
//! checkpoint file and verifies the resumed run continues bit-identically.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use hddm::core::{Checkpoint, DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{Calibration, OlgModel, PolicyOracle};
use hddm::sched::PoolConfig;

fn make_model() -> OlgModel {
    OlgModel::new(Calibration::small(5, 3, 2, 0.04))
}

fn config(epsilon: f64) -> DriverConfig {
    DriverConfig {
        kernel: KernelKind::Avx2,
        start_level: 2,
        refine_epsilon: Some(epsilon),
        max_level: 4,
        max_steps: 6,
        tolerance: 0.0,
        pool: PoolConfig {
            threads: 2,
            grain: 4,
        },
        ..Default::default()
    }
}

fn main() {
    let dir = std::env::temp_dir().join("hddm_checkpoint_example");
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!("ε-continuation with checkpoint/restart (A = 5, Ns = 2)\n");
    let schedule = [3e-2, 1e-2, 3e-3];

    // Stage 0 starts fresh; each later stage resumes from the previous
    // stage's checkpoint file with a smaller ε.
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut probe_x = make_model().steady.state_vector();
    make_model().steady.state_vector().clone_into(&mut probe_x);

    for (stage, &epsilon) in schedule.iter().enumerate() {
        let mut ti = match &checkpoint {
            None => TimeIteration::new(OlgStep::new(make_model()), config(epsilon)),
            Some(path) => {
                let ck = Checkpoint::load(path).expect("load checkpoint");
                println!(
                    "stage {stage}: resumed from {} (step {}, {} points/state)",
                    path.display(),
                    ck.step,
                    ck.states[0].chains.len() / ck.states[0].nfreq
                );
                TimeIteration::resume(OlgStep::new(make_model()), config(epsilon), &ck)
            }
        };

        let reports = ti.run();
        let last = reports.last().unwrap();
        println!(
            "stage {stage}: ε = {epsilon:.0e}, steps {:>2}..{:<2}  ‖Δp‖∞ = {:.3e}  points/state {:?}",
            reports.first().unwrap().step,
            last.step,
            last.sup_change,
            last.points_per_state
        );

        // Write this stage's checkpoint and verify the round trip is exact.
        let path = dir.join(format!("stage{stage}.json"));
        let ck = Checkpoint::capture(&ti);
        ck.save(&path).expect("save checkpoint");
        let reloaded = Checkpoint::load(&path).expect("reload");
        let restored = reloaded.restore_policy();
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        ti.policy.oracle(KernelKind::X86).eval(0, &probe_x, &mut a);
        restored.oracle(KernelKind::X86).eval(0, &probe_x, &mut b);
        assert_eq!(a, b, "checkpoint round trip must be bitwise exact");
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "          checkpoint {} ({:.1} KB), round trip exact ✓",
            path.display(),
            bytes as f64 / 1024.0
        );
        checkpoint = Some(path);
    }

    println!("\neach ε stage added grid points and lowered the remaining policy");
    println!("movement — the paper's footnote-12 protocol, with durable state.");
    std::fs::remove_dir_all(&dir).ok();
}
