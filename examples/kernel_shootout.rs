//! Kernel shoot-out on a mid-size grid: a quick interactive version of the
//! Table II experiment (the full 59-dimensional cases live in
//! `cargo run -p hddm-bench --release --bin table2`).
//!
//! ```text
//! cargo run --release --example kernel_shootout [dim] [level]
//! ```

use std::time::Instant;

use hddm::asg::regular_grid;
use hddm::compress::CompressedGrid;
use hddm::gpu::{CudaInterpolator, Device};
use hddm::kernels::{gold, CompressedState, DenseState, KernelKind, Scratch};

fn main() {
    let dim: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let level: u8 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let ndofs = 118;
    let evals = 500usize;

    let grid = regular_grid(dim, level);
    let cg = CompressedGrid::build(&grid);
    println!(
        "grid: d = {dim}, level {level} -> {} points, nfreq = {}, |xps| = {}",
        grid.len(),
        cg.nfreq(),
        cg.xps().len()
    );

    // Synthetic surpluses with smooth decay.
    let surplus: Vec<f64> = (0..grid.len() * ndofs)
        .map(|k| ((k as f64 * 0.61803).sin()) * 0.5f64.powi((k % 7) as i32))
        .collect();
    let dense = DenseState::new(&grid, surplus.clone(), ndofs);
    let compressed = CompressedState::new(&grid, &surplus, ndofs);
    let cuda = CudaInterpolator::new(Device::p100(), &compressed).expect("fits the P100");

    let points: Vec<Vec<f64>> = (0..evals)
        .map(|s| {
            (0..dim)
                .map(|t| ((s * 29 + t * 13) as f64 * 0.0173) % 1.0)
                .collect()
        })
        .collect();
    let mut out = vec![0.0; ndofs];
    let mut scratch = Scratch::default();

    println!("\n{:<16} {:>14} {:>10}", "kernel", "us/eval", "vs gold");
    let t0 = Instant::now();
    for x in &points {
        gold::interpolate(&dense, x, &mut out);
    }
    let gold_time = t0.elapsed().as_secs_f64() / evals as f64;
    println!("{:<16} {:>14.2} {:>9.2}x", "gold", gold_time * 1e6, 1.0);

    for kind in KernelKind::COMPRESSED {
        let t0 = Instant::now();
        for x in &points {
            kind.evaluate_compressed(&compressed, x, &mut scratch, &mut out);
        }
        let t = t0.elapsed().as_secs_f64() / evals as f64;
        println!(
            "{:<16} {:>14.2} {:>9.2}x",
            kind.name(),
            t * 1e6,
            gold_time / t
        );
    }

    let mut modeled = 0.0;
    let t0 = Instant::now();
    for x in &points {
        modeled = cuda.interpolate(x, &mut out).modeled_seconds;
    }
    let t = t0.elapsed().as_secs_f64() / evals as f64;
    println!(
        "{:<16} {:>14.2} {:>9.2}x",
        "cuda (host-sim)",
        t * 1e6,
        gold_time / t
    );
    println!(
        "{:<16} {:>14.2} {:>9.2}x   (roofline model incl. launch overhead)",
        "cuda (P100)",
        modeled * 1e6,
        gold_time / modeled
    );
}
