//! The Fig. 2 distributed execution, end to end: rank threads stand in
//! for MPI processes, the world communicator splits into one group per
//! discrete state (sized ∝ the grid-point counts `M_z`), groups solve
//! their frontiers cooperatively with per-level allgather merges, and the
//! new policy is exchanged world-wide — then the whole thing is checked
//! against the single-process driver, which must agree **bitwise**.
//!
//! ```text
//! cargo run --release --example distributed_run [ranks]
//! ```

use hddm::cluster::ThreadComm;
use hddm::core::{distributed_run, DriverConfig, OlgStep, TimeIteration};
use hddm::kernels::KernelKind;
use hddm::olg::{Calibration, OlgModel, PolicyOracle};
use hddm::sched::PoolConfig;

fn config(steps: usize) -> DriverConfig {
    DriverConfig {
        kernel: KernelKind::Avx2,
        start_level: 2,
        max_steps: steps,
        tolerance: 1e-7,
        pool: PoolConfig {
            threads: 1,
            grain: 4,
        },
        ..Default::default()
    }
}

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let steps = 30;
    let make = || OlgModel::new(Calibration::small(5, 3, 2, 0.03));

    println!("distributed time iteration: {ranks} ranks, 2 discrete states, A = 5\n");

    // Single-process reference.
    let t0 = std::time::Instant::now();
    let mut serial = TimeIteration::new(OlgStep::new(make()), config(steps));
    let serial_reports = serial.run();
    let t_serial = t0.elapsed().as_secs_f64();

    // Distributed run over rank threads.
    let t0 = std::time::Instant::now();
    let results = ThreadComm::launch(ranks, |world| {
        let model = OlgStep::new(make());
        let (policy, reports) = distributed_run(&world, &model, &config(steps));
        let x = make().steady.state_vector();
        let mut oracle = policy.oracle(KernelKind::Avx2);
        let mut row = vec![0.0; 8];
        oracle.eval(0, &x, &mut row);
        (reports.len(), reports.last().unwrap().sup_change, row)
    });
    let t_dist = t0.elapsed().as_secs_f64();

    let (steps_done, final_change, dist_row) = &results[0];
    println!(
        "serial:      {} steps, final ‖Δp‖∞ = {:.2e}, {:.2} s",
        serial_reports.len(),
        serial_reports.last().unwrap().sup_change,
        t_serial
    );
    println!(
        "distributed: {} steps, final ‖Δp‖∞ = {:.2e}, {:.2} s ({} rank threads)",
        steps_done, final_change, t_dist, ranks
    );

    // Bitwise agreement across ranks and against the serial driver.
    for (r, (_, _, row)) in results.iter().enumerate() {
        assert_eq!(row, dist_row, "rank {r} disagrees");
    }
    let x = make().steady.state_vector();
    let mut serial_row = vec![0.0; 8];
    serial
        .policy
        .oracle(KernelKind::Avx2)
        .eval(0, &x, &mut serial_row);
    assert_eq!(&serial_row, dist_row, "distributed != serial");
    println!("\nall {ranks} ranks and the serial driver agree bitwise ✓");
    println!("(on this single-core host rank threads timeshare, so wall times are\nsimilar; on a real cluster each rank is a node — see fig8 for the scaling)");
}
