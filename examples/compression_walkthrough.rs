//! A guided walk through the ASG index-compression pipeline of Sec. IV-B,
//! printing every intermediate object of Figs. 3–4 on a small grid so the
//! scheme can be inspected by eye:
//!
//! 1. `Ξ̃` → pre-scaling `(l,i) ↦ (ł,í) = (2^{l−1}, i)` → zero elimination
//!    (Fig. 3: level-1 coordinates become the `(0,0)` pairs that make `Ξ`
//!    ~96.8% zeros);
//! 2. decomposition into `ξ_freq` matrices, at most one non-zero per
//!    original row each (Fig. 4);
//! 3. per-frequency renumbering + transition matrices `T_freq`;
//! 4. deduplication into the global `xps` array with lookup vectors;
//! 5. chain construction (Algorithm 2) + the surplus reordering;
//! 6. a compressed interpolation compared against the dense `gold` kernel.
//!
//! ```text
//! cargo run --release --example compression_walkthrough [dim] [level]
//! ```

use hddm::asg::{hierarchize, regular_grid, tabulate};
use hddm::compress::{decompose, unique_elements, CompressedGrid, XiSparse};
use hddm::kernels::{gold, DenseState};

fn main() {
    let dim: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let level: u8 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let grid = regular_grid(dim, level);
    println!(
        "Sparse grid: d = {dim}, level {level}, nno = {} points\n",
        grid.len()
    );

    // --- Step 1: Ξ̃ → Ξ (pre-scaling + zero elimination, Fig. 3).
    let xi = XiSparse::from_grid(&grid);
    println!(
        "Ξ zero elimination: {:.1}% of the dense {}×{} pair matrix is (0,0)",
        100.0 * xi.zero_fraction(),
        grid.len(),
        dim
    );
    println!("first rows of the zero-eliminated Ξ (dim:(ł,í) per non-zero):");
    for (p, row) in xi.rows.iter().enumerate().take(8) {
        let cells: Vec<String> = row
            .iter()
            .map(|e| format!("{}:({},{})", e.dim, e.l, e.i))
            .collect();
        println!("  point {p:>3}: [{}]", cells.join(" "));
    }

    // --- Step 2: ξ_freq decomposition (Fig. 4).
    let mats = decompose(&xi);
    println!("\nnfreq = {} ξ-matrices:", mats.len());
    for (k, m) in mats.iter().enumerate() {
        println!(
            "  ξ_{k}: {} elements in {} ragged rows × {} columns",
            m.len(),
            m.nrows(),
            m.columns.len()
        );
    }

    // --- Steps 3–4: uniques + lookups.
    let unique = unique_elements(&mats);
    println!(
        "\nxps: {} unique 1-D basis evaluations (sentinel included) — Table I's \"xps/state\"",
        unique.xps.len()
    );
    for (id, e) in unique.xps.iter().enumerate().take(10) {
        println!("  xps[{id}] = dim {} (ł,í) = ({},{})", e.index, e.l, e.i);
    }

    // --- Step 5: the final compressed structure.
    let cg = CompressedGrid::build(&grid);
    println!(
        "\nchains: {} × nfreq {} (0-terminated xps ids per point; complexity\nfalls from nno×d = {} to nno×nfreq = {}):",
        cg.nno(),
        cg.nfreq(),
        cg.nno() * dim,
        cg.nno() * cg.nfreq()
    );
    for (p, chain) in cg.chains().chunks_exact(cg.nfreq()).enumerate().take(8) {
        println!(
            "  chain {p:>3}: {:?}  (grid point {})",
            chain,
            cg.order()[p]
        );
    }
    let stats = cg.stats();
    println!(
        "\nmemory: compressed {} B vs dense {} B ({:.1}x smaller)",
        stats.compressed_bytes,
        stats.dense_bytes,
        stats.dense_bytes as f64 / stats.compressed_bytes as f64
    );

    // --- Step 6: equivalence with the dense gold kernel.
    let ndofs = 3;
    let mut surplus = tabulate(&grid, ndofs, |x, out| {
        for (k, o) in out.iter_mut().enumerate() {
            *o = x
                .iter()
                .enumerate()
                .map(|(t, &v)| ((t + k + 1) as f64 * v).sin())
                .sum();
        }
    });
    hierarchize(&grid, &mut surplus, ndofs);
    let dense = DenseState::new(&grid, surplus.clone(), ndofs);
    let reordered = cg.reorder_rows(&surplus, ndofs);
    let mut xpv = vec![0.0; cg.xps().len()];
    let mut want = vec![0.0; ndofs];
    let mut got = vec![0.0; ndofs];
    let mut worst = 0.0f64;
    for s in 0..100 {
        let x: Vec<f64> = (0..dim)
            .map(|t| ((s * 13 + t * 7) as f64 * 0.0619 + 0.005) % 1.0)
            .collect();
        gold::interpolate(&dense, &x, &mut want);
        cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut got);
        for k in 0..ndofs {
            worst = worst.max((got[k] - want[k]).abs());
        }
    }
    println!("\nequivalence vs gold over 100 random points: max |Δ| = {worst:.2e}");
    assert!(worst < 1e-12);
    println!("compressed interpolation reproduces the dense baseline exactly. ✓");
}
