//! Quickstart: adaptive sparse grids + index compression in five minutes.
//!
//! Builds an interpolant of a smooth 10-dimensional function, compresses
//! it with the Sec. IV-B pipeline, inspects the compression statistics,
//! and cross-checks every kernel against the dense baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hddm::asg::{hierarchize, refine, regular_grid, tabulate, RefineConfig, SurplusNorm};
use hddm::compress::CompressedGrid;
use hddm::gpu::{CudaInterpolator, Device};
use hddm::kernels::{gold, CompressedState, DenseState, KernelKind, Scratch};

fn f(x: &[f64]) -> f64 {
    // Smooth with a mild ridge: the kind of policy-function shape the
    // OLG model produces.
    let s: f64 = x.iter().sum();
    (0.5 * s).sin() + 1.0 / (1.0 + s * s / 4.0)
}

fn main() {
    let dim = 10;
    let ndofs = 1;

    // 1. A regular sparse grid (Eq. 13) — compare with the 2^n full grid.
    let mut grid = regular_grid(dim, 4);
    println!(
        "regular sparse grid: d = {dim}, level 4 -> {} points (a full tensor grid \
         at the same resolution would need {:.1e})",
        grid.len(),
        17f64.powi(dim as i32)
    );

    // 2. Tabulate + hierarchize, then refine adaptively twice.
    let mut values = tabulate(&grid, ndofs, |x, out| out[0] = f(x));
    hierarchize(&grid, &mut values, ndofs);
    for round in 0..2 {
        let report = refine(
            &mut grid,
            &values,
            ndofs,
            &RefineConfig {
                epsilon: 2e-3,
                max_level: 6,
                norm: SurplusNorm::MaxAbs,
            },
        );
        println!(
            "refinement round {round}: {} parents refined, {} new points (grid: {})",
            report.refined_parents.len(),
            report.new_nodes.len(),
            grid.len()
        );
        values = tabulate(&grid, ndofs, |x, out| out[0] = f(x));
        hierarchize(&grid, &mut values, ndofs);
    }

    // 3. Compress (the paper's core data structure).
    let cg = CompressedGrid::build(&grid);
    let stats = cg.stats();
    println!();
    println!(
        "compression: nfreq = {}, |xps| = {} unique 1-D factors",
        cg.nfreq(),
        cg.xps().len()
    );
    println!(
        "  zeros eliminated: {:.1}%   memory {:.0} kB -> {:.0} kB ({:.1}x)",
        stats.zero_fraction * 100.0,
        stats.dense_bytes as f64 / 1e3,
        stats.compressed_bytes as f64 / 1e3,
        stats.dense_bytes as f64 / stats.compressed_bytes as f64
    );
    println!(
        "  xpv working set: {} B (fits L1 cache and the P100's 48 kB shared memory)",
        cg.xps().len() * 8
    );

    // 4. Every kernel produces the same numbers.
    let dense = DenseState::new(&grid, values.clone(), ndofs);
    let compressed = CompressedState::new(&grid, &values, ndofs);
    let cuda = CudaInterpolator::new(Device::p100(), &compressed).expect("fits the device");
    let mut scratch = Scratch::default();
    let x: Vec<f64> = (0..dim).map(|t| 0.1 + 0.08 * t as f64).collect();
    let mut reference = [0.0];
    gold::interpolate(&dense, &x, &mut reference);
    println!();
    println!("interpolating at a probe point (truth = {:.6}):", f(&x));
    println!("  {:<10} {:.10}", "gold", reference[0]);
    let mut out = [0.0];
    for kind in KernelKind::COMPRESSED {
        kind.evaluate_compressed(&compressed, &x, &mut scratch, &mut out);
        println!("  {:<10} {:.10}", kind.name(), out[0]);
        assert!((out[0] - reference[0]).abs() < 1e-12);
    }
    let timing = cuda.interpolate(&x, &mut out);
    println!(
        "  {:<10} {:.10}  (modeled P100 time: {:.1} us)",
        "cuda",
        out[0],
        timing.modeled_seconds * 1e6
    );
    assert!((out[0] - reference[0]).abs() < 1e-12);
    println!();
    println!("all kernels agree to machine precision.");
}
