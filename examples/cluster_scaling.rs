//! The distributed machinery in action: per-state MPI-style group
//! splitting over the threaded communicator, the hybrid CPU+GPU
//! scheduler, and the strong-scaling simulator.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use hddm::cluster::{
    proportional_ranks, strong_scaling_sweep, ClusterModel, Comm, LevelWork, ThreadComm,
};
use hddm::sched::{hybrid_for, HybridConfig};

fn main() {
    // --- 1. Proportional group assignment (Sec. IV-A, footnote 5).
    println!("rank-group assignment (M_z-proportional):");
    let m = vec![200usize, 100];
    let counts = proportional_ranks(&m, 3);
    println!("  paper example: M = {m:?}, 3 ranks -> groups {counts:?}");
    let skewed = vec![76_645usize, 73_874, 73_874, 69_026];
    println!(
        "  Fig. 9 spread: M = {skewed:?}, 64 ranks -> {:?}",
        proportional_ranks(&skewed, 64)
    );

    // --- 2. A real split + collective over rank threads.
    println!("\nthreaded communicator (6 ranks, split into 2 state groups):");
    let results = ThreadComm::launch(6, |world| {
        let color = world.rank() % 2;
        let group = world.split(color);
        // Each group sums its ranks' "points solved".
        let mut buf = vec![(world.rank() + 1) as f64];
        group.allreduce_sum(&mut buf);
        world.barrier();
        (color, group.rank(), buf[0])
    });
    for (rank, (color, group_rank, sum)) in results.iter().enumerate() {
        println!("  world rank {rank} -> group {color} rank {group_rank}; group total = {sum}");
    }

    // --- 3. Hybrid CPU + accelerator dispatch (Fig. 2, lower panel).
    println!("\nhybrid scheduler (CPU workers + dedicated GPU-dispatch thread):");
    let stats = hybrid_for(
        5_000,
        &HybridConfig {
            cpu_threads: 2,
            cpu_grain: 4,
            accel_batch: 256,
        },
        |_i| {
            std::thread::yield_now(); // a "CPU point solve"
        },
        |chunk| {
            // a batched "GPU interpolation offload"
            std::hint::black_box(chunk.len());
        },
    );
    println!(
        "  cpu workers solved {:?} points; accelerator took {} points in {} batches",
        stats.cpu_items, stats.accel_items, stats.accel_batches
    );

    // --- 4. Strong scaling of the Fig. 8 workload.
    println!("\nstrong-scaling simulation (Fig. 8 workload, Piz Daint model):");
    let model = ClusterModel::piz_daint(0.1147);
    let levels = vec![
        LevelWork {
            points_per_state: vec![119; 16],
        },
        LevelWork {
            points_per_state: vec![6_962; 16],
        },
        LevelWork {
            points_per_state: vec![273_996; 16],
        },
    ];
    let sweep = strong_scaling_sweep(&model, &levels, &[1, 16, 256, 4096]);
    let t1 = sweep[0].1.total;
    println!("  {:>6} {:>12} {:>8}", "nodes", "step [s]", "eff");
    for (n, timing) in &sweep {
        println!(
            "  {:>6} {:>12.1} {:>7.0}%",
            n,
            timing.total,
            100.0 * t1 / (*n as f64 * timing.total)
        );
    }
}
