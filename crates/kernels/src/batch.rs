//! Batched multi-point interpolation — the block restructuring of the
//! compressed kernels for wide vector units (Sec. V-A's "evaluate many
//! points per kernel launch" transformation, applied to the CPU kernels).
//!
//! The single-point kernels walk the whole `chains` matrix — and stream
//! the whole surplus matrix — once **per query point**. For the hot
//! consumers (hierarchization of a refinement frontier, warm-start
//! projection, policy-change measurement) the queries arrive in blocks of
//! dozens to thousands of points, so the batched kernels restructure the
//! loops the way the paper restructures them for Xeon Phi and GPUs:
//!
//! * queries live in an SoA [`PointBlock`] (`coords[d][pt]`), so the
//!   per-`xps`-entry gather `x[j]` becomes a contiguous stream over the
//!   point axis;
//! * the `xpv` fill produces an `nxps × npts` block (entry-major), one
//!   basis evaluation per `(entry, point)` — the same arithmetic as the
//!   single-point fill, vectorized across points;
//! * each compressed chain is walked **once per block**: the chain's xpv
//!   factor column multiplies into an `npts`-wide running product, so the
//!   chain loads and loop control amortize over the block;
//! * each surplus row is loaded **once per block** and accumulated into
//!   every surviving point's output row while it is cache-resident — the
//!   `nno × ndofs` stream that dominates single-point evaluation shrinks
//!   by the block width.
//!
//! Blocks are processed in chunks of [`BATCH_CHUNK`] points so the
//! working set (`xpv` block + output rows) stays cache-sized; results are
//! independent per point, so chunking never changes values. Every variant
//! is **bitwise identical** to its single-point counterpart (same basis
//! expression, same chain-walk order, same axpy routine, same
//! accumulation order per point) — the golden tests assert `==`, not a
//! tolerance.

use crate::data::{CompressedState, Scratch};
use crate::vector::VectorIsa;
use hddm_asg::linear_basis;

/// Points per internal processing chunk. 64 keeps the entry-major xpv
/// block (`nxps × 64` doubles) and the active output rows inside L2 for
/// the paper's grids (473 xps ⇒ ~242 KB) while amortizing every chain
/// walk and surplus-row load across 64 points.
pub const BATCH_CHUNK: usize = 64;

/// Blocks narrower than this are routed through the single-point kernel
/// by [`KernelKind::evaluate_compressed_batch`](crate::KernelKind):
/// the batch machinery's per-block setup (xpv block fill, mask
/// bookkeeping, masked accumulation) only amortizes once a few points
/// share each chain walk: the hot-paths bench measured the batch path
/// *slower* than single-point at npts=1 (0.77×–0.90×) but already
/// faster at npts=2 (≥ 1.2×), so exactly the one-point block is routed.
/// Both paths are bitwise identical per point, so the routing is
/// invisible to results. Direct calls to the `interpolate_batch*`
/// functions bypass the crossover.
pub const BATCH_CROSSOVER: usize = 2;

/// Grid-size threshold (in compressed grid rows) above which the
/// dispatch crossover widens. On large grids the surplus matrix no
/// longer fits in cache, so the batch path's extra setup (xpv block
/// fill + mask bookkeeping over a long `xps` table) needs more points
/// to amortize: `BENCH_hotpaths.json` measured the 300k-row case at
/// 0.94×/0.81× for npts=1/2 but 1.09× at npts=3, while the 7k-row case
/// is already ≥ 1.12× at npts=2.
pub const LARGE_GRID_NNO: usize = 100_000;

/// The effective dispatch crossover for a grid with `nno` compressed
/// rows: blocks narrower than the returned width are routed through the
/// single-point kernel by
/// [`KernelKind::evaluate_compressed_batch`](crate::KernelKind).
/// Grid-size-aware because the break-even point moves with the surplus
/// working set (see [`LARGE_GRID_NNO`]); both paths stay bitwise
/// identical per point, so the routing never changes values.
pub fn batch_crossover(nno: usize) -> usize {
    if nno >= LARGE_GRID_NNO {
        3
    } else {
        BATCH_CROSSOVER
    }
}

// The alive-lane mask of a chunk is a single u64 (bit k ⇔ point k's chain
// product is non-zero); the chunk width must not outgrow it.
const _: () = assert!(BATCH_CHUNK <= 64);

/// A block of query points in structure-of-arrays layout: coordinate `d`
/// of point `p` lives at `column(d)[p]`. This is the layout the batched
/// kernels consume — the per-dimension gather of the xpv fill reads a
/// contiguous run instead of striding through point-major rows.
#[derive(Clone, Debug, Default)]
pub struct PointBlock {
    dim: usize,
    npts: usize,
    /// `dim` columns of `npts` coordinates each: `coords[d * npts + p]`.
    coords: Vec<f64>,
}

impl PointBlock {
    /// An empty block of `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        PointBlock {
            dim,
            npts: 0,
            coords: Vec::new(),
        }
    }

    /// An empty block with room for `capacity` points per dimension.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        PointBlock {
            dim,
            npts: 0,
            coords: Vec::with_capacity(dim * capacity),
        }
    }

    /// Builds a block from point-major rows (`npts × dim`, the layout the
    /// rest of the code base passes around) by transposing into SoA.
    pub fn from_rows(dim: usize, rows: &[f64]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(rows.len() % dim, 0, "ragged point rows");
        let npts = rows.len() / dim;
        let mut coords = vec![0.0; rows.len()];
        for p in 0..npts {
            for d in 0..dim {
                coords[d * npts + p] = rows[p * dim + d];
            }
        }
        PointBlock { dim, npts, coords }
    }

    /// Appends one point (given as a `dim`-length row). Re-strides every
    /// column, so building a block point-by-point is quadratic — hot
    /// paths should gather rows and transpose once with
    /// [`PointBlock::from_rows`]; `push` is for small or incremental
    /// blocks.
    pub fn push(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim);
        let old = self.npts;
        self.npts += 1;
        // Grow each column in place, back to front, so the existing
        // columns shift into their new strided positions.
        self.coords.resize(self.dim * self.npts, 0.0);
        for d in (0..self.dim).rev() {
            for p in (0..old).rev() {
                self.coords[d * self.npts + p] = self.coords[d * old + p];
            }
        }
        for d in 0..self.dim {
            self.coords[d * self.npts + old] = x[d];
        }
    }

    /// Removes all points, keeping the allocation.
    pub fn clear(&mut self) {
        self.npts = 0;
        self.coords.clear();
    }

    /// Number of points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.npts
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.npts == 0
    }

    /// Dimensionality of the points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous coordinate column of dimension `d`.
    #[inline]
    pub fn column(&self, d: usize) -> &[f64] {
        &self.coords[d * self.npts..(d + 1) * self.npts]
    }

    /// Copies point `p` into the point-major row `out`.
    pub fn point(&self, p: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.coords[d * self.npts + p];
        }
    }
}

/// A per-chain chunk accumulator: for every set bit `k` of `mask` (the
/// chunk's alive lanes, bit `k` ⇔ `temps[k] != 0`), performs
/// `out[k·stride ..][..row.len()] += temps[k] · row`, ascending `k`.
/// Hoisting the whole point loop behind one (possibly `target_feature`)
/// function call amortizes the call and loop-setup overhead that a
/// per-point axpy pays `npts` times per chain, and the bitmask walk
/// visits exactly the alive lanes — no branchy scan over the (mostly
/// dead) chunk. `stride` is the full `ndofs` row pitch.
type RowAccum = fn(&[f64], u64, &[f64], &mut [f64], usize);

/// Scalar accumulator with the exact inner loop shape of the
/// single-point `x86` kernel, so the scalar batch variant stays bitwise
/// equal to it.
fn accum_scalar(temps: &[f64], mut mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    while mask != 0 {
        let k = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let temp = temps[k];
        let slot = &mut out[k * stride..k * stride + row.len()];
        for (o, s) in slot.iter_mut().zip(row) {
            *o += temp * s;
        }
    }
}

/// Portable lane accumulator matching `lanes::axpy::<N>` per point.
fn accum_lanes<const N: usize>(
    temps: &[f64],
    mut mask: u64,
    row: &[f64],
    out: &mut [f64],
    stride: usize,
) {
    while mask != 0 {
        let k = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        crate::lanes::axpy::<N>(temps[k], row, &mut out[k * stride..k * stride + row.len()]);
    }
}

// SAFETY: caller must ensure the host supports AVX and that for every
// set bit `k` of `mask`, `temps[k]` exists and
// `out[k * stride .. k * stride + row.len()]` is in bounds — both are
// established by the caller's slice indexing (`temps[k]` and the `out`
// range expression panic before any raw pointer is formed if violated).
// Inner loops are bounded by `j + 4 <= n` / `j < n` with `n = row.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn accum_avx(temps: &[f64], mut mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    use std::arch::x86_64::*;
    let n = row.len();
    while mask != 0 {
        let k = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let temp = temps[k];
        let va = _mm256_set1_pd(temp);
        let y = out[k * stride..k * stride + n].as_mut_ptr();
        let mut j = 0usize;
        while j + 4 <= n {
            let vx = _mm256_loadu_pd(row.as_ptr().add(j));
            let vy = _mm256_loadu_pd(y.add(j));
            _mm256_storeu_pd(y.add(j), _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
            j += 4;
        }
        while j < n {
            *y.add(j) += temp * row.get_unchecked(j);
            j += 1;
        }
    }
}

// SAFETY: caller must ensure the host supports AVX2+FMA; same per-bit
// bounds contract and in-bounds argument as [`accum_avx`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn accum_avx2(temps: &[f64], mut mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    use std::arch::x86_64::*;
    let n = row.len();
    while mask != 0 {
        let k = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let temp = temps[k];
        let va = _mm256_set1_pd(temp);
        let y = out[k * stride..k * stride + n].as_mut_ptr();
        let mut j = 0usize;
        while j + 4 <= n {
            let vx = _mm256_loadu_pd(row.as_ptr().add(j));
            let vy = _mm256_loadu_pd(y.add(j));
            _mm256_storeu_pd(y.add(j), _mm256_fmadd_pd(va, vx, vy));
            j += 4;
        }
        while j < n {
            *y.add(j) += temp * row.get_unchecked(j);
            j += 1;
        }
    }
}

// SAFETY: caller must ensure the host supports AVX-512F; same per-bit
// bounds contract as [`accum_avx`]. The ragged tail uses masked
// loads/stores enabling exactly the `n - j < 8` in-bounds lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn accum_avx512(temps: &[f64], mut mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    use std::arch::x86_64::*;
    let n = row.len();
    while mask != 0 {
        let k = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let temp = temps[k];
        let va = _mm512_set1_pd(temp);
        let y = out[k * stride..k * stride + n].as_mut_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let vx = _mm512_loadu_pd(row.as_ptr().add(j));
            let vy = _mm512_loadu_pd(y.add(j));
            _mm512_storeu_pd(y.add(j), _mm512_fmadd_pd(va, vx, vy));
            j += 8;
        }
        if j < n {
            let mask = (1u8 << (n - j)) - 1;
            let vx = _mm512_maskz_loadu_pd(mask, row.as_ptr().add(j));
            let vy = _mm512_maskz_loadu_pd(mask, y.add(j));
            _mm512_mask_storeu_pd(y.add(j), mask, _mm512_fmadd_pd(va, vx, vy));
        }
    }
}

/// Safe wrapper around [`accum_avx`]; callable only after detection.
fn accum_avx_safe(temps: &[f64], mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    debug_assert!(VectorIsa::Avx.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when the `avx` feature was detected.
    unsafe {
        accum_avx(temps, mask, row, out, stride)
    }
    #[cfg(not(target_arch = "x86_64"))]
    accum_lanes::<4>(temps, mask, row, out, stride)
}

/// Safe wrapper around [`accum_avx2`]; callable only after detection.
fn accum_avx2_safe(temps: &[f64], mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    debug_assert!(VectorIsa::Avx2.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when `avx2` and `fma` were detected.
    unsafe {
        accum_avx2(temps, mask, row, out, stride)
    }
    #[cfg(not(target_arch = "x86_64"))]
    accum_lanes::<4>(temps, mask, row, out, stride)
}

/// Safe wrapper around [`accum_avx512`]; callable only after detection.
fn accum_avx512_safe(temps: &[f64], mask: u64, row: &[f64], out: &mut [f64], stride: usize) {
    debug_assert!(VectorIsa::Avx512.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when `avx512f` was detected.
    unsafe {
        accum_avx512(temps, mask, row, out, stride)
    }
    #[cfg(not(target_arch = "x86_64"))]
    accum_lanes::<8>(temps, mask, row, out, stride)
}

/// Picks the chunk accumulator for an ISA, falling back to the portable
/// lane implementation of the same width when the CPU lacks the feature
/// (mirroring the single-point kernels' substitution table).
fn select_accum(isa: VectorIsa) -> RowAccum {
    match (isa, isa.native()) {
        (VectorIsa::Avx, true) => accum_avx_safe,
        (VectorIsa::Avx2, true) => accum_avx2_safe,
        (VectorIsa::Avx512, true) => accum_avx512_safe,
        (VectorIsa::Avx | VectorIsa::Avx2, false) => accum_lanes::<4>,
        (VectorIsa::Avx512, false) => accum_lanes::<8>,
    }
}

/// Processes points `lo..hi` of `block`, writing `out[k·ndofs ..]` for
/// the `k`-th point of the span. Shared core of every batch variant.
fn batch_span(
    state: &CompressedState,
    block: &PointBlock,
    lo: usize,
    hi: usize,
    scratch: &mut Scratch,
    out: &mut [f64],
    accum: RowAccum,
) {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    debug_assert_eq!(out.len(), (hi - lo) * ndofs);
    let xps = cg.xps();
    let nfreq = cg.nfreq();
    let chains = cg.chains();
    let surplus = &state.surplus;
    out.fill(0.0);

    let mut at = lo;
    while at < hi {
        let chunk = (hi - at).min(BATCH_CHUNK);
        let (xpvb, temps, colmask) = scratch.prepare_batch(xps.len(), chunk);
        let full = if chunk == 64 {
            u64::MAX
        } else {
            (1u64 << chunk) - 1
        };

        // Loop 1, blocked: basis values of every xps entry at every point
        // of the chunk. Entry-major so the chain walk reads contiguous
        // point columns; the per-entry coordinate gather is a contiguous
        // slice of the SoA block. Each entry's nonzero-lane mask is built
        // in the same pass — the chain pruning index of loop 2.
        for (e, entry) in xps.iter().enumerate() {
            let xs = &block.column(entry.index as usize)[at..at + chunk];
            let slot = &mut xpvb[e * chunk..(e + 1) * chunk];
            let mut m = 0u64;
            for k in 0..chunk {
                let v = linear_basis(xs[k], entry.l, entry.i).max(0.0);
                slot[k] = v;
                m |= ((v != 0.0) as u64) << k;
            }
            colmask[e] = m;
        }
        colmask[0] = full; // the sentinel evaluates to 1 everywhere

        // Loop 2, blocked over points: every chain is walked once per
        // chunk. The AND of its factors' column masks bounds the alive
        // lanes from above, so a chain whose support misses the whole
        // chunk — the overwhelmingly common case on sparse grids — costs
        // a few u64 ANDs and no floating-point work at all. Surviving
        // chains compute the exact products: the vector starts as the
        // first factor column (`1·x ≡ x`, so this is bitwise the
        // single-point walk) and multiplies the remaining factors
        // unconditionally — a dead lane's zero just propagates
        // (`0 · finite = 0`, the value the single-point early exit
        // produces), keeping the loop branch-free and vectorizable.
        {
            for (p, chain) in chains.chunks_exact(nfreq).enumerate() {
                // Chain length: position of the 0 terminator. The typical
                // grid has nfreq ≤ 2, so the product below is one fused
                // pass over the chunk (multiply + aliveness reduction),
                // not a copy + multiply + scan triple.
                let len = chain.iter().position(|&i| i == 0).unwrap_or(nfreq);
                let mut bound = full;
                for &idx in &chain[..len] {
                    bound &= colmask[idx as usize];
                }
                if bound == 0 {
                    // Some factor is zero on every lane ⇒ every product
                    // is zero ⇒ the single-point kernel would skip every
                    // point of the chunk too. (NaN factors set their
                    // column-mask bits, so NaN lanes are never pruned.)
                    continue;
                }
                // The alive mask (bit k ⇔ `temps[k] != 0.0`) is rebuilt
                // exactly from the products — a product can still
                // underflow to zero on a lane the bound kept.
                let mut mask = 0u64;
                match len {
                    0 => {
                        // All-sentinel chain (the root): product is 1.
                        temps[..chunk].fill(1.0);
                        mask = full;
                    }
                    1 => {
                        let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                        for k in 0..chunk {
                            let v = c0[k];
                            temps[k] = v;
                            mask |= ((v != 0.0) as u64) << k;
                        }
                    }
                    2 => {
                        let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                        let c1 = &xpvb[chain[1] as usize * chunk..][..chunk];
                        for k in 0..chunk {
                            let v = c0[k] * c1[k];
                            temps[k] = v;
                            mask |= ((v != 0.0) as u64) << k;
                        }
                    }
                    _ => {
                        let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                        let c1 = &xpvb[chain[1] as usize * chunk..][..chunk];
                        for k in 0..chunk {
                            temps[k] = c0[k] * c1[k];
                        }
                        for &idx in &chain[2..len - 1] {
                            let col = &xpvb[idx as usize * chunk..][..chunk];
                            for (t, &v) in temps[..chunk].iter_mut().zip(col) {
                                *t *= v;
                            }
                        }
                        let last = &xpvb[chain[len - 1] as usize * chunk..][..chunk];
                        for k in 0..chunk {
                            let w = temps[k] * last[k];
                            temps[k] = w;
                            mask |= ((w != 0.0) as u64) << k;
                        }
                    }
                }
                // Chains dead for the whole chunk (the common case on
                // sparse grids — most grid functions' supports miss most
                // points) skip the accumulator entirely.
                if mask == 0 {
                    continue;
                }
                // The surplus row is resident for every alive lane's
                // accumulation; dead points are not even visited, as in
                // the single-point kernel's skip. One accumulator call
                // covers the whole chunk.
                let row = &surplus[p * ndofs..(p + 1) * ndofs];
                let o = (at - lo) * ndofs;
                accum(
                    &temps[..chunk],
                    mask,
                    row,
                    &mut out[o..o + chunk * ndofs],
                    ndofs,
                );
            }
        }
        at += chunk;
    }
}

/// Validates the shared preconditions of every batch entry point.
fn check_batch(state: &CompressedState, block: &PointBlock, out: &[f64]) {
    assert_eq!(block.dim(), state.grid.dim(), "point/grid dim mismatch");
    assert_eq!(
        out.len(),
        block.len() * state.ndofs,
        "output must be npts × ndofs"
    );
}

/// Scalar batched interpolation (the `x86` kernel restructured over a
/// point block). `out` is point-major `npts × ndofs`. Bitwise equal to
/// calling [`crate::x86::interpolate`] per point.
pub fn interpolate_batch(
    state: &CompressedState,
    block: &PointBlock,
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    check_batch(state, block, out);
    batch_span(state, block, 0, block.len(), scratch, out, accum_scalar);
}

/// Batched `avx` kernel: 4-wide multiply + add accumulation.
pub fn interpolate_batch_avx(
    state: &CompressedState,
    block: &PointBlock,
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    check_batch(state, block, out);
    let accum = select_accum(VectorIsa::Avx);
    batch_span(state, block, 0, block.len(), scratch, out, accum);
}

/// Batched `avx2` kernel: 4-wide FMA accumulation.
pub fn interpolate_batch_avx2(
    state: &CompressedState,
    block: &PointBlock,
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    check_batch(state, block, out);
    let accum = select_accum(VectorIsa::Avx2);
    batch_span(state, block, 0, block.len(), scratch, out, accum);
}

/// Batched `avx512` kernel (single-threaded core): 8-wide FMA.
pub fn interpolate_batch_avx512(
    state: &CompressedState,
    block: &PointBlock,
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    check_batch(state, block, out);
    let accum = select_accum(VectorIsa::Avx512);
    batch_span(state, block, 0, block.len(), scratch, out, accum);
}

/// The threaded batch kernel: the **point axis** is split into contiguous
/// spans across `threads` workers (the paper's intra-kernel thread seam,
/// applied where batching makes it embarrassingly parallel — each worker
/// owns disjoint output rows, so no partial-sum reduction is needed).
/// Results are bitwise equal to the single-threaded variant.
pub fn interpolate_batch_avx512_mt(
    state: &CompressedState,
    block: &PointBlock,
    threads: usize,
    out: &mut [f64],
) {
    check_batch(state, block, out);
    let ndofs = state.ndofs;
    let npts = block.len();
    let threads = threads.max(1).min(npts.div_ceil(BATCH_CHUNK).max(1));
    if threads == 1 {
        let mut scratch = Scratch::default();
        interpolate_batch_avx512(state, block, &mut scratch, out);
        return;
    }
    let accum = select_accum(VectorIsa::Avx512);
    // Span boundaries aligned to whole chunks so every worker's interior
    // chunking matches the single-threaded walk.
    let chunks = npts.div_ceil(BATCH_CHUNK);
    let per_worker = chunks.div_ceil(threads) * BATCH_CHUNK;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = (w * per_worker).min(npts);
            let hi = ((w + 1) * per_worker).min(npts);
            if lo == hi {
                break;
            }
            let (mine, tail) = rest.split_at_mut((hi - lo) * ndofs);
            rest = tail;
            handles.push(scope.spawn(move || {
                let mut scratch = Scratch::default();
                batch_span(state, block, lo, hi, &mut scratch, mine, accum);
            }));
        }
        for h in handles {
            h.join().expect("batch worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn make_state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x
                    .iter()
                    .enumerate()
                    .map(|(t, &v)| ((t + k + 1) as f64 * v).sin() + v * v)
                    .sum();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    fn probe_rows(dim: usize, count: usize) -> Vec<f64> {
        (0..count * dim)
            .map(|s| ((s * 29 + 7) as f64 * 0.01937 + 0.003) % 1.0)
            .collect()
    }

    #[test]
    fn soa_transpose_roundtrips() {
        let rows = probe_rows(3, 5);
        let block = PointBlock::from_rows(3, &rows);
        assert_eq!(block.len(), 5);
        assert_eq!(block.dim(), 3);
        let mut x = [0.0; 3];
        for p in 0..5 {
            block.point(p, &mut x);
            assert_eq!(&x[..], &rows[p * 3..(p + 1) * 3]);
        }
        // push() builds the same layout incrementally.
        let mut pushed = PointBlock::new(3);
        for p in 0..5 {
            pushed.push(&rows[p * 3..(p + 1) * 3]);
        }
        assert_eq!(pushed.coords, block.coords);
    }

    #[test]
    fn batch_matches_single_point_bitwise() {
        let state = make_state(4, 3, 7);
        let rows = probe_rows(4, 13);
        let block = PointBlock::from_rows(4, &rows);
        let mut scratch = Scratch::default();
        let mut got = vec![0.0; 13 * 7];
        interpolate_batch(&state, &block, &mut scratch, &mut got);
        let mut want = vec![0.0; 7];
        for p in 0..13 {
            crate::x86::interpolate(&state, &rows[p * 4..(p + 1) * 4], &mut scratch, &mut want);
            assert_eq!(&got[p * 7..(p + 1) * 7], &want[..], "point {p}");
        }
    }

    #[test]
    fn chunked_spans_do_not_change_results() {
        // More points than one chunk: interior chunk boundaries must be
        // invisible.
        let state = make_state(3, 3, 3);
        let rows = probe_rows(3, BATCH_CHUNK * 2 + 5);
        let block = PointBlock::from_rows(3, &rows);
        let mut scratch = Scratch::default();
        let n = block.len();
        let mut got = vec![0.0; n * 3];
        interpolate_batch(&state, &block, &mut scratch, &mut got);
        let mut want = vec![0.0; 3];
        for p in 0..n {
            crate::x86::interpolate(&state, &rows[p * 3..(p + 1) * 3], &mut scratch, &mut want);
            assert_eq!(&got[p * 3..(p + 1) * 3], &want[..], "point {p}");
        }
    }

    #[test]
    fn threaded_batch_matches_single_threaded() {
        let state = make_state(3, 4, 5);
        let rows = probe_rows(3, BATCH_CHUNK * 3 + 11);
        let block = PointBlock::from_rows(3, &rows);
        let mut scratch = Scratch::default();
        let n = block.len();
        let mut want = vec![0.0; n * 5];
        interpolate_batch_avx512(&state, &block, &mut scratch, &mut want);
        for threads in [1usize, 2, 3, 8] {
            let mut got = vec![0.0; n * 5];
            interpolate_batch_avx512_mt(&state, &block, threads, &mut got);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let state = make_state(2, 2, 2);
        let block = PointBlock::new(2);
        let mut scratch = Scratch::default();
        let mut out: Vec<f64> = Vec::new();
        interpolate_batch(&state, &block, &mut scratch, &mut out);
        interpolate_batch_avx512_mt(&state, &block, 4, &mut out);
    }
}
