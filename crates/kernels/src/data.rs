//! Kernel-facing interpolant states: the dense baseline format and the
//! compressed format, each bundling index structure + surplus matrix.

use hddm_asg::{DenseIndexMatrix, SparseGrid};
use hddm_compress::CompressedGrid;

/// Interpolant in the *dense* format of the paper's earlier work [18]
/// (Heinecke–Pflüger-style `nno × d` index matrix). Consumed by the `gold`
/// kernel only; kept as the baseline every optimization is measured
/// against.
#[derive(Clone, Debug)]
pub struct DenseState {
    /// The `nno × d` pre-scaled `(ł, í)` matrix.
    pub matrix: DenseIndexMatrix,
    /// Row-major `nno × ndofs` surpluses in grid order.
    pub surplus: Vec<f64>,
    /// Degrees of freedom per point (118 in the OLG application).
    pub ndofs: usize,
}

impl DenseState {
    /// Bundles a grid and its (grid-ordered) surpluses.
    pub fn new(grid: &SparseGrid, surplus: Vec<f64>, ndofs: usize) -> Self {
        assert_eq!(surplus.len(), grid.len() * ndofs);
        DenseState {
            matrix: DenseIndexMatrix::from_grid(grid),
            surplus,
            ndofs,
        }
    }
}

/// Interpolant in the compressed format of Sec. IV-B. Surpluses are stored
/// in chain order (the "surplus matrix reordering").
#[derive(Clone, Debug)]
pub struct CompressedState {
    /// Chains + xps structure.
    pub grid: CompressedGrid,
    /// Row-major `nno × ndofs` surpluses in *chain* order.
    pub surplus: Vec<f64>,
    /// Degrees of freedom per point.
    pub ndofs: usize,
}

impl CompressedState {
    /// Compresses a grid and permutes grid-ordered surpluses into chain
    /// order.
    pub fn new(grid: &SparseGrid, surplus_grid_order: &[f64], ndofs: usize) -> Self {
        let cg = CompressedGrid::build(grid);
        let surplus = cg.reorder_rows(surplus_grid_order, ndofs);
        CompressedState {
            grid: cg,
            surplus,
            ndofs,
        }
    }

    /// Wraps an existing compressed grid with surpluses already in chain
    /// order (used when the driver extends an interpolant incrementally).
    pub fn from_parts(grid: CompressedGrid, surplus_chain_order: Vec<f64>, ndofs: usize) -> Self {
        assert_eq!(surplus_chain_order.len(), grid.nno() * ndofs);
        CompressedState {
            grid,
            surplus: surplus_chain_order,
            ndofs,
        }
    }

    /// An interpolant over no points at all — the seed of incremental
    /// construction ([`Self::append_rows`]). Evaluates to zero everywhere.
    pub fn empty(dim: usize, ndofs: usize) -> Self {
        CompressedState {
            grid: CompressedGrid::empty(dim),
            surplus: Vec::new(),
            ndofs,
        }
    }

    /// Appends the grid points `new_ids` (dense ids into `grid`) together
    /// with their surplus rows (`new_ids.len() × ndofs`, in `new_ids`
    /// order) to this interpolant **without recompressing**: chain rows
    /// are derived per point and appended, the `xps` dictionary grows
    /// only by genuinely new 1-D elements, and the reorder invariant is
    /// preserved — `order` maps every appended chain row back to its
    /// dense id, so [`CompressedGrid::restore_rows`] keeps working.
    ///
    /// Appending the same ids in one call or split across many calls
    /// produces **bitwise identical** states (the extend-equals-rebuild
    /// property the driver's incremental hierarchization relies on).
    pub fn append_rows(&mut self, grid: &SparseGrid, new_ids: &[u32], rows: &[f64]) {
        assert_eq!(
            rows.len(),
            new_ids.len() * self.ndofs,
            "ragged surplus rows"
        );
        self.grid.append_nodes(grid, new_ids);
        self.surplus.extend_from_slice(rows);
    }

    /// [`Self::append_rows`] under the name the driver's per-level loop
    /// uses: extends the partial interpolant of the current step by one
    /// refinement frontier (already hierarchized rows in frontier order).
    pub fn extend_from_frontier(&mut self, grid: &SparseGrid, frontier: &[u32], rows: &[f64]) {
        self.append_rows(grid, frontier, rows);
    }
}

/// Reusable per-thread evaluation scratch. Sized for the largest state it
/// has seen; the `xpv` array is the cache/shared-memory resident working
/// set the compression was designed around. The batch kernels keep their
/// entry-major `xpv` block and chain-product vector here too, sized once
/// per block — never reallocated per point.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Clamped 1-D basis values, one per `xps` entry.
    pub xpv: Vec<f64>,
    /// Entry-major basis-value block for batched evaluation
    /// (`nxps × chunk`).
    xpv_block: Vec<f64>,
    /// Per-point running chain products (`chunk`).
    temps: Vec<f64>,
    /// Per-xps-entry nonzero-lane masks (`nxps`), the chain pruning index.
    colmask: Vec<u64>,
    /// High-water marks of the batch buffers, asserting that capacity is
    /// monotone across the chunks of a batch (a shrink would mean a
    /// reallocation snuck back into the hot loop).
    watermark: (usize, usize),
}

impl Scratch {
    /// Ensures capacity for a state with `nxps` unique elements.
    #[inline]
    pub fn prepare(&mut self, nxps: usize) -> &mut [f64] {
        if self.xpv.len() < nxps {
            self.xpv.resize(nxps, 0.0);
        }
        &mut self.xpv[..nxps]
    }

    /// Ensures batch capacity for `nxps` unique elements × a chunk of
    /// `chunk` points, returning the `(xpv_block, temps, colmask)`
    /// triple. Buffers only ever grow — sized by the first (largest)
    /// chunk of a batch, then reused; the debug assertion fires if a
    /// request at or below the high-water mark ever reallocates, i.e. if
    /// per-chunk reallocation sneaks back into the hot loop.
    #[inline]
    pub fn prepare_batch(
        &mut self,
        nxps: usize,
        chunk: usize,
    ) -> (&mut [f64], &mut [f64], &mut [u64]) {
        #[cfg(debug_assertions)]
        let caps = (self.xpv_block.capacity(), self.temps.capacity());
        if self.xpv_block.len() < nxps * chunk {
            self.xpv_block.resize(nxps * chunk, 0.0);
        }
        if self.temps.len() < chunk {
            self.temps.resize(chunk, 0.0);
        }
        if self.colmask.len() < nxps {
            self.colmask.resize(nxps, 0);
        }
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                nxps * chunk > self.watermark.0 || self.xpv_block.capacity() == caps.0,
                "xpv block reallocated below its high-water mark"
            );
            debug_assert!(
                chunk > self.watermark.1 || self.temps.capacity() == caps.1,
                "temps reallocated below their high-water mark"
            );
        }
        self.watermark = (
            self.watermark.0.max(nxps * chunk),
            self.watermark.1.max(chunk),
        );
        (
            &mut self.xpv_block[..nxps * chunk],
            &mut self.temps[..chunk],
            &mut self.colmask[..nxps],
        )
    }
}
