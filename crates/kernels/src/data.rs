//! Kernel-facing interpolant states: the dense baseline format and the
//! compressed format, each bundling index structure + surplus matrix.

use hddm_asg::{DenseIndexMatrix, SparseGrid};
use hddm_compress::CompressedGrid;

/// Interpolant in the *dense* format of the paper's earlier work [18]
/// (Heinecke–Pflüger-style `nno × d` index matrix). Consumed by the `gold`
/// kernel only; kept as the baseline every optimization is measured
/// against.
#[derive(Clone, Debug)]
pub struct DenseState {
    /// The `nno × d` pre-scaled `(ł, í)` matrix.
    pub matrix: DenseIndexMatrix,
    /// Row-major `nno × ndofs` surpluses in grid order.
    pub surplus: Vec<f64>,
    /// Degrees of freedom per point (118 in the OLG application).
    pub ndofs: usize,
}

impl DenseState {
    /// Bundles a grid and its (grid-ordered) surpluses.
    pub fn new(grid: &SparseGrid, surplus: Vec<f64>, ndofs: usize) -> Self {
        assert_eq!(surplus.len(), grid.len() * ndofs);
        DenseState {
            matrix: DenseIndexMatrix::from_grid(grid),
            surplus,
            ndofs,
        }
    }
}

/// Interpolant in the compressed format of Sec. IV-B. Surpluses are stored
/// in chain order (the "surplus matrix reordering").
#[derive(Clone, Debug)]
pub struct CompressedState {
    /// Chains + xps structure.
    pub grid: CompressedGrid,
    /// Row-major `nno × ndofs` surpluses in *chain* order.
    pub surplus: Vec<f64>,
    /// Degrees of freedom per point.
    pub ndofs: usize,
}

impl CompressedState {
    /// Compresses a grid and permutes grid-ordered surpluses into chain
    /// order.
    pub fn new(grid: &SparseGrid, surplus_grid_order: &[f64], ndofs: usize) -> Self {
        let cg = CompressedGrid::build(grid);
        let surplus = cg.reorder_rows(surplus_grid_order, ndofs);
        CompressedState {
            grid: cg,
            surplus,
            ndofs,
        }
    }

    /// Wraps an existing compressed grid with surpluses already in chain
    /// order (used when the driver extends an interpolant incrementally).
    pub fn from_parts(grid: CompressedGrid, surplus_chain_order: Vec<f64>, ndofs: usize) -> Self {
        assert_eq!(surplus_chain_order.len(), grid.nno() * ndofs);
        CompressedState {
            grid,
            surplus: surplus_chain_order,
            ndofs,
        }
    }
}

/// Reusable per-thread evaluation scratch. Sized for the largest state it
/// has seen; the `xpv` array is the cache/shared-memory resident working
/// set the compression was designed around.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Clamped 1-D basis values, one per `xps` entry.
    pub xpv: Vec<f64>,
}

impl Scratch {
    /// Ensures capacity for a state with `nxps` unique elements.
    #[inline]
    pub fn prepare(&mut self, nxps: usize) -> &mut [f64] {
        if self.xpv.len() < nxps {
            self.xpv.resize(nxps, 0.0);
        }
        &mut self.xpv[..nxps]
    }
}
