//! The `gold` kernel: scalar interpolation over the dense `nno × d` index
//! matrix — a direct transcription of Fig. 5 (right), the baseline data
//! format of the paper's earlier work [18].

use crate::data::DenseState;
use hddm_asg::linear_basis;

/// Evaluates the interpolant at unit-cube point `x`, accumulating into
/// `out` (cleared first). Complexity `nno × d` basis evaluations with an
/// early exit on the first non-positive factor.
pub fn interpolate(state: &DenseState, x: &[f64], out: &mut [f64]) {
    let dim = state.matrix.dim();
    let nno = state.matrix.nno();
    let ndofs = state.ndofs;
    assert_eq!(x.len(), dim);
    assert_eq!(out.len(), ndofs);
    out.fill(0.0);
    let pairs = state.matrix.raw();
    'points: for p in 0..nno {
        let mut temp = 1.0;
        let row = &pairs[2 * p * dim..2 * (p + 1) * dim];
        for (t, pair) in row.chunks_exact(2).enumerate() {
            let xp = linear_basis(x[t], pair[0], pair[1]);
            if xp <= 0.0 {
                continue 'points;
            }
            temp *= xp;
        }
        let surplus = &state.surplus[p * ndofs..(p + 1) * ndofs];
        for (o, s) in out.iter_mut().zip(surplus) {
            *o += temp * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, interpolate_reference, regular_grid, tabulate};

    #[test]
    fn matches_reference_interpolation() {
        let grid = regular_grid(3, 4);
        let ndofs = 2;
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            out[0] = x[0] * x[1] + x[2];
            out[1] = (x[0] - 0.3).abs();
        });
        hierarchize(&grid, &mut surplus, ndofs);
        let state = DenseState::new(&grid, surplus.clone(), ndofs);
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for s in 0..30 {
            let x = [
                (s as f64 * 0.317 + 0.11) % 1.0,
                (s as f64 * 0.173 + 0.53) % 1.0,
                (s as f64 * 0.611 + 0.29) % 1.0,
            ];
            interpolate(&state, &x, &mut got);
            interpolate_reference(&grid, &surplus, ndofs, &x, &mut want);
            assert!((got[0] - want[0]).abs() < 1e-12);
            assert!((got[1] - want[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn early_exit_on_boundary() {
        // At a corner, most basis functions vanish; result must equal the
        // reference (exercises the `goto zero` path).
        let grid = regular_grid(2, 4);
        let mut surplus = tabulate(&grid, 1, |x, out| out[0] = x[0] + 2.0 * x[1]);
        hierarchize(&grid, &mut surplus, 1);
        let state = DenseState::new(&grid, surplus.clone(), 1);
        let mut got = [0.0];
        let mut want = [0.0];
        for x in [[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]] {
            interpolate(&state, &x, &mut got);
            interpolate_reference(&grid, &surplus, 1, &x, &mut want);
            assert!((got[0] - want[0]).abs() < 1e-12, "{x:?}");
        }
    }
}
