//! The manually vectorized compressed-format kernels: `avx`, `avx2` and
//! `avx512` (Sec. V-A).
//!
//! All three share the structure of the `x86` kernel — xpv fill, scalar
//! chain walk, vectorized surplus accumulation — and differ in the
//! instruction set of the accumulation (`value[dof] += temp ·
//! surplus(i, dof)`, the only loop with enough arithmetic density to
//! vectorize):
//!
//! * **avx** — 4-wide `vmulpd`/`vaddpd` (no FMA, Sandy/Ivy Bridge);
//! * **avx2** — 4-wide `vfmadd231pd` (Haswell/Broadwell);
//! * **avx512** — 8-wide `vfmadd231pd` on zmm registers, plus the paper's
//!   intra-kernel thread parallelization with partial vector sums whose
//!   zero contributions "initiate no actual memory flow"
//!   ([`interpolate_avx512_mt`]).
//!
//! On hosts without the corresponding instruction set the entry points fall
//! back to the portable lane implementations of [`crate::lanes`], which
//! produce identical results with the same blocking (see DESIGN.md,
//! substitution table).

use crate::data::{CompressedState, Scratch};
use hddm_asg::linear_basis;

/// Which vector ISA a kernel variant targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorIsa {
    /// 4-wide, multiply + add (AVX).
    Avx,
    /// 4-wide, fused multiply-add (AVX2 + FMA).
    Avx2,
    /// 8-wide, fused multiply-add (AVX-512F).
    Avx512,
}

impl VectorIsa {
    /// Whether the running CPU supports this ISA natively.
    pub fn native(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                VectorIsa::Avx => std::arch::is_x86_feature_detected!("avx"),
                VectorIsa::Avx2 => {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                VectorIsa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

/// Shared skeleton: fills `xpv`, walks chains, and calls `axpy(temp, row,
/// out)` for every surviving point.
#[inline(always)]
fn skeleton<F: FnMut(f64, &[f64], &mut [f64])>(
    state: &CompressedState,
    x: &[f64],
    scratch: &mut Scratch,
    out: &mut [f64],
    mut axpy: F,
) {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    assert_eq!(x.len(), cg.dim());
    assert_eq!(out.len(), ndofs);
    let xps = cg.xps();
    let xpv = scratch.prepare(xps.len());
    for (v, entry) in xpv.iter_mut().zip(xps) {
        *v = linear_basis(x[entry.index as usize], entry.l, entry.i).max(0.0);
    }
    out.fill(0.0);
    let nfreq = cg.nfreq();
    let chains = cg.chains();
    for (p, chain) in chains.chunks_exact(nfreq).enumerate() {
        let temp = chain_product(chain, xpv);
        if temp == 0.0 {
            continue;
        }
        let row = &state.surplus[p * ndofs..(p + 1) * ndofs];
        axpy(temp, row, out);
    }
}

/// Walks one chain: the product of its xpv factors, 0 when any factor
/// kills it. Slot 0 terminates (the sentinel).
#[inline(always)]
pub fn chain_product(chain: &[u32], xpv: &[f64]) -> f64 {
    let mut temp = 1.0;
    for &idx in chain {
        if idx == 0 {
            break;
        }
        temp *= xpv[idx as usize];
        if temp == 0.0 {
            return 0.0;
        }
    }
    temp
}

/// Safe wrapper around the AVX axpy; callable only after detection.
fn axpy_avx_safe(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert!(VectorIsa::Avx.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when the `avx` feature was detected at runtime.
    unsafe {
        axpy_avx(a, x, y)
    }
    #[cfg(not(target_arch = "x86_64"))]
    crate::lanes::axpy::<4>(a, x, y)
}

/// Safe wrapper around the AVX2+FMA axpy; callable only after detection.
fn axpy_avx2_safe(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert!(VectorIsa::Avx2.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when `avx2` and `fma` were detected at runtime.
    unsafe {
        axpy_avx2(a, x, y)
    }
    #[cfg(not(target_arch = "x86_64"))]
    crate::lanes::axpy::<4>(a, x, y)
}

/// Safe wrapper around the AVX-512F axpy; callable only after detection.
fn axpy_avx512_safe(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert!(VectorIsa::Avx512.native());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: selected only when `avx512f` was detected at runtime.
    unsafe {
        axpy_avx512(a, x, y)
    }
    #[cfg(not(target_arch = "x86_64"))]
    crate::lanes::axpy::<8>(a, x, y)
}

/// An accumulation routine `y += a·x` (shared with the batch kernels).
pub(crate) type Axpy = fn(f64, &[f64], &mut [f64]);

/// Picks the accumulation routine for an ISA, falling back to the portable
/// lane implementation of the same width when the CPU lacks the feature.
pub(crate) fn select_axpy(isa: VectorIsa) -> Axpy {
    match (isa, isa.native()) {
        (VectorIsa::Avx, true) => axpy_avx_safe,
        (VectorIsa::Avx2, true) => axpy_avx2_safe,
        (VectorIsa::Avx512, true) => axpy_avx512_safe,
        (VectorIsa::Avx | VectorIsa::Avx2, false) => crate::lanes::axpy::<4>,
        (VectorIsa::Avx512, false) => crate::lanes::axpy::<8>,
    }
}

/// The `avx` kernel: 4-wide multiply + add.
pub fn interpolate_avx(state: &CompressedState, x: &[f64], scratch: &mut Scratch, out: &mut [f64]) {
    let axpy = select_axpy(VectorIsa::Avx);
    skeleton(state, x, scratch, out, axpy);
}

/// The `avx2` kernel: 4-wide FMA.
pub fn interpolate_avx2(
    state: &CompressedState,
    x: &[f64],
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    let axpy = select_axpy(VectorIsa::Avx2);
    skeleton(state, x, scratch, out, axpy);
}

/// The `avx512` kernel (single-threaded core): 8-wide FMA on zmm registers.
pub fn interpolate_avx512(
    state: &CompressedState,
    x: &[f64],
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    let axpy = select_axpy(VectorIsa::Avx512);
    skeleton(state, x, scratch, out, axpy);
}

/// The full `avx512` kernel of Sec. V-A: the point loop is split across
/// `threads` workers, each producing a partial vector sum with 512-bit FMA;
/// partials that received no contribution are skipped in the reduction
/// ("handled specially to initiate no actual memory flow").
pub fn interpolate_avx512_mt(state: &CompressedState, x: &[f64], threads: usize, out: &mut [f64]) {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    assert_eq!(x.len(), cg.dim());
    assert_eq!(out.len(), ndofs);
    let threads = threads.max(1);
    let nno = cg.nno();
    if threads == 1 || nno < 4 * threads {
        let mut scratch = Scratch::default();
        interpolate_avx512(state, x, &mut scratch, out);
        return;
    }

    // xpv is shared read-only across workers (it is small — the paper maps
    // it to L1/shared memory).
    let xps = cg.xps();
    let mut xpv = vec![0.0f64; xps.len()];
    for (v, entry) in xpv.iter_mut().zip(xps) {
        *v = linear_basis(x[entry.index as usize], entry.l, entry.i).max(0.0);
    }

    let nfreq = cg.nfreq();
    let chains = cg.chains();
    let surplus = &state.surplus;
    let chunk = nno.div_ceil(threads);
    let axpy = select_axpy(VectorIsa::Avx512);
    let mut partials: Vec<(bool, Vec<f64>)> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(nno);
            let xpv = &xpv;
            handles.push(scope.spawn(move || {
                let mut partial = vec![0.0f64; ndofs];
                let mut touched = false;
                for p in lo..hi {
                    let temp = chain_product(&chains[p * nfreq..(p + 1) * nfreq], xpv);
                    if temp == 0.0 {
                        continue;
                    }
                    touched = true;
                    let row = &surplus[p * ndofs..(p + 1) * ndofs];
                    axpy(temp, row, &mut partial);
                }
                (touched, partial)
            }));
        }
        for h in handles {
            partials.push(h.join().expect("avx512 worker panicked"));
        }
    });

    out.fill(0.0);
    for (touched, partial) in &partials {
        if !*touched {
            continue; // zero partial: no memory traffic
        }
        crate::lanes::add_assign::<8>(partial, out);
    }
}

/// Best-available axpy on this host (AVX-512 → AVX2 → portable); exported
/// for reuse by the GPU simulator and the solver's dense updates.
#[inline]
pub fn axpy_best(a: f64, x: &[f64], y: &mut [f64]) {
    if VectorIsa::Avx512.native() {
        axpy_avx512_safe(a, x, y);
    } else if VectorIsa::Avx2.native() {
        axpy_avx2_safe(a, x, y);
    } else {
        crate::lanes::axpy::<8>(a, x, y);
    }
}

// SAFETY: caller must ensure the host supports AVX (the
// `#[target_feature]` contract) and that `x.len() == y.len()`. All
// loads/stores stay below `n = x.len()`: the vector loop stops at
// `k + 4 <= n` and the scalar tail at `k < n`, so `get_unchecked` and
// the unaligned intrinsics never touch past either slice.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(a: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_pd(a);
    let mut k = 0usize;
    while k + 4 <= n {
        let vx = _mm256_loadu_pd(x.as_ptr().add(k));
        let vy = _mm256_loadu_pd(y.as_ptr().add(k));
        let prod = _mm256_mul_pd(va, vx);
        _mm256_storeu_pd(y.as_mut_ptr().add(k), _mm256_add_pd(vy, prod));
        k += 4;
    }
    while k < n {
        *y.get_unchecked_mut(k) += a * x.get_unchecked(k);
        k += 1;
    }
}

// SAFETY: caller must ensure the host supports AVX2+FMA and that
// `x.len() == y.len()`; same in-bounds argument as [`axpy_avx`] (vector
// loop bounded by `k + 4 <= n`, scalar tail by `k < n`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(a: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_pd(a);
    let mut k = 0usize;
    while k + 4 <= n {
        let vx = _mm256_loadu_pd(x.as_ptr().add(k));
        let vy = _mm256_loadu_pd(y.as_ptr().add(k));
        _mm256_storeu_pd(y.as_mut_ptr().add(k), _mm256_fmadd_pd(va, vx, vy));
        k += 4;
    }
    while k < n {
        *y.get_unchecked_mut(k) += a * x.get_unchecked(k);
        k += 1;
    }
}

// SAFETY: caller must ensure the host supports AVX-512F and that
// `x.len() == y.len()`. The full-width loop is bounded by `k + 8 <= n`;
// the tail uses masked loads/stores whose mask `(1 << (n - k)) - 1`
// enables exactly the `n - k < 8` in-bounds lanes, so no out-of-bounds
// element is ever touched.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512(a: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm512_set1_pd(a);
    let mut k = 0usize;
    while k + 8 <= n {
        let vx = _mm512_loadu_pd(x.as_ptr().add(k));
        let vy = _mm512_loadu_pd(y.as_ptr().add(k));
        _mm512_storeu_pd(y.as_mut_ptr().add(k), _mm512_fmadd_pd(va, vx, vy));
        k += 8;
    }
    if k < n {
        // Masked tail: AVX-512 handles ragged ndofs (118 = 14·8 + 6).
        let mask = (1u8 << (n - k)) - 1;
        let vx = _mm512_maskz_loadu_pd(mask, x.as_ptr().add(k));
        let vy = _mm512_maskz_loadu_pd(mask, y.as_ptr().add(k));
        _mm512_mask_storeu_pd(y.as_mut_ptr().add(k), mask, _mm512_fmadd_pd(va, vx, vy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn make_state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x
                    .iter()
                    .enumerate()
                    .map(|(t, &v)| ((t + k + 1) as f64 * v).cos())
                    .product();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    fn probe_points(dim: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|s| {
                (0..dim)
                    .map(|t| ((s * 31 + t * 17) as f64 * 0.02347 + 0.005) % 1.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_vector_kernels_match_scalar() {
        // ndofs = 118 exercises the masked AVX-512 tail (118 = 14·8 + 6)
        // and the 4-wide remainder path (118 = 29·4 + 2).
        let state = make_state(4, 3, 118);
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; 118];
        let mut got = vec![0.0; 118];
        for x in probe_points(4, 25) {
            crate::x86::interpolate(&state, &x, &mut scratch, &mut want);
            for kernel in [interpolate_avx, interpolate_avx2, interpolate_avx512] {
                kernel(&state, &x, &mut scratch, &mut got);
                for k in 0..118 {
                    assert!(
                        (got[k] - want[k]).abs() < 1e-12,
                        "dof {k}: {} vs {}",
                        got[k],
                        want[k]
                    );
                }
            }
        }
    }

    #[test]
    fn multithreaded_avx512_matches_single() {
        let state = make_state(3, 4, 7);
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; 7];
        let mut got = vec![0.0; 7];
        for x in probe_points(3, 10) {
            interpolate_avx512(&state, &x, &mut scratch, &mut want);
            for threads in [1usize, 2, 3, 8] {
                interpolate_avx512_mt(&state, &x, threads, &mut got);
                for k in 0..7 {
                    assert!(
                        (got[k] - want[k]).abs() < 1e-12,
                        "threads={threads} dof {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn isa_detection_is_consistent() {
        // On any host, native() must at least not panic; on x86_64 with
        // AVX2, AVX is implied.
        let avx = VectorIsa::Avx.native();
        let avx2 = VectorIsa::Avx2.native();
        if avx2 {
            assert!(avx, "AVX2 implies AVX");
        }
    }

    #[test]
    fn chain_product_short_circuits() {
        let xpv = [1.0, 0.5, 0.0, 2.0];
        assert_eq!(chain_product(&[1, 3], &xpv), 1.0);
        assert_eq!(chain_product(&[2, 3], &xpv), 0.0);
        assert_eq!(chain_product(&[0, 3], &xpv), 1.0); // terminator first
        assert_eq!(chain_product(&[3, 1, 0], &xpv), 1.0);
    }
}
