//! Portable fixed-width lane helpers.
//!
//! These mirror the 4-wide (AVX/AVX2) and 8-wide (AVX-512) register
//! blocking of the intrinsic kernels using plain arrays, so the `avx*`
//! kernel entry points still run — with identical results and the same
//! blocking structure — on hardware without the corresponding instruction
//! sets. LLVM auto-vectorizes these loops where the ISA allows.

/// `y[k] += a * x[k]` blocked `N` lanes at a time, with a scalar tail.
#[inline(always)]
pub fn axpy<const N: usize>(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(N);
    let mut yc = y.chunks_exact_mut(N);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        let mut lane = [0.0f64; N];
        for k in 0..N {
            lane[k] = a * xs[k];
        }
        for k in 0..N {
            ys[k] += lane[k];
        }
    }
    for (xs, ys) in xc.remainder().iter().zip(yc.into_remainder()) {
        *ys += a * xs;
    }
}

/// `y[k] += x[k]` blocked `N` lanes at a time (used for partial-sum
/// reductions).
#[inline(always)]
pub fn add_assign<const N: usize>(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(N);
    let mut yc = y.chunks_exact_mut(N);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for k in 0..N {
            ys[k] += xs[k];
        }
    }
    for (xs, ys) in xc.remainder().iter().zip(yc.into_remainder()) {
        *ys += xs;
    }
}

/// Clamped linear-basis evaluation for a block of xps entries:
/// `xpv[k] = max(0, 1 − |x[j_k]·l_k − i_k|)`. The gather of `x[j]` is
/// scalar (as on real hardware); the arithmetic vectorizes.
#[inline(always)]
pub fn fill_xpv_block(xs: &[f64], ls: &[f64], is: &[f64], xpv: &mut [f64]) {
    for k in 0..xpv.len() {
        let xp = 1.0 - (xs[k] * ls[k] - is[k]).abs();
        xpv[k] = xp.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar() {
        for len in [0usize, 1, 3, 4, 7, 8, 117, 118, 128] {
            let x: Vec<f64> = (0..len).map(|v| v as f64 * 0.5 - 3.0).collect();
            let mut y4: Vec<f64> = (0..len).map(|v| v as f64).collect();
            let mut y8 = y4.clone();
            let mut yref = y4.clone();
            axpy::<4>(1.75, &x, &mut y4);
            axpy::<8>(1.75, &x, &mut y8);
            for (r, xv) in yref.iter_mut().zip(&x) {
                *r += 1.75 * xv;
            }
            assert_eq!(y4, yref, "len={len}");
            assert_eq!(y8, yref, "len={len}");
        }
    }

    #[test]
    fn add_assign_matches_scalar() {
        let x: Vec<f64> = (0..118).map(|v| (v as f64).sin()).collect();
        let mut y = vec![1.0; 118];
        add_assign::<8>(&x, &mut y);
        for (k, v) in y.iter().enumerate() {
            assert!((v - (1.0 + x[k])).abs() < 1e-15);
        }
    }
}
