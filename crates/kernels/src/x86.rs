//! The `x86` kernel: the compressed data format "in a most trivial way" —
//! scalar code, no explicit vectorization (Fig. 5 left). This is the
//! kernel that isolates the benefit of the data structure itself
//! (≈4.4×/4.15× over `gold` in Fig. 6).

use crate::data::{CompressedState, Scratch};
use hddm_asg::linear_basis;

/// Evaluates the interpolant at unit-cube point `x`, accumulating into
/// `out` (cleared first). Complexity `|xps| + nno × nfreq` plus the surplus
/// accumulation.
pub fn interpolate(state: &CompressedState, x: &[f64], scratch: &mut Scratch, out: &mut [f64]) {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    assert_eq!(x.len(), cg.dim());
    assert_eq!(out.len(), ndofs);
    let xps = cg.xps();
    let xpv = scratch.prepare(xps.len());

    // Loop 1 of Fig. 5 (left): the meaningful 1-D basis evaluations.
    for (v, entry) in xpv.iter_mut().zip(xps) {
        let xp = linear_basis(x[entry.index as usize], entry.l, entry.i);
        *v = xp.max(0.0);
    }

    // Loop 2: chain walk + surplus accumulation.
    out.fill(0.0);
    let nfreq = cg.nfreq();
    let chains = cg.chains();
    let surplus = &state.surplus;
    let mut ichain = 0usize;
    for p in 0..cg.nno() {
        let mut temp = 1.0;
        let mut dead = false;
        for k in 0..nfreq {
            let idx = chains[ichain + k] as usize;
            if idx == 0 {
                break;
            }
            temp *= xpv[idx];
            if temp == 0.0 {
                dead = true;
                break;
            }
        }
        ichain += nfreq;
        if dead {
            continue;
        }
        let row = &surplus[p * ndofs..(p + 1) * ndofs];
        for (o, s) in out.iter_mut().zip(row) {
            *o += temp * s;
        }
    }
}

/// Ablation variant of [`interpolate`]: the chain walk runs to completion
/// even after `temp` hits zero (the `goto zero` early exit of Fig. 5 is
/// disabled), and dead points still touch their surplus rows with a
/// `temp = 0` multiply. Isolates how much of the kernel's speed comes from
/// skipping the (many) points whose support excludes `x`.
pub fn interpolate_no_skip(
    state: &CompressedState,
    x: &[f64],
    scratch: &mut Scratch,
    out: &mut [f64],
) {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    assert_eq!(x.len(), cg.dim());
    assert_eq!(out.len(), ndofs);
    let xps = cg.xps();
    let xpv = scratch.prepare(xps.len());
    for (v, entry) in xpv.iter_mut().zip(xps) {
        let xp = linear_basis(x[entry.index as usize], entry.l, entry.i);
        *v = xp.max(0.0);
    }
    out.fill(0.0);
    let nfreq = cg.nfreq();
    let chains = cg.chains();
    let surplus = &state.surplus;
    let mut ichain = 0usize;
    for p in 0..cg.nno() {
        let mut temp = 1.0;
        for k in 0..nfreq {
            let idx = chains[ichain + k] as usize;
            // The sentinel chain entry 0 maps to xpv[0] = 1, so absent
            // slots multiply by the neutral element — no branch at all.
            temp *= xpv[idx];
        }
        ichain += nfreq;
        let row = &surplus[p * ndofs..(p + 1) * ndofs];
        for (o, s) in out.iter_mut().zip(row) {
            *o += temp * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DenseState;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    #[test]
    fn matches_gold_kernel() {
        let grid = regular_grid(5, 3);
        let ndofs = 4;
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x.iter().map(|v| v.powi(k as i32 + 1)).sum();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for s in 0..50 {
            let x: Vec<f64> = (0..5)
                .map(|t| ((s * 7 + t * 13) as f64 * 0.0831 + 0.021) % 1.0)
                .collect();
            interpolate(&compressed, &x, &mut scratch, &mut got);
            crate::gold::interpolate(&dense, &x, &mut want);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() < 1e-12,
                    "s={s} dof={k}: {} vs {}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn no_skip_variant_matches_skipping_kernel() {
        let grid = regular_grid(6, 3);
        let ndofs = 3;
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = (k as f64 + 1.0) * x.iter().product::<f64>() + x[0];
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for s in 0..40 {
            let x: Vec<f64> = (0..6)
                .map(|t| ((s * 3 + t * 17) as f64 * 0.0577 + 0.009) % 1.0)
                .collect();
            interpolate(&compressed, &x, &mut scratch, &mut a);
            interpolate_no_skip(&compressed, &x, &mut scratch, &mut b);
            for k in 0..ndofs {
                assert!((a[k] - b[k]).abs() < 1e-12, "s={s} dof={k}");
            }
        }
    }
}
