//! Hash-table ASG interpolation — the *other* conventional storage scheme.
//!
//! Sec. IV-B of the paper opens: "the most widespread techniques for
//! storing ASGs are matrix-kind of structures (see, e.g., [23]) or **hash
//! tables** (see, e.g., [22])". The dense matrix baseline is the `gold`
//! kernel; this module supplies the hash-table baseline so the ablation
//! benches can place the compression scheme against *both* incumbents.
//!
//! Evaluation exploits that within one 1-D level the hat supports tile the
//! interval: at a point `x` and level multi-index `ľ` at most one tensor
//! basis is non-zero, and its index vector `í(x, ľ)` is computable in
//! `O(d_active)`. The interpolant is therefore a loop over the *occupied
//! level sets* of the grid with one hash probe each:
//!
//! ```text
//! u(x) = Σ_{ľ occupied} φ_{ľ,í(x,ľ)}(x) · α_{ľ,í(x,ľ)}   (if present)
//! ```
//!
//! Compared with the compressed chains format this does asymptotically
//! *less* arithmetic (`#levels ≪ nno` probes), but every probe is a
//! pointer-chasing hash lookup with poor locality — exactly the trade-off
//! the paper's compression resolves in favour of streaming.

use std::collections::HashMap;

use hddm_asg::{support_index, NodeKey, SparseGrid};

/// One occupied level multi-index, stored sparsely: the dimensions whose
/// level exceeds 1, ascending.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct LevelKey(Box<[(u16, u8)]>);

impl LevelKey {
    fn of(node: &NodeKey) -> Self {
        LevelKey(node.active().map(|c| (c.dim, c.level)).collect())
    }
}

/// Interpolant in hash-table storage: surplus rows keyed by `(ľ, í)`, plus
/// the list of occupied level sets the evaluator walks.
#[derive(Clone, Debug)]
pub struct HashState {
    dim: usize,
    /// Degrees of freedom per point.
    pub ndofs: usize,
    /// Row-major `nno × ndofs` surpluses in grid order.
    pub surplus: Vec<f64>,
    table: HashMap<NodeKey, u32>,
    levels: Vec<LevelKey>,
}

impl HashState {
    /// Indexes a grid and its (grid-ordered) surpluses into a hash table.
    pub fn new(grid: &SparseGrid, surplus_grid_order: &[f64], ndofs: usize) -> Self {
        assert_eq!(surplus_grid_order.len(), grid.len() * ndofs);
        let mut table = HashMap::with_capacity(grid.len());
        let mut levels = Vec::new();
        let mut seen: HashMap<LevelKey, ()> = HashMap::new();
        for (row, node) in grid.nodes().iter().enumerate() {
            table.insert(node.clone(), row as u32);
            let lk = LevelKey::of(node);
            if seen.insert(lk.clone(), ()).is_none() {
                levels.push(lk);
            }
        }
        HashState {
            dim: grid.dim(),
            ndofs,
            surplus: surplus_grid_order.to_vec(),
            table,
            levels,
        }
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of occupied level sets (the probe count per evaluation).
    #[inline]
    pub fn num_level_sets(&self) -> usize {
        self.levels.len()
    }

    /// Number of stored points.
    #[inline]
    pub fn nno(&self) -> usize {
        self.table.len()
    }
}

/// Evaluates the hash-stored interpolant at unit-cube `x`, accumulating
/// into `out` (cleared first). One hash probe per occupied level set.
pub fn interpolate(state: &HashState, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), state.dim);
    assert_eq!(out.len(), state.ndofs);
    out.fill(0.0);
    let ndofs = state.ndofs;
    let mut coords: Vec<(u16, u8, u32)> = Vec::with_capacity(8);
    'levels: for lk in &state.levels {
        let mut temp = 1.0;
        coords.clear();
        for &(dim, level) in lk.0.iter() {
            match support_index(level, x[dim as usize]) {
                Some((i, v)) => {
                    temp *= v;
                    coords.push((dim, level, i));
                }
                None => continue 'levels,
            }
        }
        let key = NodeKey::from_coords(
            coords
                .iter()
                .map(|&(dim, level, index)| hddm_asg::ActiveCoord { dim, level, index }),
        );
        if let Some(&row) = state.table.get(&key) {
            let r = row as usize * ndofs;
            for (o, s) in out.iter_mut().zip(&state.surplus[r..r + ndofs]) {
                *o += temp * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DenseState;
    use hddm_asg::{hierarchize, regular_grid, tabulate, ActiveCoord};

    fn wavy(x: &[f64], out: &mut [f64]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = x
                .iter()
                .enumerate()
                .map(|(t, &v)| ((t + k + 1) as f64 * v).cos() + v * v)
                .sum();
        }
    }

    fn check_against_gold(grid: &SparseGrid, ndofs: usize) {
        let mut surplus = tabulate(grid, ndofs, wavy);
        hierarchize(grid, &mut surplus, ndofs);
        let dense = DenseState::new(grid, surplus.clone(), ndofs);
        let hashed = HashState::new(grid, &surplus, ndofs);
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for s in 0..60 {
            let x: Vec<f64> = (0..grid.dim())
                .map(|t| ((s * 11 + t * 7) as f64 * 0.0719 + 0.013) % 1.0)
                .collect();
            interpolate(&hashed, &x, &mut got);
            crate::gold::interpolate(&dense, &x, &mut want);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() < 1e-12,
                    "s={s} dof={k}: {} vs {}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn matches_gold_on_regular_grids() {
        for dim in [1usize, 2, 4, 6] {
            for n in 2..=4u8 {
                check_against_gold(&regular_grid(dim, n), 3);
            }
        }
    }

    #[test]
    fn matches_gold_on_adaptive_grid() {
        let mut grid = SparseGrid::new(4);
        grid.insert_closed(NodeKey::from_coords([
            ActiveCoord {
                dim: 0,
                level: 5,
                index: 7,
            },
            ActiveCoord {
                dim: 3,
                level: 3,
                index: 1,
            },
        ]));
        grid.insert_closed(NodeKey::from_coords([
            ActiveCoord {
                dim: 1,
                level: 4,
                index: 5,
            },
            ActiveCoord {
                dim: 2,
                level: 2,
                index: 2,
            },
        ]));
        check_against_gold(&grid, 2);
    }

    #[test]
    fn exact_at_grid_points() {
        let grid = regular_grid(3, 4);
        let ndofs = 2;
        let values = tabulate(&grid, ndofs, wavy);
        let mut surplus = values.clone();
        hierarchize(&grid, &mut surplus, ndofs);
        let hashed = HashState::new(&grid, &surplus, ndofs);
        let mut out = vec![0.0; ndofs];
        let mut x = vec![0.0; 3];
        for i in 0..grid.len() {
            grid.unit_point_of(i, &mut x);
            interpolate(&hashed, &x, &mut out);
            for k in 0..ndofs {
                assert!((out[k] - values[i * ndofs + k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn level_set_count_is_small_for_high_dim() {
        // d = 59, level 3: level sets are {root} ∪ {one dim at 2} ∪ {one dim
        // at 3} ∪ {two dims at 2} = 1 + 59 + 59 + C(59,2) = 1830.
        let grid = regular_grid(59, 3);
        let hashed = HashState::new(&grid, &vec![0.0; grid.len()], 1);
        assert_eq!(hashed.num_level_sets(), 1 + 59 + 59 + 59 * 58 / 2);
        assert_eq!(hashed.nno(), 7081);
    }
}
