//! # hddm-kernels — optimized sparse grid interpolation kernels
//!
//! The kernel family of Sec. V-A of Kübler et al. (IPDPS 2018):
//!
//! | kernel   | data format  | vectorization                             |
//! |----------|--------------|-------------------------------------------|
//! | `gold`   | dense `nno×d`| none (baseline of [18])                   |
//! | `x86`    | compressed   | none — isolates the data-structure gain   |
//! | `avx`    | compressed   | 4-wide mul+add                            |
//! | `avx2`   | compressed   | 4-wide FMA                                |
//! | `avx512` | compressed   | 8-wide FMA + intra-kernel threading       |
//!
//! The `cuda` variant lives in `hddm-gpu` (it needs the device model).
//! Kernels are selected at runtime through [`KernelKind`]; on hosts without
//! the requested instruction set the vector kernels degrade to portable
//! fixed-lane code with identical results (see DESIGN.md).

#![warn(missing_docs)]

pub mod batch;
pub mod data;
pub mod gold;
pub mod hashtab;
pub mod lanes;
pub mod multi;
pub mod vector;
pub mod x86;

pub use batch::{batch_crossover, PointBlock, BATCH_CHUNK, BATCH_CROSSOVER, LARGE_GRID_NNO};
pub use data::{CompressedState, DenseState, Scratch};
pub use hashtab::HashState;
pub use multi::MultiState;
pub use vector::{axpy_best, VectorIsa};

/// Runtime-selectable interpolation kernel, named as in Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense-format scalar baseline.
    Gold,
    /// Compressed-format scalar.
    X86,
    /// Compressed + AVX.
    Avx,
    /// Compressed + AVX2/FMA.
    Avx2,
    /// Compressed + AVX-512 (single-threaded core; use
    /// [`vector::interpolate_avx512_mt`] for the threaded variant).
    Avx512,
}

impl KernelKind {
    /// All compressed-format kernels (everything but `gold`).
    pub const COMPRESSED: [KernelKind; 4] = [
        KernelKind::X86,
        KernelKind::Avx,
        KernelKind::Avx2,
        KernelKind::Avx512,
    ];

    /// The kernel's name as printed in Table II / Fig. 6.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Gold => "gold",
            KernelKind::X86 => "x86",
            KernelKind::Avx => "avx",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    /// Whether this kernel runs with its native instruction set on this
    /// host (scalar kernels always do).
    pub fn native(self) -> bool {
        match self {
            KernelKind::Gold | KernelKind::X86 => true,
            KernelKind::Avx => VectorIsa::Avx.native(),
            KernelKind::Avx2 => VectorIsa::Avx2.native(),
            KernelKind::Avx512 => VectorIsa::Avx512.native(),
        }
    }

    /// Evaluates a compressed-format interpolant. Panics for
    /// [`KernelKind::Gold`], which needs the dense format.
    pub fn evaluate_compressed(
        self,
        state: &CompressedState,
        x: &[f64],
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        match self {
            KernelKind::Gold => panic!("gold kernel requires DenseState"),
            KernelKind::X86 => x86::interpolate(state, x, scratch, out),
            KernelKind::Avx => vector::interpolate_avx(state, x, scratch, out),
            KernelKind::Avx2 => vector::interpolate_avx2(state, x, scratch, out),
            KernelKind::Avx512 => vector::interpolate_avx512(state, x, scratch, out),
        }
    }

    /// Evaluates a compressed-format interpolant at a whole
    /// [`PointBlock`] (`out` is point-major `npts × ndofs`). Each variant
    /// is bitwise equal to looping its single-point counterpart over the
    /// block, but walks the compressed structure — and streams the
    /// surplus matrix — once per block instead of once per point. Panics
    /// for [`KernelKind::Gold`], which needs the dense format.
    pub fn evaluate_compressed_batch(
        self,
        state: &CompressedState,
        block: &PointBlock,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        // Crossover routing: narrow blocks pay the batch machinery's
        // per-block setup without amortizing it across points, so they
        // run point-by-point through the single-point kernel — bitwise
        // identical, just without the setup overhead. The crossover is
        // grid-size-aware: large grids need wider blocks to break even
        // (see [`batch::batch_crossover`]).
        if !block.is_empty() && block.len() < batch::batch_crossover(state.grid.nno()) {
            let mut row = vec![0.0; block.dim()];
            let ndofs = state.ndofs;
            for p in 0..block.len() {
                block.point(p, &mut row);
                self.evaluate_compressed(state, &row, scratch, &mut out[p * ndofs..][..ndofs]);
            }
            return;
        }
        match self {
            KernelKind::Gold => panic!("gold kernel requires DenseState"),
            KernelKind::X86 => batch::interpolate_batch(state, block, scratch, out),
            KernelKind::Avx => batch::interpolate_batch_avx(state, block, scratch, out),
            KernelKind::Avx2 => batch::interpolate_batch_avx2(state, block, scratch, out),
            KernelKind::Avx512 => batch::interpolate_batch_avx512(state, block, scratch, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    #[test]
    fn kernel_names_match_table2() {
        assert_eq!(KernelKind::Gold.name(), "gold");
        assert_eq!(KernelKind::Avx512.name(), "avx512");
        assert_eq!(KernelKind::COMPRESSED.len(), 4);
    }

    #[test]
    fn dispatch_is_consistent_across_kernels() {
        let grid = regular_grid(4, 3);
        let ndofs = 5;
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = (k as f64 + 1.0) * x.iter().sum::<f64>();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        let x = [0.21, 0.77, 0.48, 0.95];
        let mut want = vec![0.0; ndofs];
        gold::interpolate(&dense, &x, &mut want);
        for kind in KernelKind::COMPRESSED {
            let mut got = vec![0.0; ndofs];
            kind.evaluate_compressed(&compressed, &x, &mut scratch, &mut got);
            for k in 0..ndofs {
                assert!((got[k] - want[k]).abs() < 1e-12, "{kind:?} dof {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gold kernel requires DenseState")]
    fn gold_dispatch_through_compressed_panics() {
        let grid = regular_grid(2, 2);
        let compressed = CompressedState::new(&grid, &vec![0.0; grid.len()], 1);
        let mut scratch = Scratch::default();
        let mut out = [0.0];
        KernelKind::Gold.evaluate_compressed(&compressed, &[0.5, 0.5], &mut scratch, &mut out);
    }
}
