//! Multi-state batched evaluation.
//!
//! When solving the equilibrium system at a point, the time iteration has
//! to "interpolate on the policy functions of all the Ns = 16 states from
//! the previous iteration step at once" (Sec. IV) — the same coordinate
//! `x'` is evaluated on every discrete state's ASG. This type owns one
//! [`CompressedState`] per discrete shock and evaluates them in one call,
//! reusing scratch.

use crate::batch::PointBlock;
use crate::data::{CompressedState, Scratch};
use crate::KernelKind;

/// A bundle of per-shock interpolants `pnext = (p(z=1), …, p(z=Ns))`.
#[derive(Clone, Debug)]
pub struct MultiState {
    states: Vec<CompressedState>,
    ndofs: usize,
}

impl MultiState {
    /// Builds from one compressed state per discrete shock; all must share
    /// `ndofs`.
    pub fn new(states: Vec<CompressedState>) -> Self {
        assert!(!states.is_empty(), "need at least one discrete state");
        let ndofs = states[0].ndofs;
        assert!(
            states.iter().all(|s| s.ndofs == ndofs),
            "all states must share ndofs"
        );
        MultiState { states, ndofs }
    }

    /// Number of discrete states `Ns`.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Degrees of freedom per point.
    #[inline]
    pub fn ndofs(&self) -> usize {
        self.ndofs
    }

    /// Access to an individual state's interpolant.
    #[inline]
    pub fn state(&self, z: usize) -> &CompressedState {
        &self.states[z]
    }

    /// Total grid points across states (`Σ_z M_z`).
    pub fn total_points(&self) -> usize {
        self.states.iter().map(|s| s.grid.nno()).sum()
    }

    /// Points per state (`M_z`, the load-balancing proxy of Sec. IV-A).
    pub fn points_per_state(&self) -> Vec<usize> {
        self.states.iter().map(|s| s.grid.nno()).collect()
    }

    /// Evaluates every state's interpolant at the same unit-cube `x`,
    /// writing state `z`'s result into `out[z·ndofs .. (z+1)·ndofs]`.
    pub fn evaluate_all(
        &self,
        kernel: KernelKind,
        x: &[f64],
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), self.ndofs * self.states.len());
        for (z, state) in self.states.iter().enumerate() {
            let slot = &mut out[z * self.ndofs..(z + 1) * self.ndofs];
            kernel.evaluate_compressed(state, x, scratch, slot);
        }
    }

    /// Evaluates a single state at `x`.
    pub fn evaluate_one(
        &self,
        kernel: KernelKind,
        z: usize,
        x: &[f64],
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        kernel.evaluate_compressed(&self.states[z], x, scratch, out);
    }

    /// Evaluates a single state's interpolant at a whole [`PointBlock`]
    /// (`out` is point-major `npts × ndofs`) — the batched counterpart of
    /// [`Self::evaluate_one`], bitwise equal to looping it per point.
    pub fn evaluate_one_batch(
        &self,
        kernel: KernelKind,
        z: usize,
        block: &PointBlock,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        kernel.evaluate_compressed_batch(&self.states[z], block, scratch, out);
    }

    /// Evaluates every state's interpolant at the same [`PointBlock`]:
    /// state `z`'s rows land at
    /// `out[z·npts·ndofs .. (z+1)·npts·ndofs]` (point-major within each
    /// state). One chain walk per state per block instead of one per
    /// state per point.
    pub fn evaluate_all_batch(
        &self,
        kernel: KernelKind,
        block: &PointBlock,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        let span = block.len() * self.ndofs;
        assert_eq!(out.len(), span * self.states.len());
        if span == 0 {
            return;
        }
        for (z, slot) in out.chunks_exact_mut(span).enumerate() {
            kernel.evaluate_compressed_batch(&self.states[z], block, scratch, slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn state_for(shift: f64) -> CompressedState {
        let grid = regular_grid(3, 3);
        let mut surplus = tabulate(&grid, 2, |x, out| {
            out[0] = x[0] + shift;
            out[1] = x[1] * x[2] - shift;
        });
        hierarchize(&grid, &mut surplus, 2);
        CompressedState::new(&grid, &surplus, 2)
    }

    #[test]
    fn evaluates_all_states_at_once() {
        let ms = MultiState::new(vec![state_for(0.0), state_for(1.0), state_for(2.0)]);
        assert_eq!(ms.num_states(), 3);
        let mut scratch = Scratch::default();
        let mut out = vec![0.0; 3 * 2];
        let x = [0.5, 0.5, 0.5];
        ms.evaluate_all(KernelKind::X86, &x, &mut scratch, &mut out);
        for z in 0..3 {
            assert!((out[z * 2] - (0.5 + z as f64)).abs() < 1e-12);
            assert!((out[z * 2 + 1] - (0.25 - z as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_state_access_matches_batch() {
        let ms = MultiState::new(vec![state_for(0.5), state_for(-0.5)]);
        let mut scratch = Scratch::default();
        let x = [0.3, 0.7, 0.1];
        let mut batch = vec![0.0; 4];
        ms.evaluate_all(KernelKind::Avx2, &x, &mut scratch, &mut batch);
        let mut single = vec![0.0; 2];
        ms.evaluate_one(KernelKind::Avx2, 1, &x, &mut scratch, &mut single);
        assert_eq!(&batch[2..], single.as_slice());
    }

    #[test]
    fn points_per_state_reports_mz() {
        let ms = MultiState::new(vec![state_for(0.0), state_for(1.0)]);
        let per = ms.points_per_state();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0], per[1]);
        assert_eq!(ms.total_points(), per[0] * 2);
    }

    #[test]
    #[should_panic(expected = "share ndofs")]
    fn mismatched_ndofs_rejected() {
        let grid = regular_grid(2, 2);
        let s1 = CompressedState::new(&grid, &vec![0.0; grid.len()], 1);
        let s2 = CompressedState::new(&grid, &vec![0.0; grid.len() * 2], 2);
        let _ = MultiState::new(vec![s1, s2]);
    }
}
