//! Golden-value kernel equivalence: on randomized adaptive grids with
//! randomized surpluses and evaluation points (seeded `ChaCha8Rng`, so CI
//! is deterministic), every optimized path must agree with the dense
//! `gold` baseline to ≤ 1e-12 — the compressed scalar kernel, each
//! fixed-lane vectorized kernel, and the `CompressedGrid` interpolation
//! entry points in `hddm-compress`.
//!
//! The paper's claim (Sec. IV-B/V-A) is that compression and
//! vectorization are *exact* reformulations, not approximations; this
//! suite pins that with absolute tolerances an order of magnitude below
//! the proptest suites' 1e-10.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_asg::{basis, regular_grid, ActiveCoord, NodeKey, SparseGrid};
use hddm_compress::CompressedGrid;
use hddm_kernels::{gold, x86, CompressedState, DenseState, KernelKind, Scratch};

const TOL: f64 = 1e-12;

/// A random ancestor-closed adaptive grid in `dim` dimensions.
fn random_grid(dim: usize, nodes: usize, rng: &mut ChaCha8Rng) -> SparseGrid {
    let mut grid = SparseGrid::new(dim);
    grid.insert(NodeKey::root());
    for _ in 0..nodes {
        let actives = rng.gen_range(1..=3.min(dim));
        let mut coords: Vec<ActiveCoord> = Vec::new();
        for _ in 0..actives {
            let d = rng.gen_range(0..dim) as u16;
            if coords.iter().any(|c| c.dim == d) {
                continue;
            }
            let level = rng.gen_range(2..=5u32) as u8;
            let indices = basis::level_indices(level);
            let index = indices[rng.gen_range(0..indices.len())];
            coords.push(ActiveCoord {
                dim: d,
                level,
                index,
            });
        }
        grid.insert_closed(NodeKey::from_coords(coords));
    }
    grid
}

fn random_surplus(grid: &SparseGrid, ndofs: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..grid.len() * ndofs)
        .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
        .collect()
}

fn random_point(dim: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..dim).map(|_| rng.gen::<f64>()).collect()
}

/// gold vs compressed-scalar (`x86`) and every fixed-lane vector kernel,
/// over 20 random adaptive grids × 8 random points each.
#[test]
fn gold_vs_compressed_and_lane_kernels_on_random_grids() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x601D);
    for round in 0..20 {
        let dim = rng.gen_range(2..=5usize);
        let ndofs = rng.gen_range(1..=4usize);
        let grid = random_grid(dim, rng.gen_range(0..10), &mut rng);
        let surplus = random_surplus(&grid, ndofs, &mut rng);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; ndofs];
        let mut got = vec![0.0; ndofs];
        for _ in 0..8 {
            let x = random_point(dim, &mut rng);
            gold::interpolate(&dense, &x, &mut want);

            x86::interpolate(&compressed, &x, &mut scratch, &mut got);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() <= TOL,
                    "round {round}: x86 dof {k}: {} vs gold {}",
                    got[k],
                    want[k]
                );
            }

            for kind in KernelKind::COMPRESSED {
                kind.evaluate_compressed(&compressed, &x, &mut scratch, &mut got);
                for k in 0..ndofs {
                    assert!(
                        (got[k] - want[k]).abs() <= TOL,
                        "round {round}: {} dof {k}: {} vs gold {}",
                        kind.name(),
                        got[k],
                        want[k]
                    );
                }
            }
        }
    }
}

/// gold vs the `hddm-compress` interpolation entry points (chain-ordered
/// and grid-ordered), which the kernels build on.
#[test]
fn gold_vs_compress_pipeline_interpolation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC044_E55A);
    for round in 0..20 {
        let dim = rng.gen_range(2..=4usize);
        let ndofs = rng.gen_range(1..=3usize);
        let grid = random_grid(dim, rng.gen_range(0..8), &mut rng);
        let surplus = random_surplus(&grid, ndofs, &mut rng);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);

        let cg = CompressedGrid::build(&grid);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut want = vec![0.0; ndofs];
        let mut got = vec![0.0; ndofs];
        for _ in 0..8 {
            let x = random_point(dim, &mut rng);
            gold::interpolate(&dense, &x, &mut want);

            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut got);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() <= TOL,
                    "round {round}: chain-ordered dof {k}: {} vs gold {}",
                    got[k],
                    want[k]
                );
            }

            cg.interpolate_scalar_unordered(&surplus, ndofs, &x, &mut xpv, &mut got);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() <= TOL,
                    "round {round}: grid-ordered dof {k}: {} vs gold {}",
                    got[k],
                    want[k]
                );
            }
        }
    }
}

/// The fixed-lane axpy helpers agree with scalar arithmetic exactly
/// (they are reorderings of the same adds/muls over disjoint lanes).
#[test]
fn lane_axpy_matches_scalar() {
    use hddm_kernels::lanes;
    let mut rng = ChaCha8Rng::seed_from_u64(0x1A9E_5000);
    for len in [1usize, 3, 4, 7, 8, 15, 16, 33] {
        let a: f64 = rng.gen::<f64>() * 4.0 - 2.0;
        let x: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() - 0.5).collect();
        let base: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() - 0.5).collect();

        let mut want = base.clone();
        for (w, xi) in want.iter_mut().zip(&x) {
            *w += a * xi;
        }

        for lanes_n in [2usize, 4, 8] {
            let mut got = base.clone();
            match lanes_n {
                2 => lanes::axpy::<2>(a, &x, &mut got),
                4 => lanes::axpy::<4>(a, &x, &mut got),
                _ => lanes::axpy::<8>(a, &x, &mut got),
            }
            for k in 0..len {
                assert!(
                    (got[k] - want[k]).abs() <= TOL,
                    "len {len}, {lanes_n} lanes, slot {k}: {} vs {}",
                    got[k],
                    want[k]
                );
            }
        }
    }
}

/// Regular (non-adaptive) grids too: the level-3 grid in 4-D, all kernels,
/// interpolating a polynomial tabulated and hierarchized through the
/// public pipeline.
#[test]
fn regular_grid_kernels_agree_end_to_end() {
    let grid = regular_grid(4, 3);
    let ndofs = 2;
    let mut values = hddm_asg::tabulate(&grid, ndofs, |x, out| {
        out[0] = x[0] * x[1] + 0.5 * x[2] - x[3];
        out[1] = (x[0] - 0.5) * (x[3] - 0.25);
    });
    hddm_asg::hierarchize(&grid, &mut values, ndofs);
    let dense = DenseState::new(&grid, values.clone(), ndofs);
    let compressed = CompressedState::new(&grid, &values, ndofs);
    let mut scratch = Scratch::default();
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let mut want = vec![0.0; ndofs];
    let mut got = vec![0.0; ndofs];
    for _ in 0..32 {
        let x = random_point(4, &mut rng);
        gold::interpolate(&dense, &x, &mut want);
        for kind in KernelKind::COMPRESSED {
            kind.evaluate_compressed(&compressed, &x, &mut scratch, &mut got);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() <= TOL,
                    "{}: dof {k}: {} vs {}",
                    kind.name(),
                    got[k],
                    want[k]
                );
            }
        }
    }
}
