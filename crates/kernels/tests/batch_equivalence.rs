//! Golden-value equivalence of the batched interpolation engine: on
//! seeded random adaptive grids (deterministic `ChaCha8Rng`), every
//! `interpolate_batch` variant must
//!
//! * match the dense `gold` baseline to ≤ 1e-12, and
//! * match its own single-point counterpart **bitwise** (the batch
//!   restructuring reorders memory traffic, never arithmetic),
//!
//! across block sizes `npts ∈ {1, 7, 64}` (covering a degenerate block,
//! an uneven chunk tail, and a full chunk) and a ragged `ndofs` that
//! exercises the vector kernels' remainder paths.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_asg::{basis, ActiveCoord, NodeKey, SparseGrid};
use hddm_kernels::{
    batch, gold, x86, CompressedState, DenseState, KernelKind, PointBlock, Scratch,
};

const TOL: f64 = 1e-12;

fn random_grid(dim: usize, nodes: usize, rng: &mut ChaCha8Rng) -> SparseGrid {
    let mut grid = SparseGrid::new(dim);
    grid.insert(NodeKey::root());
    for _ in 0..nodes {
        let actives = rng.gen_range(1..=3.min(dim));
        let mut coords: Vec<ActiveCoord> = Vec::new();
        for _ in 0..actives {
            let d = rng.gen_range(0..dim) as u16;
            if coords.iter().any(|c| c.dim == d) {
                continue;
            }
            let level = rng.gen_range(2..=5u32) as u8;
            let indices = basis::level_indices(level);
            let index = indices[rng.gen_range(0..indices.len())];
            coords.push(ActiveCoord {
                dim: d,
                level,
                index,
            });
        }
        grid.insert_closed(NodeKey::from_coords(coords));
    }
    grid
}

fn random_surplus(grid: &SparseGrid, ndofs: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..grid.len() * ndofs)
        .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
        .collect()
}

fn random_block(dim: usize, npts: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..npts * dim).map(|_| rng.gen::<f64>()).collect()
}

type BatchFn = fn(&CompressedState, &PointBlock, &mut Scratch, &mut [f64]);
type SingleFn = fn(&CompressedState, &[f64], &mut Scratch, &mut [f64]);

/// Every batched variant next to the single-point kernel it must equal.
const VARIANTS: [(&str, BatchFn, SingleFn); 4] = [
    ("x86", batch::interpolate_batch, x86::interpolate),
    (
        "avx",
        batch::interpolate_batch_avx,
        hddm_kernels::vector::interpolate_avx,
    ),
    (
        "avx2",
        batch::interpolate_batch_avx2,
        hddm_kernels::vector::interpolate_avx2,
    ),
    (
        "avx512",
        batch::interpolate_batch_avx512,
        hddm_kernels::vector::interpolate_avx512,
    ),
];

#[test]
fn batched_kernels_match_gold_and_single_point() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBA7C4);
    // ndofs 11 leaves a ragged tail in both 4- and 8-wide accumulators.
    for (dim, nodes, ndofs) in [(2usize, 40usize, 1usize), (4, 120, 11), (6, 200, 5)] {
        let grid = random_grid(dim, nodes, &mut rng);
        let surplus = random_surplus(&grid, ndofs, &mut rng);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let state = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        for npts in [1usize, 7, 64] {
            let rows = random_block(dim, npts, &mut rng);
            let block = PointBlock::from_rows(dim, &rows);
            let mut want_gold = vec![0.0; ndofs];
            let mut want_single = vec![0.0; ndofs];
            for (name, batch_fn, single_fn) in VARIANTS {
                let mut got = vec![0.0; npts * ndofs];
                batch_fn(&state, &block, &mut scratch, &mut got);
                for p in 0..npts {
                    let x = &rows[p * dim..(p + 1) * dim];
                    gold::interpolate(&dense, x, &mut want_gold);
                    single_fn(&state, x, &mut scratch, &mut want_single);
                    let row = &got[p * ndofs..(p + 1) * ndofs];
                    for k in 0..ndofs {
                        assert!(
                            (row[k] - want_gold[k]).abs() < TOL,
                            "{name} npts={npts} point {p} dof {k} vs gold: {} vs {}",
                            row[k],
                            want_gold[k]
                        );
                        assert_eq!(
                            row[k].to_bits(),
                            want_single[k].to_bits(),
                            "{name} npts={npts} point {p} dof {k}: batch must be \
                             bitwise equal to the single-point kernel"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_kind_batch_dispatch_matches_variants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15A);
    let grid = random_grid(3, 80, &mut rng);
    let ndofs = 7;
    let surplus = random_surplus(&grid, ndofs, &mut rng);
    let state = CompressedState::new(&grid, &surplus, ndofs);
    let rows = random_block(3, 9, &mut rng);
    let block = PointBlock::from_rows(3, &rows);
    let mut scratch = Scratch::default();
    let mut want = vec![0.0; 9 * ndofs];
    let mut got = vec![0.0; 9 * ndofs];
    for kind in KernelKind::COMPRESSED {
        kind.evaluate_compressed_batch(&state, &block, &mut scratch, &mut got);
        let (_, batch_fn, _) = VARIANTS
            .iter()
            .find(|(name, _, _)| *name == kind.name())
            .unwrap();
        batch_fn(&state, &block, &mut scratch, &mut want);
        assert_eq!(got, want, "{kind:?}");
    }
}

/// Blocks below [`batch::BATCH_CROSSOVER`] dispatch through the
/// single-point kernel; blocks at or above it through the batch
/// variants. Either way the dispatch entry point must stay bitwise
/// equal to both underlying paths, so the crossover can never be
/// observed in results — only in throughput.
#[test]
fn dispatch_below_the_crossover_is_bitwise_equal_to_both_paths() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC705);
    let grid = random_grid(3, 90, &mut rng);
    let ndofs = 5;
    let surplus = random_surplus(&grid, ndofs, &mut rng);
    let state = CompressedState::new(&grid, &surplus, ndofs);
    let mut scratch = Scratch::default();
    for npts in [1usize, batch::BATCH_CROSSOVER, batch::BATCH_CROSSOVER + 1] {
        let rows = random_block(3, npts, &mut rng);
        let block = PointBlock::from_rows(3, &rows);
        for kind in KernelKind::COMPRESSED {
            let mut got = vec![0.0; npts * ndofs];
            kind.evaluate_compressed_batch(&state, &block, &mut scratch, &mut got);
            let (_, batch_fn, single_fn) = VARIANTS
                .iter()
                .find(|(name, _, _)| *name == kind.name())
                .unwrap();
            let mut want_batch = vec![0.0; npts * ndofs];
            batch_fn(&state, &block, &mut scratch, &mut want_batch);
            let mut want_single = vec![0.0; ndofs];
            for p in 0..npts {
                single_fn(
                    &state,
                    &rows[p * 3..(p + 1) * 3],
                    &mut scratch,
                    &mut want_single,
                );
                for k in 0..ndofs {
                    assert_eq!(
                        got[p * ndofs + k].to_bits(),
                        want_single[k].to_bits(),
                        "{kind:?} npts={npts} point {p} dof {k} vs single"
                    );
                    assert_eq!(
                        got[p * ndofs + k].to_bits(),
                        want_batch[p * ndofs + k].to_bits(),
                        "{kind:?} npts={npts} point {p} dof {k} vs raw batch"
                    );
                }
            }
        }
    }
}

#[test]
fn threaded_batch_matches_across_uneven_splits() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x517E);
    let grid = random_grid(4, 150, &mut rng);
    let ndofs = 11;
    let surplus = random_surplus(&grid, ndofs, &mut rng);
    let state = CompressedState::new(&grid, &surplus, ndofs);
    // 3 chunks + a tail: thread splits land on chunk boundaries.
    let npts = hddm_kernels::BATCH_CHUNK * 3 + 17;
    let rows = random_block(4, npts, &mut rng);
    let block = PointBlock::from_rows(4, &rows);
    let mut scratch = Scratch::default();
    let mut want = vec![0.0; npts * ndofs];
    batch::interpolate_batch_avx512(&state, &block, &mut scratch, &mut want);
    for threads in [1usize, 2, 4, 7, 64] {
        let mut got = vec![0.0; npts * ndofs];
        batch::interpolate_batch_avx512_mt(&state, &block, threads, &mut got);
        assert_eq!(got, want, "threads={threads}");
    }
}
