//! Property tests of incremental `CompressedState` extension: however a
//! grid's nodes are split into frontier batches, extending a state batch
//! by batch must be **bitwise identical** — structure and evaluation — to
//! rebuilding it from scratch over the full node set in one shot, and
//! must agree with the full compression pipeline to the golden 1e-12.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_asg::{basis, ActiveCoord, NodeKey, SparseGrid};
use hddm_kernels::{CompressedState, KernelKind, PointBlock, Scratch};

/// A seeded random ancestor-closed adaptive grid.
fn random_grid(dim: usize, nodes: usize, seed: u64) -> SparseGrid {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut grid = SparseGrid::new(dim);
    grid.insert(NodeKey::root());
    for _ in 0..nodes {
        let actives = rng.gen_range(1..=2.min(dim));
        let mut coords: Vec<ActiveCoord> = Vec::new();
        for _ in 0..actives {
            let d = rng.gen_range(0..dim) as u16;
            if coords.iter().any(|c| c.dim == d) {
                continue;
            }
            let level = rng.gen_range(2..=4u32) as u8;
            let indices = basis::level_indices(level);
            let index = indices[rng.gen_range(0..indices.len())];
            coords.push(ActiveCoord {
                dim: d,
                level,
                index,
            });
        }
        grid.insert_closed(NodeKey::from_coords(coords));
    }
    grid
}

fn random_rows(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
}

proptest! {
    // Cases and RNG seed pinned: CI explores the identical population
    // every run, so a failure reproduces locally verbatim.
    #![proptest_config(ProptestConfig::with_cases(48).with_rng_seed(0xE71E_4D01))]

    /// Batched extension equals rebuild-from-scratch, bitwise.
    #[test]
    fn extend_from_frontier_equals_rebuild_bitwise(
        grid_seed in 0u64..1000,
        row_seed in 0u64..1000,
        dim in 2usize..5,
        splits in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let grid = random_grid(dim, 60, grid_seed);
        let ndofs = 1 + (row_seed % 4) as usize;
        let rows = random_rows(grid.len() * ndofs, row_seed);
        let all: Vec<u32> = (0..grid.len() as u32).collect();

        // Rebuild from scratch: every node in one shot.
        let mut oneshot = CompressedState::empty(dim, ndofs);
        oneshot.append_rows(&grid, &all, &rows);

        // Extension: the same nodes split into arbitrary frontier
        // batches (sizes drawn from `splits`, cycled).
        let mut extended = CompressedState::empty(dim, ndofs);
        let mut at = 0usize;
        let mut s = 0usize;
        while at < all.len() {
            let end = (at + splits[s % splits.len()]).min(all.len());
            extended.extend_from_frontier(
                &grid,
                &all[at..end],
                &rows[at * ndofs..end * ndofs],
            );
            at = end;
            s += 1;
        }

        // Structure: identical arrays.
        prop_assert_eq!(oneshot.grid.nfreq(), extended.grid.nfreq());
        prop_assert_eq!(oneshot.grid.xps(), extended.grid.xps());
        prop_assert_eq!(oneshot.grid.chains(), extended.grid.chains());
        prop_assert_eq!(oneshot.grid.order(), extended.grid.order());
        prop_assert_eq!(
            oneshot.surplus.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            extended.surplus.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Evaluation: bitwise identical at random probes (single-point
        // and batched paths both).
        let probes = random_rows(dim * 16, grid_seed ^ row_seed).iter().map(|v| (v + 1.0) / 2.0).collect::<Vec<_>>();
        let block = PointBlock::from_rows(dim, &probes);
        let mut scratch = Scratch::default();
        let mut a = vec![0.0; block.len() * ndofs];
        let mut b = vec![0.0; block.len() * ndofs];
        KernelKind::X86.evaluate_compressed_batch(&oneshot, &block, &mut scratch, &mut a);
        KernelKind::X86.evaluate_compressed_batch(&extended, &block, &mut scratch, &mut b);
        prop_assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The incremental representation agrees with the full compression
    /// pipeline to the golden tolerance (the two walk the points in
    /// different orders, so bitwise equality is not expected here).
    #[test]
    fn extended_state_matches_pipeline_compression(
        grid_seed in 0u64..1000,
        row_seed in 0u64..1000,
    ) {
        let dim = 3usize;
        let ndofs = 2usize;
        let grid = random_grid(dim, 50, grid_seed);
        let rows = random_rows(grid.len() * ndofs, row_seed);
        let all: Vec<u32> = (0..grid.len() as u32).collect();

        let mut extended = CompressedState::empty(dim, ndofs);
        extended.append_rows(&grid, &all, &rows);
        // `rows` are grid-ordered surpluses; the pipeline state reorders
        // the same surpluses into its own chain order.
        let pipeline = CompressedState::from_parts(
            hddm_compress::CompressedGrid::build(&grid),
            hddm_compress::CompressedGrid::build(&grid).reorder_rows(&rows, ndofs),
            ndofs,
        );

        let probes = random_rows(dim * 12, grid_seed.wrapping_mul(31) ^ row_seed)
            .iter()
            .map(|v| (v + 1.0) / 2.0)
            .collect::<Vec<_>>();
        let mut scratch = Scratch::default();
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for x in probes.chunks_exact(dim) {
            KernelKind::X86.evaluate_compressed(&extended, x, &mut scratch, &mut a);
            KernelKind::X86.evaluate_compressed(&pipeline, x, &mut scratch, &mut b);
            for k in 0..ndofs {
                prop_assert!((a[k] - b[k]).abs() < 1e-12, "dof {} at {:?}", k, x);
            }
        }
    }
}
