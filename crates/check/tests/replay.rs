//! Property test for deterministic replay (satellite of ISSUE 9):
//! across 64 random-exploration seeds, any failing schedule trace
//! re-run through the replay entry point reproduces the identical
//! failure kind, message, and event sequence — twice, to prove replay
//! itself is stable.

use std::sync::Arc;

use hddm_check::{
    explore_random, replay, spawn, CheckedAtomicU64, CheckedCondvar, CheckedMutex, Config,
    FailureKind,
};

fn cfg(name: &str) -> Config {
    let mut c = Config::new(name);
    c.preemption_bound = None; // random mode is bound-free
    c.max_schedules = 2_000;
    c.trace_dir = None;
    c
}

/// Racy read-modify-write; fails whenever the increments interleave.
fn racy_model() {
    let n = Arc::new(CheckedAtomicU64::named("n", 0));
    let n2 = Arc::clone(&n);
    let t = spawn("incr", move || {
        let v = n2.load();
        n2.store(v + 1);
    });
    let v = n.load();
    n.store(v + 1);
    t.join();
    assert_eq!(n.load(), 2, "lost update");
}

/// Missed notify; fails whenever the waiter blocks before the setter
/// flips the flag.
fn missed_notify_model() {
    let m = Arc::new(CheckedMutex::named("m", false));
    let cv = Arc::new(CheckedCondvar::named("cv"));
    let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
    let waiter = spawn("waiter", move || {
        let mut g = m2.lock();
        while !*g {
            g = cv2.wait(g);
        }
    });
    *m.lock() = true; // bug: no notify
    waiter.join();
}

fn assert_replays_identically(name: &str, seed: u64, kind: FailureKind, model: fn()) {
    let report = explore_random(&cfg(name), seed, model);
    let failure = report.expect_failure(kind).clone();
    assert!(
        !failure.trace.is_empty(),
        "seed {seed}: failing trace must be non-empty"
    );
    for round in 0..2 {
        let re = replay(&cfg(name), &failure.trace, model);
        let rf = re.expect_failure(kind);
        assert_eq!(rf.kind, failure.kind, "seed {seed} round {round}");
        assert_eq!(rf.message, failure.message, "seed {seed} round {round}");
        assert_eq!(rf.events, failure.events, "seed {seed} round {round}");
        assert_eq!(rf.trace, failure.trace, "seed {seed} round {round}");
    }
}

#[test]
fn replay_reproduces_random_failures_across_64_seeds() {
    for seed in 0..64u64 {
        // Alternate detector families so both failure shapes (model
        // panic, scheduler-detected lost wakeup) are covered.
        if seed % 2 == 0 {
            assert_replays_identically("replay-prop-race", seed, FailureKind::Panic, racy_model);
        } else {
            assert_replays_identically(
                "replay-prop-wakeup",
                seed,
                FailureKind::LostWakeup,
                missed_notify_model,
            );
        }
    }
}
