//! Self-tests for the explorer: each built-in detector catches its
//! canonical bug with a replayable trace, clean protocols explore to
//! completion, and the preemption bound behaves as documented.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hddm_check::{
    choose, explore, io_step, register_invariant, replay, spawn, step, CheckedAtomicU64,
    CheckedCondvar, CheckedMutex, CheckedRwLock, Config, FailureKind, Trace,
};

fn cfg(name: &str) -> Config {
    let mut c = Config::new(name);
    // Self-tests must be hermetic: ignore the CI env knobs.
    c.preemption_bound = Some(2);
    c.max_schedules = 100_000;
    c.trace_dir = None;
    c
}

/// Classic lost update: read-modify-write through a racy load/store
/// pair. The explorer must find the interleaving where both threads
/// read 0 and the final count is 1.
fn racy_counter_model() {
    let n = Arc::new(CheckedAtomicU64::named("n", 0));
    let n2 = Arc::clone(&n);
    let t = spawn("incr", move || {
        let v = n2.load();
        n2.store(v + 1);
    });
    let v = n.load();
    n.store(v + 1);
    t.join();
    assert_eq!(n.load(), 2, "lost update: both increments read 0");
}

#[test]
fn finds_lost_update_race() {
    let report = explore(&cfg("racy-counter"), racy_counter_model);
    let failure = report.expect_failure(FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    assert!(!failure.trace.is_empty());
}

#[test]
fn bound_zero_misses_the_race_bound_two_finds_it() {
    // With no preemptions allowed, threads run to completion in spawn
    // order and the race is invisible — and exploration still covers
    // that restricted space completely.
    let report = explore(
        &cfg("racy-counter-b0").with_bound(Some(0)),
        racy_counter_model,
    );
    assert!(
        report.failure.is_none(),
        "bound 0 cannot interleave mid-increment"
    );
    assert!(report.complete);
    let report = explore(&cfg("racy-counter-b2"), racy_counter_model);
    report.expect_failure(FailureKind::Panic);
}

#[test]
fn mutex_makes_the_counter_safe() {
    let report = explore(&cfg("locked-counter"), || {
        let n = Arc::new(CheckedMutex::named("n", 0u64));
        let n2 = Arc::clone(&n);
        let t = spawn("incr", move || *n2.lock() += 1);
        *n.lock() += 1;
        t.join();
        assert_eq!(*n.lock(), 2);
    });
    let schedules = report.assert_clean();
    assert!(
        schedules > 1,
        "exploration should branch at lock acquisition"
    );
}

#[test]
fn detects_abba_deadlock() {
    let report = explore(&cfg("abba"), || {
        let a = Arc::new(CheckedMutex::named("a", ()));
        let b = Arc::new(CheckedMutex::named("b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = spawn("ba", move || {
            let _gb = b2.lock();
            step("between");
            let _ga = a2.lock();
        });
        let _ga = a.lock();
        step("between");
        let _gb = b.lock();
        drop(_gb);
        drop(_ga);
        t.join();
    });
    let failure = report.expect_failure(FailureKind::Deadlock);
    assert!(
        failure.message.contains("wait-for cycle"),
        "{}",
        failure.message
    );
}

#[test]
fn detects_rwlock_self_deadlock() {
    let report = explore(&cfg("rw-upgrade"), || {
        let l = Arc::new(CheckedRwLock::named("l", 0u64));
        let _r = l.read();
        let _w = l.write(); // upgrade attempt: blocks on our own read guard
    });
    report.expect_failure(FailureKind::Deadlock);
}

#[test]
fn detects_lost_wakeup() {
    // The setter flips the flag but never notifies: any schedule where
    // the waiter blocks first strands it forever.
    let report = explore(&cfg("missed-notify"), || {
        let m = Arc::new(CheckedMutex::named("m", false));
        let cv = Arc::new(CheckedCondvar::named("cv"));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = spawn("waiter", move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
        });
        *m.lock() = true; // bug: no cv.notify_all()
        waiter.join();
    });
    let failure = report.expect_failure(FailureKind::LostWakeup);
    assert!(failure.message.contains("notify"), "{}", failure.message);
}

#[test]
fn notify_fixes_the_lost_wakeup() {
    let report = explore(&cfg("notified"), || {
        let m = Arc::new(CheckedMutex::named("m", false));
        let cv = Arc::new(CheckedCondvar::named("cv"));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = spawn("waiter", move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
        });
        *m.lock() = true;
        cv.notify_all();
        waiter.join();
    });
    report.assert_clean();
}

#[test]
fn timed_wait_escapes_instead_of_lost_wakeup() {
    // Same missed notify, but the waiter has a timeout: the lazy
    // timeout must fire and the model must complete cleanly.
    let report = explore(&cfg("timed-escape"), || {
        let m = Arc::new(CheckedMutex::named("m", false));
        let cv = Arc::new(CheckedCondvar::named("cv"));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = spawn("waiter", move || {
            let mut g = m2.lock();
            let mut timed_out = false;
            while !*g && !timed_out {
                let (gg, to) = cv2.wait_timeout(g);
                g = gg;
                timed_out = to;
            }
        });
        *m.lock() = true; // still no notify
        waiter.join();
    });
    report.assert_clean();
}

#[test]
fn invariant_checked_at_every_step() {
    let report = explore(&cfg("gauge-cap"), || {
        let gauge = Arc::new(CheckedAtomicU64::named("gauge", 0));
        register_invariant("gauge <= 1", {
            let g = Arc::clone(&gauge);
            move || {
                let v = g.peek();
                if v <= 1 {
                    Ok(())
                } else {
                    Err(format!("gauge = {v}"))
                }
            }
        });
        let g2 = Arc::clone(&gauge);
        let t = spawn("inc", move || {
            g2.fetch_add(1);
            step("work");
            g2.fetch_sub(1);
        });
        gauge.fetch_add(1);
        step("work");
        gauge.fetch_sub(1);
        t.join();
    });
    let failure = report.expect_failure(FailureKind::InvariantViolation);
    assert!(failure.message.contains("gauge"), "{}", failure.message);
}

#[test]
fn io_step_flags_io_under_lock() {
    let report = explore(&cfg("io-under-lock"), || {
        let m = Arc::new(CheckedMutex::named("manifest", ()));
        let _g = m.lock();
        io_step("write manifest"); // not allowed: lock held
    });
    let failure = report.expect_failure(FailureKind::InvariantViolation);
    assert!(failure.message.contains("manifest"), "{}", failure.message);
}

#[test]
fn io_step_allowing_exempts_by_design_locks() {
    let report = explore(&cfg("io-allowed"), || {
        let m = Arc::new(CheckedMutex::named("writer", ()));
        let _g = m.lock();
        hddm_check::io_step_allowing("write manifest", &[&*m]);
    });
    report.assert_clean();
}

#[test]
fn choose_explores_every_value() {
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = Arc::clone(&seen);
    let report = explore(&cfg("choose"), move || {
        let v = choose(3);
        // ORDERING-irrelevant: cross-execution bookkeeping, not model
        // state (fetch_or of a bit per observed value).
        seen2.fetch_or(1 << v, Ordering::Relaxed);
    });
    report.assert_clean();
    assert_eq!(
        seen.load(Ordering::Relaxed),
        0b111,
        "all three values explored"
    );
}

#[test]
fn step_limit_catches_runaway_models() {
    let mut c = cfg("runaway");
    c.max_steps = 100;
    let report = explore(&c, || loop {
        step("spin");
    });
    report.expect_failure(FailureKind::StepLimit);
}

#[test]
fn schedule_budget_reports_incomplete() {
    let mut c = cfg("budget");
    c.max_schedules = 2;
    let report = explore(&c, || {
        let n = Arc::new(CheckedMutex::named("n", 0u64));
        let n2 = Arc::clone(&n);
        let t = spawn("a", move || *n2.lock() += 1);
        *n.lock() += 1;
        t.join();
    });
    assert!(report.failure.is_none());
    assert!(!report.complete, "2 schedules cannot cover this model");
    assert_eq!(report.schedules, 2);
}

#[test]
fn failing_trace_replays_identically() {
    let report = explore(&cfg("replay-race"), racy_counter_model);
    let failure = report.expect_failure(FailureKind::Panic).clone();
    for _ in 0..3 {
        let re = replay(&cfg("replay-race"), &failure.trace, racy_counter_model);
        let rf = re.expect_failure(FailureKind::Panic);
        assert_eq!(rf.message, failure.message);
        assert_eq!(rf.events, failure.events);
        assert_eq!(rf.trace, failure.trace);
    }
    // The trace round-trips through its textual form.
    let parsed = Trace::parse(&failure.trace.to_string()).unwrap();
    assert_eq!(parsed, failure.trace);
    let re = replay(&cfg("replay-race"), &parsed, racy_counter_model);
    assert_eq!(re.expect_failure(FailureKind::Panic).events, failure.events);
}

#[test]
fn deterministic_schedule_counts() {
    // Exploration itself is deterministic: same model, same counts.
    let a = explore(&cfg("det"), racy_counter_model);
    let b = explore(&cfg("det"), racy_counter_model);
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.failure.map(|f| f.trace), b.failure.map(|f| f.trace));
}
