//! Compact schedule traces.
//!
//! A trace records every *branching* decision the scheduler made during
//! one execution, in order. Forced decisions (only one runnable thread,
//! a single-alternative value choice) are not recorded: they are
//! re-derived deterministically on replay, which keeps traces short and
//! means a trace stays valid as long as the model itself is unchanged.
//!
//! The textual form is dot-separated: `t0.t2.v1.t0` means "at the first
//! branching point pick thread 0, then thread 2, then value 1 of a
//! `choose`, then thread 0". [`Trace::parse`] and [`std::fmt::Display`]
//! round-trip exactly.

use std::fmt;

/// One scheduler decision: either which thread runs next, or which
/// value a [`crate::choose`] call observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Alt {
    Thread(usize),
    Value(usize),
}

impl fmt::Display for Alt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alt::Thread(t) => write!(f, "t{t}"),
            Alt::Value(v) => write!(f, "v{v}"),
        }
    }
}

/// An ordered list of branching decisions; the replayable identity of
/// one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub alts: Vec<Alt>,
}

impl Trace {
    pub fn new(alts: Vec<Alt>) -> Self {
        Trace { alts }
    }

    pub fn is_empty(&self) -> bool {
        self.alts.is_empty()
    }

    pub fn len(&self) -> usize {
        self.alts.len()
    }

    /// Parses the `t0.v1.t2` form produced by `Display`.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(Trace::default());
        }
        let mut alts = Vec::new();
        for part in text.split('.') {
            let (kind, num) = part.split_at(1.min(part.len()));
            let idx: usize = num
                .parse()
                .map_err(|_| format!("bad trace element {part:?}"))?;
            match kind {
                "t" => alts.push(Alt::Thread(idx)),
                "v" => alts.push(Alt::Value(idx)),
                _ => return Err(format!("bad trace element {part:?}")),
            }
        }
        Ok(Trace { alts })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, alt) in self.alts.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{alt}")?;
        }
        Ok(())
    }
}

/// What a failing exploration found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Cycle in the wait-for graph over held/requested locks and joins.
    Deadlock,
    /// A condvar waiter is blocked and no remaining thread can notify it.
    LostWakeup,
    /// A registered invariant or an `io_step` lock-discipline check failed.
    InvariantViolation,
    /// Model code panicked (failed `assert!`, index out of bounds, ...).
    Panic,
    /// The execution exceeded the per-schedule step budget.
    StepLimit,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost wakeup",
            FailureKind::InvariantViolation => "invariant violation",
            FailureKind::Panic => "panic",
            FailureKind::StepLimit => "step limit",
        };
        f.write_str(s)
    }
}

/// A failure plus everything needed to reproduce and understand it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Replayable schedule: feed to [`crate::replay`] to re-run the
    /// exact interleaving bit-identically.
    pub trace: Trace,
    /// Per-thread operation log (`"t1 lock(inflight)"`, ...) up to the
    /// failure point.
    pub events: Vec<String>,
}

impl Failure {
    /// Human-readable multi-line rendering used by the explorer and CI
    /// artifacts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.kind, self.message));
        out.push_str(&format!("trace: {}\n", self.trace));
        out.push_str("events:\n");
        for e in &self.events {
            out.push_str("  ");
            out.push_str(e);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        for text in ["", "t0", "t0.t1.v2.t0", "v0.v1"] {
            let t = Trace::parse(text).unwrap();
            assert_eq!(t.to_string(), text);
            assert_eq!(Trace::parse(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn trace_rejects_garbage() {
        assert!(Trace::parse("x3").is_err());
        assert!(Trace::parse("t").is_err());
        assert!(Trace::parse("t1..t2").is_err());
        assert!(Trace::parse("t-1").is_err());
    }
}
