//! # hddm-check — loom-style model checking for hddm's concurrency protocols
//!
//! A dependency-free stateless model checker: models are ordinary Rust
//! closures using drop-in instrumented primitives ([`CheckedMutex`],
//! [`CheckedRwLock`], [`CheckedCondvar`], `CheckedAtomic*`), run on
//! real threads gated by a cooperative scheduler. [`explore`]
//! enumerates every interleaving by DFS with a bounded-preemption
//! budget; failures come back with a compact [`Trace`] that [`replay`]
//! re-runs bit-identically.
//!
//! Built-in detectors, all reported with replayable traces:
//!
//! - **deadlock** — a cycle in the wait-for graph over held/requested
//!   locks (and joins) whenever no thread can run;
//! - **lost wakeup** — a [`CheckedCondvar`] waiter that no remaining
//!   schedule can ever notify;
//! - **invariant violation** — [`register_invariant`] assertions
//!   checked at every scheduling point, plus [`io_step`]'s
//!   no-lock-over-io discipline (the semantic form of hddm-lint
//!   HL003).
//!
//! ## Writing a model
//!
//! ```
//! use hddm_check::{explore, spawn, CheckedMutex, Config};
//! use std::sync::Arc;
//!
//! let report = explore(&Config::new("counter"), || {
//!     let n = Arc::new(CheckedMutex::named("n", 0u64));
//!     let n2 = Arc::clone(&n);
//!     let t = spawn("incr", move || *n2.lock() += 1);
//!     *n.lock() += 1;
//!     t.join();
//!     assert_eq!(*n.lock(), 2);
//! });
//! report.assert_clean();
//! ```
//!
//! Model closures run once per schedule and must be deterministic
//! apart from scheduling: derive all nondeterminism from [`choose`],
//! never from wall clocks or OS randomness, or traces stop replaying.

mod atomic;
mod explore;
mod runtime;
mod sync;
mod trace;

pub use atomic::{CheckedAtomicBool, CheckedAtomicU64, CheckedAtomicUsize};
pub use explore::{explore, explore_random, replay, Config, Report};
pub use runtime::{choose, register_invariant, spawn, step, JoinHandle};
pub use sync::{
    io_step, io_step_allowing, CheckedCondvar, CheckedLock, CheckedMutex, CheckedMutexGuard,
    CheckedRwLock, CheckedRwLockReadGuard, CheckedRwLockWriteGuard,
};
pub use trace::{Alt, Failure, FailureKind, Trace};
