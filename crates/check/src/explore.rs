//! Schedule exploration: exhaustive DFS with a bounded-preemption
//! budget, a randomized strategy, and deterministic replay.
//!
//! DFS maintains a stack of *frames*, one per branching decision point
//! seen along the current schedule. Each run replays the frames'
//! chosen alternatives as a plan, runs free past the end, and reports
//! any new branching points; backtracking advances the deepest frame
//! with an untried alternative and discards deeper frames. An
//! alternative that would switch away from a still-runnable thread
//! costs one preemption; alternatives whose cumulative cost exceeds
//! the bound are skipped (iterative context bounding), which is what
//! keeps exploration tractable: at bound `b`, every schedule with at
//! most `b` preemptions is covered.

use std::path::PathBuf;
use std::sync::Arc;

use crate::runtime::{self, Execution, FrameSeed, Mode, XorShift};
use crate::trace::{Alt, Failure, FailureKind, Trace};

/// Exploration parameters. `new` seeds defaults from the environment:
/// `HDDM_CHECK_PREEMPTION_BOUND`, `HDDM_CHECK_MAX_SCHEDULES`,
/// `HDDM_CHECK_TRACE_DIR` — the CI model-check job's knobs. Explicit
/// field writes after `new` win over the environment.
#[derive(Debug, Clone)]
pub struct Config {
    pub name: String,
    /// Max preemptions per schedule; `None` removes the bound.
    pub preemption_bound: Option<usize>,
    /// Schedule budget: exploration stops incomplete when exhausted.
    pub max_schedules: u64,
    /// Per-schedule scheduler-step budget (runaway-model backstop).
    pub max_steps: usize,
    /// Where to write failing traces (one file per model name).
    pub trace_dir: Option<PathBuf>,
}

impl Config {
    pub fn new(name: &str) -> Config {
        let bound = std::env::var("HDDM_CHECK_PREEMPTION_BOUND")
            .ok()
            .and_then(|s| s.parse::<usize>().ok());
        let max_schedules = std::env::var("HDDM_CHECK_MAX_SCHEDULES")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(200_000);
        Config {
            name: name.to_string(),
            preemption_bound: Some(bound.unwrap_or(2)),
            max_schedules,
            max_steps: 20_000,
            trace_dir: std::env::var_os("HDDM_CHECK_TRACE_DIR").map(PathBuf::from),
        }
    }

    pub fn with_bound(mut self, bound: Option<usize>) -> Config {
        self.preemption_bound = bound;
        self
    }
}

/// Outcome of one exploration.
#[derive(Debug)]
pub struct Report {
    pub name: String,
    /// Schedules actually executed.
    pub schedules: u64,
    /// True iff DFS exhausted every alternative within the preemption
    /// bound before the schedule budget ran out. Random exploration
    /// and replay never claim completeness.
    pub complete: bool,
    pub failure: Option<Failure>,
    /// Longest schedule seen, in scheduler steps.
    pub max_steps_seen: usize,
}

impl Report {
    /// Asserts the exploration covered every schedule at the bound and
    /// found nothing; returns the schedule count for logging.
    pub fn assert_clean(&self) -> u64 {
        if let Some(f) = &self.failure {
            panic!("model {:?} failed:\n{}", self.name, f.render());
        }
        assert!(
            self.complete,
            "model {:?}: schedule budget exhausted after {} schedules without full coverage",
            self.name, self.schedules
        );
        self.schedules
    }

    /// Asserts the exploration found a failure of `kind` and returns it.
    pub fn expect_failure(&self, kind: FailureKind) -> &Failure {
        match &self.failure {
            Some(f) if f.kind == kind => f,
            Some(f) => panic!(
                "model {:?}: expected {kind}, found:\n{}",
                self.name,
                f.render()
            ),
            None => panic!(
                "model {:?}: expected {kind} but exploration was clean ({} schedules, complete={})",
                self.name, self.schedules, self.complete
            ),
        }
    }
}

struct Frame {
    alts: Vec<Alt>,
    /// 1-based count of alternatives tried; `alts[taken-1]` is current.
    taken: usize,
    preemptions_before: usize,
    running_before: usize,
    running_enabled: bool,
}

impl Frame {
    fn from_seed(seed: FrameSeed) -> Frame {
        // In DFS mode the runtime always picks the first alternative
        // at a fresh branching point.
        debug_assert_eq!(seed.chosen, seed.alts[0]);
        Frame {
            alts: seed.alts,
            taken: 1,
            preemptions_before: seed.preemptions_before,
            running_before: seed.running_before,
            running_enabled: seed.running_enabled,
        }
    }
}

fn feasible(bound: Option<usize>, frame: &Frame, cand: Alt) -> bool {
    let Some(b) = bound else { return true };
    let cost = match cand {
        Alt::Thread(t) if frame.running_enabled && t != frame.running_before => 1,
        _ => 0,
    };
    frame.preemptions_before + cost <= b
}

struct RunOutcome {
    discovered: Vec<FrameSeed>,
    failure: Option<Failure>,
    steps: usize,
}

/// Runs the model once under the given plan and mode.
fn run_once(
    max_steps: usize,
    plan: Vec<Alt>,
    mode: Mode,
    model: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let exec = Arc::new(Execution::new(plan, mode, max_steps));
    runtime::start_root(&exec, Arc::clone(model));
    let outcome;
    {
        let mut st = runtime::lock_state(&exec);
        while !st.done {
            st = exec.cv.wait(st).unwrap_or_else(|poison| {
                exec.state.clear_poison();
                poison.into_inner()
            });
        }
        outcome = RunOutcome {
            discovered: std::mem::take(&mut st.discovered),
            failure: st.failure.take(),
            steps: st.steps,
        };
    }
    exec.cv.notify_all();
    // Join every model thread before returning; late spawns can add
    // handles while we drain, so loop until empty.
    loop {
        let handles: Vec<std::thread::JoinHandle<()>> = {
            let mut st = runtime::lock_state(&exec);
            st.handles.drain(..).collect()
        };
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    outcome
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes the failing trace where CI can pick it up as an artifact,
/// and prints it for interactive runs.
fn dump_failure(cfg: &Config, failure: &Failure) {
    eprintln!(
        "hddm-check: model {:?} failed\n{}replay: hddm_check::replay(&Config::new({:?}), &Trace::parse({:?}).unwrap(), model)",
        cfg.name,
        failure.render(),
        cfg.name,
        failure.trace.to_string()
    );
    if let Some(dir) = &cfg.trace_dir {
        let path = dir.join(format!("{}.trace", sanitize(&cfg.name)));
        let body = format!(
            "# model: {}\n# kind: {}\n# message: {}\n{}\n",
            cfg.name, failure.kind, failure.message, failure.trace
        );
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(&path, body);
        }
    }
}

/// Exhaustive DFS over all schedules within the preemption bound.
/// Stops at the first failure (trace dumped) or when the alternative
/// space or the schedule budget is exhausted.
pub fn explore<F>(cfg: &Config, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut frames: Vec<Frame> = Vec::new();
    let mut schedules: u64 = 0;
    let mut max_steps_seen = 0;
    loop {
        if schedules >= cfg.max_schedules {
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: false,
                failure: None,
                max_steps_seen,
            };
        }
        let plan: Vec<Alt> = frames.iter().map(|f| f.alts[f.taken - 1]).collect();
        let out = run_once(cfg.max_steps, plan, Mode::Dfs, &model);
        schedules += 1;
        max_steps_seen = max_steps_seen.max(out.steps);
        if let Some(failure) = out.failure {
            dump_failure(cfg, &failure);
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: false,
                failure: Some(failure),
                max_steps_seen,
            };
        }
        frames.extend(out.discovered.into_iter().map(Frame::from_seed));
        // Backtrack: advance the deepest frame with an untried,
        // bound-feasible alternative; pop exhausted frames.
        loop {
            let Some(frame) = frames.last_mut() else {
                return Report {
                    name: cfg.name.clone(),
                    schedules,
                    complete: true,
                    failure: None,
                    max_steps_seen,
                };
            };
            let mut advanced = false;
            while frame.taken < frame.alts.len() {
                let cand = frame.alts[frame.taken];
                frame.taken += 1;
                if feasible(cfg.preemption_bound, frame, cand) {
                    advanced = true;
                    break;
                }
            }
            if advanced {
                break;
            }
            frames.pop();
        }
    }
}

/// Randomized exploration: up to `cfg.max_schedules` runs with a
/// seeded PRNG picking every branch (no preemption bound). Returns at
/// the first failure. Never claims completeness — it is a sampling
/// strategy for the replay property tests and for quick smoke runs.
pub fn explore_random<F>(cfg: &Config, seed: u64, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut max_steps_seen = 0;
    for i in 0..cfg.max_schedules {
        let rng = XorShift::new(seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let out = run_once(cfg.max_steps, Vec::new(), Mode::Random(rng), &model);
        max_steps_seen = max_steps_seen.max(out.steps);
        if let Some(failure) = out.failure {
            dump_failure(cfg, &failure);
            return Report {
                name: cfg.name.clone(),
                schedules: i + 1,
                complete: false,
                failure: Some(failure),
                max_steps_seen,
            };
        }
    }
    Report {
        name: cfg.name.clone(),
        schedules: cfg.max_schedules,
        complete: false,
        failure: None,
        max_steps_seen,
    }
}

/// Re-runs the exact interleaving recorded in `trace`. Decisions
/// beyond the trace (there should be none for a failing trace) fall
/// back to the deterministic DFS default, so replay is always
/// bit-identical for a fixed model.
pub fn replay<F>(cfg: &Config, trace: &Trace, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let out = run_once(cfg.max_steps, trace.alts.clone(), Mode::Dfs, &model);
    Report {
        name: cfg.name.clone(),
        schedules: 1,
        complete: false,
        failure: out.failure,
        max_steps_seen: out.steps,
    }
}
