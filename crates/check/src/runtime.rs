//! The cooperative scheduler behind every `Checked*` primitive.
//!
//! All model threads are real OS threads, but exactly one is ever
//! *running*: every instrumented operation locks the shared
//! [`ExecState`], records an event, checks invariants, asks the
//! scheduler to pick the next thread, and then blocks on a condvar
//! until it is picked again. The scheduler's picks are the *decisions*;
//! branching decisions are recorded in the trace and exposed to the
//! DFS explorer as alternatives to revisit.
//!
//! An operation's side effect (taking a lock, mutating an atomic)
//! happens *after* its yield point, while the thread holds the global
//! turn — so each operation is atomic with respect to the model and the
//! interleaving semantics are sequentially consistent.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::trace::{Alt, Failure, FailureKind, Trace};

/// Stack size for model threads: models are tiny, keep thousands of
/// short-lived executions cheap.
const THREAD_STACK: usize = 256 * 1024;
/// Cap on the per-execution event log (the step limit bites first in
/// any sane model; this bounds memory if it does not).
const MAX_EVENTS: usize = 8192;

/// Shared state of one execution.
pub(crate) struct Execution {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

impl Execution {
    pub(crate) fn new(plan: Vec<Alt>, mode: Mode, max_steps: usize) -> Execution {
        Execution {
            state: Mutex::new(ExecState::new(plan, mode, max_steps)),
            cv: Condvar::new(),
        }
    }
}

/// Payload used to unwind model threads when an execution aborts
/// (failure found, or teardown). Raised with `resume_unwind`, which
/// skips the panic hook: abort unwinding is control flow, not an error.
pub(crate) struct AbortToken;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Want {
    Mutex,
    Read,
    Write,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockReason {
    Lock { lock: usize, want: Want },
    Condvar { cv: usize, lock: usize, timed: bool },
    Join { target: usize },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) status: Status,
    /// Ids of checked locks currently held (read or write side).
    pub(crate) held: Vec<usize>,
    /// Set when a timed condvar wait was woken by its timeout.
    pub(crate) timed_out: bool,
    pub(crate) name: String,
}

impl ThreadState {
    fn new(name: String) -> ThreadState {
        ThreadState {
            status: Status::Runnable,
            held: Vec::new(),
            timed_out: false,
            name,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LockKind {
    Mutex,
    RwLock,
}

pub(crate) struct LockState {
    pub(crate) writer: Option<usize>,
    pub(crate) readers: Vec<usize>,
    pub(crate) name: String,
}

pub(crate) struct CvState {
    pub(crate) name: String,
}

/// A branching decision point discovered beyond the current plan,
/// handed to the DFS explorer as a frame to revisit.
pub(crate) struct FrameSeed {
    pub(crate) alts: Vec<Alt>,
    pub(crate) chosen: Alt,
    pub(crate) preemptions_before: usize,
    pub(crate) running_before: usize,
    pub(crate) running_enabled: bool,
}

pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> XorShift {
        // ORDERING-free PRNG: plain xorshift64, seed forced non-zero.
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

pub(crate) enum Mode {
    /// Deterministic: beyond the plan, always take the first
    /// alternative (prefer the running thread).
    Dfs,
    /// Beyond the plan, pick uniformly at random (bound-free).
    Random(XorShift),
}

struct Invariant {
    name: String,
    check: Box<dyn Fn() -> Result<(), String> + Send>,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) locks: Vec<LockState>,
    pub(crate) cvs: Vec<CvState>,
    pub(crate) current: usize,
    /// Branching decisions to replay before free exploration.
    plan: Vec<Alt>,
    cursor: usize,
    pub(crate) discovered: Vec<FrameSeed>,
    preemptions: usize,
    pub(crate) steps: usize,
    max_steps: usize,
    mode: Mode,
    pub(crate) trace: Vec<Alt>,
    pub(crate) events: Vec<String>,
    pub(crate) failure: Option<Failure>,
    pub(crate) aborted: bool,
    pub(crate) done: bool,
    invariants: Vec<Invariant>,
    pub(crate) handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn new(plan: Vec<Alt>, mode: Mode, max_steps: usize) -> ExecState {
        ExecState {
            threads: Vec::new(),
            locks: Vec::new(),
            cvs: Vec::new(),
            current: 0,
            plan,
            cursor: 0,
            discovered: Vec::new(),
            preemptions: 0,
            steps: 0,
            max_steps,
            mode,
            trace: Vec::new(),
            events: Vec::new(),
            failure: None,
            aborted: false,
            done: false,
            invariants: Vec::new(),
            handles: Vec::new(),
        }
    }

    fn record_event(&mut self, tid: usize, label: &str) {
        if self.aborted || self.events.len() >= MAX_EVENTS {
            return;
        }
        self.events.push(format!("t{tid} {label}"));
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                trace: Trace::new(self.trace.clone()),
                events: self.events.clone(),
            });
        }
        self.aborted = true;
        self.done = true;
    }

    fn check_invariants(&mut self) {
        if self.aborted || self.invariants.is_empty() {
            return;
        }
        // Take the list out so `fail` can borrow `self` mutably; the
        // closures only `peek` atomics, they never touch this state.
        let mut invs = std::mem::take(&mut self.invariants);
        for inv in &invs {
            if let Err(msg) = (inv.check)() {
                self.fail(
                    FailureKind::InvariantViolation,
                    format!("invariant {:?} violated: {msg}", inv.name),
                );
                break;
            }
        }
        invs.append(&mut self.invariants);
        self.invariants = invs;
    }

    fn try_take(&mut self, lock_id: usize, want: Want, tid: usize) -> bool {
        let l = &mut self.locks[lock_id];
        let free = match want {
            Want::Mutex | Want::Write => l.writer.is_none() && l.readers.is_empty(),
            Want::Read => l.writer.is_none(),
        };
        if free {
            match want {
                Want::Mutex | Want::Write => l.writer = Some(tid),
                Want::Read => l.readers.push(tid),
            }
            self.threads[tid].held.push(lock_id);
        }
        free
    }

    fn release_lock(&mut self, lock_id: usize, tid: usize) {
        let l = &mut self.locks[lock_id];
        if l.writer == Some(tid) {
            l.writer = None;
        } else if let Some(p) = l.readers.iter().position(|&r| r == tid) {
            l.readers.remove(p);
        }
        let held = &mut self.threads[tid].held;
        if let Some(p) = held.iter().position(|&h| h == lock_id) {
            held.remove(p);
        }
        for t in self.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockReason::Lock { lock, .. }) if lock == lock_id)
            {
                t.status = Status::Runnable;
            }
        }
    }

    /// Wakes every waiter in a *timed* condvar wait (its timeout
    /// fires). Timeouts are lazy: they only fire when no thread can
    /// otherwise run, which models "the linger window eventually
    /// elapses" without exploding the state space and without
    /// reporting a lost wakeup for waits that have a timeout escape.
    fn wake_timed_waiters(&mut self) -> bool {
        let mut woke = false;
        for t in self.threads.iter_mut() {
            if matches!(
                t.status,
                Status::Blocked(BlockReason::Condvar { timed: true, .. })
            ) {
                t.timed_out = true;
                t.status = Status::Runnable;
                woke = true;
            }
        }
        woke
    }

    fn describe_thread(&self, tid: usize) -> String {
        let t = &self.threads[tid];
        let held: Vec<&str> = t
            .held
            .iter()
            .map(|&l| self.locks[l].name.as_str())
            .collect();
        let wants = match t.status {
            Status::Blocked(BlockReason::Lock { lock, want }) => {
                let verb = match want {
                    Want::Mutex => "lock",
                    Want::Read => "read",
                    Want::Write => "write",
                };
                format!("wants {verb}({})", self.locks[lock].name)
            }
            Status::Blocked(BlockReason::Condvar { cv, lock, .. }) => {
                format!(
                    "waiting on condvar {} (mutex {})",
                    self.cvs[cv].name, self.locks[lock].name
                )
            }
            Status::Blocked(BlockReason::Join { target }) => format!("joining t{target}"),
            _ => "".to_string(),
        };
        format!("t{tid} ({}) holds [{}] {}", t.name, held.join(", "), wants)
    }

    /// No runnable thread, not all finished, no timed waiter left to
    /// wake: classify the stuck state as a deadlock (cycle in the
    /// wait-for graph) or a lost wakeup (condvar waiters nobody can
    /// ever notify).
    fn fail_stuck(&mut self) {
        let n = self.threads.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut cv_waiters: Vec<usize> = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            match t.status {
                Status::Blocked(BlockReason::Lock { lock, want }) => {
                    let l = &self.locks[lock];
                    if let Some(w) = l.writer {
                        edges[i].push(w);
                    }
                    if matches!(want, Want::Mutex | Want::Write) {
                        edges[i].extend(l.readers.iter().copied());
                    }
                }
                Status::Blocked(BlockReason::Join { target }) => edges[i].push(target),
                Status::Blocked(BlockReason::Condvar { .. }) => cv_waiters.push(i),
                _ => {}
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            let parts: Vec<String> = cycle.iter().map(|&t| self.describe_thread(t)).collect();
            self.fail(
                FailureKind::Deadlock,
                format!("wait-for cycle: {}", parts.join("; ")),
            );
        } else if !cv_waiters.is_empty() {
            let parts: Vec<String> = cv_waiters
                .iter()
                .map(|&t| self.describe_thread(t))
                .collect();
            self.fail(
                FailureKind::LostWakeup,
                format!("no runnable thread can ever notify: {}", parts.join("; ")),
            );
        } else {
            let parts: Vec<String> = (0..n)
                .filter(|&t| !matches!(self.threads[t].status, Status::Finished))
                .map(|t| self.describe_thread(t))
                .collect();
            self.fail(
                FailureKind::Deadlock,
                format!(
                    "threads stuck with no cycle (leaked guard?): {}",
                    parts.join("; ")
                ),
            );
        }
    }

    /// Picks the next thread to run. `yielder` is the thread giving up
    /// its turn; keeping it running is the preferred (free)
    /// alternative, switching away from it while it is still runnable
    /// costs one preemption.
    fn schedule(&mut self, yielder: usize) {
        if self.aborted {
            return;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(
                FailureKind::StepLimit,
                format!("execution exceeded {} scheduler steps", self.max_steps),
            );
            return;
        }
        loop {
            let enabled: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Runnable))
                .map(|(i, _)| i)
                .collect();
            if enabled.is_empty() {
                if self
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished))
                {
                    self.done = true;
                    return;
                }
                if self.wake_timed_waiters() {
                    continue;
                }
                self.fail_stuck();
                return;
            }
            let yielder_enabled = enabled.contains(&yielder);
            let mut alts: Vec<Alt> = Vec::with_capacity(enabled.len());
            if yielder_enabled {
                alts.push(Alt::Thread(yielder));
            }
            for &t in &enabled {
                if t != yielder {
                    alts.push(Alt::Thread(t));
                }
            }
            let Some(Alt::Thread(next)) = self.decide(alts, yielder, yielder_enabled) else {
                return; // aborted inside decide
            };
            if yielder_enabled && next != yielder {
                self.preemptions += 1;
            }
            self.current = next;
            return;
        }
    }

    /// Resolves one decision point: follow the plan while it lasts,
    /// then fall back to the mode's default and record the branch for
    /// the explorer. Forced (single-alternative) decisions are not
    /// recorded — replay re-derives them.
    fn decide(&mut self, alts: Vec<Alt>, yielder: usize, yielder_enabled: bool) -> Option<Alt> {
        if alts.len() == 1 {
            return Some(alts[0]);
        }
        let alt = if self.cursor < self.plan.len() {
            let planned = self.plan[self.cursor];
            if !alts.contains(&planned) {
                let listed: Vec<String> = alts.iter().map(|a| a.to_string()).collect();
                self.fail(
                    FailureKind::Panic,
                    format!(
                        "nondeterministic model: planned {planned} unavailable at decision {} (alternatives: {})",
                        self.cursor,
                        listed.join(", ")
                    ),
                );
                return None;
            }
            planned
        } else {
            match &mut self.mode {
                Mode::Dfs => alts[0],
                Mode::Random(rng) => alts[(rng.next() as usize) % alts.len()],
            }
        };
        if self.cursor >= self.plan.len() {
            self.discovered.push(FrameSeed {
                alts: alts.clone(),
                chosen: alt,
                preemptions_before: self.preemptions,
                running_before: yielder,
                running_enabled: yielder_enabled,
            });
        }
        self.cursor += 1;
        self.trace.push(alt);
        Some(alt)
    }

    /// A data-nondeterminism decision (`choose(n)`): picks one of `n`
    /// values. Value decisions never cost preemptions.
    fn decide_value(&mut self, n: usize, yielder: usize) -> usize {
        if self.aborted || n <= 1 {
            return 0;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(
                FailureKind::StepLimit,
                format!("execution exceeded {} scheduler steps", self.max_steps),
            );
            return 0;
        }
        let alts: Vec<Alt> = (0..n).map(Alt::Value).collect();
        match self.decide(alts, yielder, false) {
            Some(Alt::Value(v)) => v,
            _ => 0,
        }
    }
}

/// Finds a cycle in the thread wait-for graph, returned in traversal
/// order. Graphs here have at most an edge or two per node.
fn find_cycle(edges: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = edges.len();
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut color = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();
    fn visit(
        v: usize,
        edges: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[v] = 1;
        stack.push(v);
        for &w in &edges[v] {
            if color[w] == 1 {
                let at = stack.iter().position(|&x| x == w).unwrap_or(0);
                return Some(stack[at..].to_vec());
            }
            if color[w] == 0 {
                if let Some(c) = visit(w, edges, color, stack) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        color[v] = 2;
        None
    }
    for v in 0..n {
        if color[v] == 0 {
            if let Some(c) = visit(v, edges, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

// ---- thread-local execution context ----

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec, tid }));
}

/// The calling thread's execution context. Panics (a model error)
/// outside `explore()`/`replay()`.
pub(crate) fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| c.borrow().as_ref().map(|x| (x.exec.clone(), x.tid)))
        .unwrap_or_else(|| {
            panic!(
                "hddm-check primitives may only be used inside a model run by explore()/replay()"
            )
        })
}

/// Like [`ctx`], but also checks the primitive belongs to the current
/// execution (catches primitives leaked across executions).
pub(crate) fn ctx_in(exec: &Arc<Execution>) -> usize {
    let (cur, tid) = ctx();
    assert!(
        Arc::ptr_eq(&cur, exec),
        "checked primitive used from a different execution than the one that created it"
    );
    tid
}

// ---- guard-free state helpers ----

pub(crate) fn lock_state(exec: &Execution) -> MutexGuard<'_, ExecState> {
    exec.state.lock().unwrap_or_else(|poison| {
        exec.state.clear_poison();
        poison.into_inner()
    })
}

fn unwind_abort() -> ! {
    std::panic::resume_unwind(Box::new(AbortToken))
}

/// Blocks until it is `tid`'s turn. Returns `None` (guard dropped) if
/// the execution aborted; callers unwind or bail as appropriate.
fn wait_for_turn<'a>(
    exec: &'a Execution,
    tid: usize,
    mut st: MutexGuard<'a, ExecState>,
) -> Option<MutexGuard<'a, ExecState>> {
    loop {
        if st.aborted {
            return None;
        }
        if st.current == tid && matches!(st.threads[tid].status, Status::Runnable) {
            return Some(st);
        }
        st = exec.cv.wait(st).unwrap_or_else(|poison| {
            exec.state.clear_poison();
            poison.into_inner()
        });
    }
}

fn must_wait<'a>(
    exec: &'a Execution,
    tid: usize,
    st: MutexGuard<'a, ExecState>,
) -> MutexGuard<'a, ExecState> {
    match wait_for_turn(exec, tid, st) {
        Some(st) => st,
        None => unwind_abort(),
    }
}

// ---- primitive registration ----

pub(crate) fn register_lock(exec: &Execution, kind: LockKind, name: &str) -> usize {
    let mut st = lock_state(exec);
    let id = st.locks.len();
    let name = if name.is_empty() {
        match kind {
            LockKind::Mutex => format!("mutex{id}"),
            LockKind::RwLock => format!("rwlock{id}"),
        }
    } else {
        name.to_string()
    };
    st.locks.push(LockState {
        writer: None,
        readers: Vec::new(),
        name,
    });
    id
}

pub(crate) fn register_cv(exec: &Execution, name: &str) -> usize {
    let mut st = lock_state(exec);
    let id = st.cvs.len();
    let name = if name.is_empty() {
        format!("cv{id}")
    } else {
        name.to_string()
    };
    st.cvs.push(CvState { name });
    id
}

// ---- instrumented operations ----

pub(crate) fn op_yield(exec: &Execution, tid: usize, label: &str) {
    let mut st = lock_state(exec);
    st.record_event(tid, label);
    st.check_invariants();
    st.schedule(tid);
    exec.cv.notify_all();
    let st = must_wait(exec, tid, st);
    drop(st);
}

pub(crate) fn op_acquire(exec: &Execution, tid: usize, lock_id: usize, want: Want) {
    let mut st = lock_state(exec);
    let verb = match want {
        Want::Mutex => "lock",
        Want::Read => "read",
        Want::Write => "write",
    };
    let label = format!("{verb}({})", st.locks[lock_id].name);
    st.record_event(tid, &label);
    st.check_invariants();
    st.schedule(tid);
    exec.cv.notify_all();
    let mut st = must_wait(exec, tid, st);
    loop {
        if st.try_take(lock_id, want, tid) {
            return;
        }
        st.threads[tid].status = Status::Blocked(BlockReason::Lock {
            lock: lock_id,
            want,
        });
        st.schedule(tid);
        exec.cv.notify_all();
        st = must_wait(exec, tid, st);
    }
}

/// Lock release, called from guard `Drop` impls. Never unwinds while
/// the thread is already panicking (that would double-panic during an
/// abort teardown); aborted executions make it a no-op instead.
pub(crate) fn op_release(exec: &Execution, tid: usize, lock_id: usize) {
    let mut st = lock_state(exec);
    if st.aborted {
        return;
    }
    let label = format!("unlock({})", st.locks[lock_id].name);
    st.release_lock(lock_id, tid);
    st.record_event(tid, &label);
    st.check_invariants();
    st.schedule(tid);
    exec.cv.notify_all();
    match wait_for_turn(exec, tid, st) {
        Some(st) => drop(st),
        None => {
            if !std::thread::panicking() {
                unwind_abort();
            }
        }
    }
}

/// Condvar wait: atomically releases the paired mutex and blocks until
/// notified (or, for timed waits, until the lazy timeout fires), then
/// reacquires the mutex. Returns whether the wait timed out.
pub(crate) fn op_cv_wait(
    exec: &Execution,
    tid: usize,
    cv_id: usize,
    lock_id: usize,
    timed: bool,
) -> bool {
    let mut st = lock_state(exec);
    let label = format!(
        "{}({})",
        if timed { "wait_timeout" } else { "wait" },
        st.cvs[cv_id].name
    );
    st.record_event(tid, &label);
    st.check_invariants();
    st.release_lock(lock_id, tid);
    st.threads[tid].timed_out = false;
    st.threads[tid].status = Status::Blocked(BlockReason::Condvar {
        cv: cv_id,
        lock: lock_id,
        timed,
    });
    st.schedule(tid);
    exec.cv.notify_all();
    let mut st = must_wait(exec, tid, st);
    let timed_out = st.threads[tid].timed_out;
    loop {
        if st.try_take(lock_id, Want::Mutex, tid) {
            return timed_out;
        }
        st.threads[tid].status = Status::Blocked(BlockReason::Lock {
            lock: lock_id,
            want: Want::Mutex,
        });
        st.schedule(tid);
        exec.cv.notify_all();
        st = must_wait(exec, tid, st);
    }
}

pub(crate) fn op_cv_notify(exec: &Execution, tid: usize, cv_id: usize, all: bool) {
    let mut st = lock_state(exec);
    let label = format!(
        "{}({})",
        if all { "notify_all" } else { "notify_one" },
        st.cvs[cv_id].name
    );
    st.record_event(tid, &label);
    st.check_invariants();
    for t in st.threads.iter_mut() {
        if matches!(t.status, Status::Blocked(BlockReason::Condvar { cv, .. }) if cv == cv_id) {
            t.status = Status::Runnable;
            if !all {
                break; // notify_one wakes the lowest-tid waiter
            }
        }
    }
    st.schedule(tid);
    exec.cv.notify_all();
    let st = must_wait(exec, tid, st);
    drop(st);
}

pub(crate) fn op_join(exec: &Execution, tid: usize, target: usize) {
    let mut st = lock_state(exec);
    st.record_event(tid, &format!("join(t{target})"));
    st.check_invariants();
    if !matches!(st.threads[target].status, Status::Finished) {
        st.threads[tid].status = Status::Blocked(BlockReason::Join { target });
    }
    st.schedule(tid);
    exec.cv.notify_all();
    let st = must_wait(exec, tid, st);
    drop(st);
}

pub(crate) fn op_choose(exec: &Execution, tid: usize, n: usize) -> usize {
    let mut st = lock_state(exec);
    st.record_event(tid, &format!("choose({n})"));
    st.check_invariants();
    let v = st.decide_value(n, tid);
    let aborted = st.aborted;
    drop(st);
    if aborted {
        exec.cv.notify_all();
        unwind_abort();
    }
    v
}

/// A side-effect step standing in for real I/O. Fails the execution if
/// the calling thread holds any checked lock not in `allowed` — the
/// semantic version of hddm-lint's HL003 "no I/O under a lock".
pub(crate) fn op_io(exec: &Execution, tid: usize, label: &str, allowed: &[usize]) {
    let mut st = lock_state(exec);
    st.record_event(tid, &format!("io:{label}"));
    let bad: Vec<String> = st.threads[tid]
        .held
        .iter()
        .filter(|id| !allowed.contains(id))
        .map(|&id| st.locks[id].name.clone())
        .collect();
    if !bad.is_empty() {
        let name = st.threads[tid].name.clone();
        st.fail(
            FailureKind::InvariantViolation,
            format!("io step {label:?} on t{tid} ({name}) while holding checked lock(s): {bad:?}"),
        );
    }
    st.check_invariants();
    st.schedule(tid);
    exec.cv.notify_all();
    let st = must_wait(exec, tid, st);
    drop(st);
}

// ---- spawn / join / finish ----

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn store_result<T>(slot: &Mutex<Option<T>>, v: T) {
    *slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
}

/// Marks `tid` finished (or fails the execution if it panicked), wakes
/// joiners, and hands the turn onward.
pub(crate) fn finish_thread(exec: &Execution, tid: usize, panic_msg: Option<String>) {
    let mut st = lock_state(exec);
    if st.aborted {
        return;
    }
    match panic_msg {
        Some(msg) => {
            let name = st.threads[tid].name.clone();
            st.record_event(tid, &format!("panic: {msg}"));
            st.fail(
                FailureKind::Panic,
                format!("t{tid} ({name}) panicked: {msg}"),
            );
        }
        None => {
            st.record_event(tid, "exit");
            st.threads[tid].status = Status::Finished;
            for t in st.threads.iter_mut() {
                if matches!(t.status, Status::Blocked(BlockReason::Join { target }) if target == tid)
                {
                    t.status = Status::Runnable;
                }
            }
            st.schedule(tid);
        }
    }
    drop(st);
    exec.cv.notify_all();
}

/// Registers the model's root thread (tid 0) and starts it running
/// `f`. Called once per execution by the explorer.
pub(crate) fn start_root(exec: &Arc<Execution>, f: Arc<dyn Fn() + Send + Sync>) {
    {
        let mut st = lock_state(exec);
        st.threads.push(ThreadState::new("main".to_string()));
        st.current = 0;
    }
    let exec2 = Arc::clone(exec);
    let os = std::thread::Builder::new()
        .name("hddm-check-main".to_string())
        .stack_size(THREAD_STACK)
        .spawn(move || {
            set_ctx(Arc::clone(&exec2), 0);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
            match out {
                Ok(()) => finish_thread(&exec2, 0, None),
                Err(p) if p.downcast_ref::<AbortToken>().is_some() => {}
                Err(p) => finish_thread(&exec2, 0, Some(panic_message(&*p))),
            }
        })
        .expect("spawn model root thread");
    let mut st = lock_state(exec);
    st.handles.push(os);
}

/// Handle to a model thread started with [`spawn`].
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a scheduling point) until the thread finishes, then
    /// returns its result.
    pub fn join(self) -> T {
        let me = ctx_in(&self.exec);
        op_join(&self.exec, me, self.tid);
        let v = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match v {
            Some(v) => v,
            // The target finished without storing a value: only
            // possible mid-abort, which op_join already unwinds on.
            None => unwind_abort(),
        }
    }
}

/// Spawns a named model thread. The name shows up in traces and
/// failure reports; the spawn itself is a scheduling point.
pub fn spawn<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, parent) = ctx();
    let tid = {
        let mut st = lock_state(&exec);
        st.threads.push(ThreadState::new(name.to_string()));
        st.threads.len() - 1
    };
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("hddm-check-{name}"))
        .stack_size(THREAD_STACK)
        .spawn(move || {
            set_ctx(Arc::clone(&exec2), tid);
            {
                let st = lock_state(&exec2);
                // First turn: run only once the scheduler picks us. On
                // abort before that, exit silently.
                let Some(st) = wait_for_turn(&exec2, tid, st) else {
                    return;
                };
                drop(st);
            }
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    store_result(&slot2, v);
                    finish_thread(&exec2, tid, None);
                }
                Err(p) if p.downcast_ref::<AbortToken>().is_some() => {}
                Err(p) => finish_thread(&exec2, tid, Some(panic_message(&*p))),
            }
        })
        .expect("spawn model thread");
    {
        let mut st = lock_state(&exec);
        st.handles.push(os);
    }
    op_yield(&exec, parent, &format!("spawn({name})"));
    JoinHandle { exec, tid, slot }
}

// ---- model-facing free functions ----

/// An explicit scheduling point with a label; use to mark work between
/// synchronization operations (e.g. "run_batch solve").
pub fn step(label: &str) {
    let (exec, tid) = ctx();
    op_yield(&exec, tid, label);
}

/// Data nondeterminism: explores every value in `0..n` across
/// schedules (a value decision, never a preemption).
pub fn choose(n: usize) -> usize {
    let (exec, tid) = ctx();
    op_choose(&exec, tid, n)
}

/// Registers a named invariant checked at every scheduling point.
/// The closure must only `peek()` checked atomics (or read captured
/// plain state) — it runs inside the scheduler and must not call any
/// yielding operation.
pub fn register_invariant<F>(name: &str, f: F)
where
    F: Fn() -> Result<(), String> + Send + 'static,
{
    let (exec, _) = ctx();
    lock_state(&exec).invariants.push(Invariant {
        name: name.to_string(),
        check: Box::new(f),
    });
}
