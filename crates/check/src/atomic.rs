//! Instrumented atomics.
//!
//! Every operation is a scheduling point, so the explorer enumerates
//! all orderings of atomic accesses across threads. The backing store
//! is a real `std` atomic accessed with `Relaxed`: the scheduler's
//! state mutex already serializes model steps, so the model-visible
//! semantics are sequentially consistent regardless.
//!
//! `peek()` reads without yielding — it exists for invariant closures,
//! which run inside the scheduler and must not re-enter it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::runtime::{self, Execution};

macro_rules! checked_atomic {
    ($name:ident, $prim:ty, $inner:ty) => {
        pub struct $name {
            exec: Arc<Execution>,
            label: String,
            inner: $inner,
        }

        impl $name {
            pub fn new(value: $prim) -> Self {
                Self::named("atomic", value)
            }

            /// Named variant; the name appears in the event log.
            pub fn named(name: &str, value: $prim) -> Self {
                let (exec, _) = runtime::ctx();
                $name {
                    exec,
                    label: name.to_string(),
                    inner: <$inner>::new(value),
                }
            }

            fn yield_op(&self, op: &str) {
                let tid = runtime::ctx_in(&self.exec);
                runtime::op_yield(&self.exec, tid, &format!("{}.{op}", self.label));
            }

            pub fn load(&self) -> $prim {
                self.yield_op("load");
                // ORDERING: Relaxed suffices — the checker's scheduler
                // mutex totally orders all model steps.
                self.inner.load(Ordering::Relaxed)
            }

            pub fn store(&self, value: $prim) {
                self.yield_op("store");
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.store(value, Ordering::Relaxed)
            }

            pub fn swap(&self, value: $prim) -> $prim {
                self.yield_op("swap");
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.swap(value, Ordering::Relaxed)
            }

            pub fn compare_exchange(&self, current: $prim, new: $prim) -> Result<$prim, $prim> {
                self.yield_op("compare_exchange");
                self.inner
                    // ORDERING: Relaxed suffices — see `load`.
                    .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            }

            /// Non-yielding read for invariant closures and
            /// post-exploration assertions.
            pub fn peek(&self) -> $prim {
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.load(Ordering::Relaxed)
            }
        }
    };
}

macro_rules! checked_atomic_int {
    ($name:ident, $prim:ty) => {
        impl $name {
            pub fn fetch_add(&self, value: $prim) -> $prim {
                self.yield_op("fetch_add");
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.fetch_add(value, Ordering::Relaxed)
            }

            pub fn fetch_sub(&self, value: $prim) -> $prim {
                self.yield_op("fetch_sub");
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.fetch_sub(value, Ordering::Relaxed)
            }

            pub fn fetch_max(&self, value: $prim) -> $prim {
                self.yield_op("fetch_max");
                // ORDERING: Relaxed suffices — see `load`.
                self.inner.fetch_max(value, Ordering::Relaxed)
            }
        }
    };
}

checked_atomic!(CheckedAtomicU64, u64, AtomicU64);
checked_atomic_int!(CheckedAtomicU64, u64);

checked_atomic!(CheckedAtomicUsize, usize, AtomicUsize);
checked_atomic_int!(CheckedAtomicUsize, usize);

checked_atomic!(CheckedAtomicBool, bool, AtomicBool);
