//! Drop-in instrumented sync primitives.
//!
//! API mirrors `std::sync` minus poisoning (the scheduler owns failure
//! propagation): `lock()`/`read()`/`write()` return guards directly,
//! `CheckedCondvar::wait` takes and returns the mutex guard. Every
//! acquire/release/wait/notify is a scheduling point the explorer can
//! branch on.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::runtime::{self, Execution, LockKind, Want};

/// Anything with a checker-level lock identity; used by
/// [`io_step_allowing`] to exempt by-design lock-over-io patterns.
pub trait CheckedLock {
    fn lock_id(&self) -> usize;
}

/// Mutex whose acquire/release points yield to the scheduler.
pub struct CheckedMutex<T> {
    exec: Arc<Execution>,
    id: usize,
    cell: UnsafeCell<T>,
}

// SAFETY: the cooperative scheduler runs exactly one model thread at a
// time, and the model-level mutex protocol (enforced by the scheduler)
// allows at most one live guard, so `cell` is never aliased mutably.
unsafe impl<T: Send> Send for CheckedMutex<T> {}
// SAFETY: as above — guard exclusivity is enforced by the scheduler.
unsafe impl<T: Send> Sync for CheckedMutex<T> {}

impl<T> CheckedMutex<T> {
    pub fn new(value: T) -> Self {
        Self::named("", value)
    }

    /// Named variant; the name appears in events and failure reports.
    pub fn named(name: &str, value: T) -> Self {
        let (exec, _) = runtime::ctx();
        let id = runtime::register_lock(&exec, LockKind::Mutex, name);
        CheckedMutex {
            exec,
            id,
            cell: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> CheckedMutexGuard<'_, T> {
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_acquire(&self.exec, tid, self.id, Want::Mutex);
        CheckedMutexGuard { lock: self }
    }
}

impl<T> CheckedLock for CheckedMutex<T> {
    fn lock_id(&self) -> usize {
        self.id
    }
}

pub struct CheckedMutexGuard<'a, T> {
    lock: &'a CheckedMutex<T>,
}

impl<T> Deref for CheckedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live guard means this thread holds the model-level
        // mutex, so no other guard aliases the cell.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for CheckedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard is exclusive.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for CheckedMutexGuard<'_, T> {
    fn drop(&mut self) {
        let tid = runtime::ctx_in(&self.lock.exec);
        runtime::op_release(&self.lock.exec, tid, self.lock.id);
    }
}

/// RwLock whose acquire/release points yield to the scheduler.
/// No writer priority: any blocked side races for the next grant,
/// matching `std`'s lack of a fairness guarantee.
pub struct CheckedRwLock<T> {
    exec: Arc<Execution>,
    id: usize,
    cell: UnsafeCell<T>,
}

// SAFETY: reader/writer exclusion is enforced by the scheduler's
// model-level lock state; see CheckedMutex.
unsafe impl<T: Send> Send for CheckedRwLock<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for CheckedRwLock<T> {}

impl<T> CheckedRwLock<T> {
    pub fn new(value: T) -> Self {
        Self::named("", value)
    }

    pub fn named(name: &str, value: T) -> Self {
        let (exec, _) = runtime::ctx();
        let id = runtime::register_lock(&exec, LockKind::RwLock, name);
        CheckedRwLock {
            exec,
            id,
            cell: UnsafeCell::new(value),
        }
    }

    pub fn read(&self) -> CheckedRwLockReadGuard<'_, T> {
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_acquire(&self.exec, tid, self.id, Want::Read);
        CheckedRwLockReadGuard { lock: self }
    }

    pub fn write(&self) -> CheckedRwLockWriteGuard<'_, T> {
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_acquire(&self.exec, tid, self.id, Want::Write);
        CheckedRwLockWriteGuard { lock: self }
    }
}

impl<T> CheckedLock for CheckedRwLock<T> {
    fn lock_id(&self) -> usize {
        self.id
    }
}

pub struct CheckedRwLockReadGuard<'a, T> {
    lock: &'a CheckedRwLock<T>,
}

impl<T> Deref for CheckedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live read guard excludes writers at the model
        // level, so shared access to the cell is sound.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> Drop for CheckedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let tid = runtime::ctx_in(&self.lock.exec);
        runtime::op_release(&self.lock.exec, tid, self.lock.id);
    }
}

pub struct CheckedRwLockWriteGuard<'a, T> {
    lock: &'a CheckedRwLock<T>,
}

impl<T> Deref for CheckedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live write guard is exclusive at the model level.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for CheckedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the write guard is exclusive.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for CheckedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let tid = runtime::ctx_in(&self.lock.exec);
        runtime::op_release(&self.lock.exec, tid, self.lock.id);
    }
}

/// Condvar paired with [`CheckedMutex`] guards, mirroring
/// `std::sync::Condvar` semantics: release-and-block is atomic,
/// `notify_one` wakes one waiter, spurious wakeups do not occur (the
/// explorer instead enumerates every real wakeup order).
pub struct CheckedCondvar {
    exec: Arc<Execution>,
    id: usize,
}

impl CheckedCondvar {
    pub fn new() -> Self {
        Self::named("")
    }

    pub fn named(name: &str) -> Self {
        let (exec, _) = runtime::ctx();
        let id = runtime::register_cv(&exec, name);
        CheckedCondvar { exec, id }
    }

    pub fn wait<'a, T>(&self, guard: CheckedMutexGuard<'a, T>) -> CheckedMutexGuard<'a, T> {
        let lock = guard.lock;
        // The wait op releases and reacquires the mutex itself;
        // suppress the guard's normal Drop release.
        std::mem::forget(guard);
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_cv_wait(&self.exec, tid, self.id, lock.id, false);
        CheckedMutexGuard { lock }
    }

    /// Timed wait. Timeouts are lazy: the timeout fires only in states
    /// where no other thread could run first, so a timed wait never
    /// deadlocks but also never masks a real lost wakeup of an
    /// untimed waiter. Returns the reacquired guard and whether the
    /// wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: CheckedMutexGuard<'a, T>,
    ) -> (CheckedMutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        std::mem::forget(guard);
        let tid = runtime::ctx_in(&self.exec);
        let timed_out = runtime::op_cv_wait(&self.exec, tid, self.id, lock.id, true);
        (CheckedMutexGuard { lock }, timed_out)
    }

    pub fn notify_one(&self) {
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_cv_notify(&self.exec, tid, self.id, false);
    }

    pub fn notify_all(&self) {
        let tid = runtime::ctx_in(&self.exec);
        runtime::op_cv_notify(&self.exec, tid, self.id, true);
    }
}

impl Default for CheckedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

/// An I/O stand-in step: fails the execution if the calling thread
/// holds any checked lock (the semantic form of hddm-lint HL003).
pub fn io_step(label: &str) {
    io_step_allowing(label, &[]);
}

/// Like [`io_step`], but locks in `allowed` may be held — the model's
/// way of encoding a by-design, baselined lock-over-io decision (e.g.
/// the persist store's writer mutex over manifest writes).
pub fn io_step_allowing(label: &str, allowed: &[&dyn CheckedLock]) {
    let (exec, tid) = runtime::ctx();
    let ids: Vec<usize> = allowed.iter().map(|l| l.lock_id()).collect();
    runtime::op_io(&exec, tid, label, &ids);
}
