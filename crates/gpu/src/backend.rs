//! Backend selection for the batched-kernel seam: every consumer that
//! speaks `PointBlock` (driver hierarchization, change measurement,
//! warm-start projection, the serve batch-solve path) dispatches through
//! an [`ExecutionBackend`] — the CPU kernels by default, or a shared
//! [`GpuEngine`] that routes each block through the simulated device
//! with a device-resident surface pool and registry-backed telemetry.

use std::sync::Arc;

use hddm_kernels::{CompressedState, KernelKind, PointBlock, Scratch};
use hddm_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::batch::{interpolate_block, BatchTiming};
use crate::device::Device;
use crate::kernel::LaunchOptions;
use crate::pool::DevicePool;

/// Default device-pool budget: the P100's 16 GB HBM2 minus headroom for
/// launch scratch and transfer buffers.
pub const DEFAULT_POOL_BYTES: usize = 14 << 30;

/// Registry instrument names for the GPU engine (also listed by the
/// `metrics-check` validator).
pub mod metric {
    /// Simulated kernel launches (one per 64-point chunk).
    pub const LAUNCHES: &str = "hddm_gpu_launches_total";
    /// Surface uploads (pool misses).
    pub const UPLOADS: &str = "hddm_gpu_uploads_total";
    /// Pool hits (surface already resident).
    pub const POOL_HITS: &str = "hddm_gpu_pool_hits_total";
    /// Surfaces evicted from the device pool.
    pub const POOL_EVICTIONS: &str = "hddm_gpu_pool_evictions_total";
    /// Achieved occupancy of the latest launch, in percent.
    pub const OCCUPANCY: &str = "hddm_gpu_occupancy";
    /// Device bytes currently resident in the pool.
    pub const POOL_RESIDENT_BYTES: &str = "hddm_gpu_pool_resident_bytes";
    /// Modeled PCIe upload seconds per pool miss.
    pub const UPLOAD_SECONDS: &str = "hddm_gpu_upload_seconds";
    /// Modeled kernel seconds per block evaluation.
    pub const KERNEL_SECONDS: &str = "hddm_gpu_kernel_seconds";
}

struct GpuInstruments {
    launches: Arc<Counter>,
    uploads: Arc<Counter>,
    pool_hits: Arc<Counter>,
    pool_evictions: Arc<Counter>,
    occupancy: Arc<Gauge>,
    pool_resident_bytes: Arc<Gauge>,
    upload_seconds: Arc<Histogram>,
    kernel_seconds: Arc<Histogram>,
}

impl GpuInstruments {
    fn new(registry: &Registry) -> GpuInstruments {
        GpuInstruments {
            launches: registry.counter(metric::LAUNCHES),
            uploads: registry.counter(metric::UPLOADS),
            pool_hits: registry.counter(metric::POOL_HITS),
            pool_evictions: registry.counter(metric::POOL_EVICTIONS),
            occupancy: registry.gauge(metric::OCCUPANCY),
            pool_resident_bytes: registry.gauge(metric::POOL_RESIDENT_BYTES),
            upload_seconds: registry.histogram(metric::UPLOAD_SECONDS),
            kernel_seconds: registry.histogram(metric::KERNEL_SECONDS),
        }
    }
}

/// Report of one backend block evaluation on the device.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuRun {
    /// Launch-level cost/occupancy of the evaluation.
    pub timing: BatchTiming,
    /// Modeled upload seconds paid by this call (0 on a pool hit).
    pub upload_seconds: f64,
    /// Whether the surface was already device-resident.
    pub reused: bool,
}

struct EngineInner {
    device: Device,
    options: LaunchOptions,
    pool: DevicePool,
    instruments: Option<GpuInstruments>,
}

/// A shared handle to the simulated device: launch options, the
/// device-resident surface pool, and (optionally) registry-backed
/// telemetry. Cloning shares the pool — one device per fleet.
#[derive(Clone)]
pub struct GpuEngine {
    inner: Arc<EngineInner>,
}

impl GpuEngine {
    /// A P100 engine with default launch options and pool budget, no
    /// telemetry.
    pub fn new() -> GpuEngine {
        GpuEngine::configured(
            Device::p100(),
            LaunchOptions::default(),
            DEFAULT_POOL_BYTES,
            None,
        )
    }

    /// A default engine whose instruments register in `registry`.
    pub fn with_registry(registry: &Registry) -> GpuEngine {
        GpuEngine::configured(
            Device::p100(),
            LaunchOptions::default(),
            DEFAULT_POOL_BYTES,
            Some(registry),
        )
    }

    /// Full-control constructor.
    pub fn configured(
        device: Device,
        options: LaunchOptions,
        pool_capacity_bytes: usize,
        registry: Option<&Registry>,
    ) -> GpuEngine {
        GpuEngine {
            inner: Arc::new(EngineInner {
                device,
                options,
                pool: DevicePool::new(pool_capacity_bytes),
                instruments: registry.map(GpuInstruments::new),
            }),
        }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The device-resident surface pool.
    pub fn pool(&self) -> &DevicePool {
        &self.inner.pool
    }

    /// Evaluates `state` at `block` on the device: ensures the surface
    /// is resident (upload-once/reuse through the pool), runs one
    /// simulated launch per 64-point chunk, and records telemetry.
    /// Results are bitwise equal to the scalar CPU batch kernel.
    pub fn evaluate_batch(
        &self,
        state: &CompressedState,
        block: &PointBlock,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) -> Result<GpuRun, crate::GpuError> {
        let inner = &*self.inner;
        let residency = inner
            .pool
            .ensure_resident(state, inner.device.pcie_bandwidth);
        let timing = interpolate_block(&inner.device, &inner.options, state, block, scratch, out)?;
        if let Some(ins) = &inner.instruments {
            if residency.reused {
                ins.pool_hits.inc();
            } else {
                ins.uploads.inc();
                ins.upload_seconds.record(residency.upload_seconds);
            }
            if residency.evicted > 0 {
                ins.pool_evictions.add(residency.evicted as u64);
            }
            ins.pool_resident_bytes
                .set(inner.pool.resident_bytes() as u64);
            if timing.launches > 0 {
                ins.launches.add(timing.launches as u64);
                ins.occupancy.set((timing.occupancy * 100.0).round() as u64);
                ins.kernel_seconds.record(timing.modeled_seconds);
            }
        }
        Ok(GpuRun {
            timing,
            upload_seconds: residency.upload_seconds,
            reused: residency.reused,
        })
    }
}

impl Default for GpuEngine {
    fn default() -> Self {
        GpuEngine::new()
    }
}

impl std::fmt::Debug for GpuEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuEngine")
            .field("device", &self.inner.device.name)
            .field("resident_surfaces", &self.inner.pool.resident_surfaces())
            .field("resident_bytes", &self.inner.pool.resident_bytes())
            .finish()
    }
}

/// Which engine evaluates `PointBlock` batches. Carried by
/// `DriverConfig`/`ExecutorConfig`; `Cpu` preserves the pre-backend
/// behaviour exactly.
#[derive(Clone, Debug, Default)]
pub enum ExecutionBackend {
    /// The host kernels, dispatched by `KernelKind` (the default).
    #[default]
    Cpu,
    /// The simulated device through a shared [`GpuEngine`].
    Gpu(GpuEngine),
}

impl ExecutionBackend {
    /// A GPU backend with a fresh default engine.
    pub fn gpu() -> ExecutionBackend {
        ExecutionBackend::Gpu(GpuEngine::new())
    }

    /// Whether this is the GPU backend.
    pub fn is_gpu(&self) -> bool {
        matches!(self, ExecutionBackend::Gpu(_))
    }

    /// Short name for logs and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionBackend::Cpu => "cpu",
            ExecutionBackend::Gpu(_) => "gpu",
        }
    }

    /// Evaluates a compressed interpolant at a whole block. `Cpu`
    /// dispatches through `kernel` (crossover routing included); `Gpu`
    /// runs the device engine, whose results are bitwise equal to the
    /// scalar CPU batch path. If the device rejects the launch (e.g.
    /// base tiles exceed shared memory), the block falls back to the
    /// scalar CPU batch kernel — identical values, host-side cost.
    pub fn evaluate_batch(
        &self,
        kernel: KernelKind,
        state: &CompressedState,
        block: &PointBlock,
        scratch: &mut Scratch,
        out: &mut [f64],
    ) {
        match self {
            ExecutionBackend::Cpu => kernel.evaluate_compressed_batch(state, block, scratch, out),
            ExecutionBackend::Gpu(engine) => {
                if engine.evaluate_batch(state, block, scratch, out).is_err() {
                    hddm_kernels::batch::interpolate_batch(state, block, scratch, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn make_state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x.iter().sum::<f64>() * (k + 1) as f64 + (k as f64).cos();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    #[test]
    fn backend_dispatch_matches_scalar_batch() {
        let state = make_state(3, 3, 5);
        let rows: Vec<f64> = (0..9 * 3)
            .map(|k| (k as f64 * 0.173 + 0.01) % 1.0)
            .collect();
        let block = PointBlock::from_rows(3, &rows);
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; 9 * 5];
        hddm_kernels::batch::interpolate_batch(&state, &block, &mut scratch, &mut want);
        let mut got = vec![0.0; 9 * 5];
        ExecutionBackend::gpu().evaluate_batch(
            KernelKind::X86,
            &state,
            &block,
            &mut scratch,
            &mut got,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn engine_records_registry_telemetry() {
        let registry = Registry::new();
        let engine = GpuEngine::with_registry(&registry);
        let state = make_state(3, 3, 4);
        let rows: Vec<f64> = (0..70 * 3)
            .map(|k| (k as f64 * 0.091 + 0.02) % 1.0)
            .collect();
        let block = PointBlock::from_rows(3, &rows);
        let mut scratch = Scratch::default();
        let mut out = vec![0.0; 70 * 4];
        let first = engine
            .evaluate_batch(&state, &block, &mut scratch, &mut out)
            .unwrap();
        assert!(!first.reused);
        let second = engine
            .evaluate_batch(&state, &block, &mut scratch, &mut out)
            .unwrap();
        assert!(second.reused);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(metric::UPLOADS), Some(1));
        assert_eq!(snap.counter(metric::POOL_HITS), Some(1));
        // 70 points ⇒ 2 chunks per call ⇒ 4 launches over both calls.
        assert_eq!(snap.counter(metric::LAUNCHES), Some(4));
        assert!(snap.gauge(metric::OCCUPANCY).unwrap() > 0);
        assert!(snap.gauge(metric::POOL_RESIDENT_BYTES).unwrap() > 0);
        assert!(snap.histogram(metric::UPLOAD_SECONDS).is_some());
        assert!(snap.histogram(metric::KERNEL_SECONDS).is_some());
    }
}
