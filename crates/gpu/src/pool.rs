//! Device-resident surface pool: a served scenario's `CompressedState`
//! is uploaded to the (simulated) device once and re-used across
//! requests instead of being re-staged per call. Residency is LRU by
//! device bytes; evictions are counted so the serving telemetry can
//! watch the working set churn.
//!
//! The pool is *accounting*, not storage: the simulation always reads
//! host memory for the arithmetic (results cannot depend on residency),
//! so an entry records only identity, size and recency. Identity is the
//! surplus buffer's address + shape — if a state is dropped and another
//! allocates the same buffer, the pool may report a stale hit, which
//! costs a skipped modeled upload and nothing else (results are
//! unaffected by construction).

use std::sync::Mutex;

use hddm_kernels::CompressedState;

/// Identity of a device-resident surface. Pointer-based: cheap, stable
/// for the lifetime of the state, and collision-safe enough for cost
/// accounting (see the module docs for the ABA caveat).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SurfaceId {
    addr: usize,
    len: usize,
    nno: usize,
    ndofs: usize,
}

impl SurfaceId {
    /// The identity of `state`'s device allocation.
    pub fn of(state: &CompressedState) -> SurfaceId {
        SurfaceId {
            addr: state.surplus.as_ptr() as usize,
            len: state.surplus.len(),
            nno: state.grid.nno(),
            ndofs: state.ndofs,
        }
    }
}

/// Device bytes a resident surface occupies: the surplus matrix, the
/// chain index matrix and the xps table.
pub fn device_bytes(state: &CompressedState) -> usize {
    std::mem::size_of_val(&state.surplus[..])
        + std::mem::size_of_val(state.grid.chains())
        + state.grid.xps().len() * 8
}

/// Outcome of one residency request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Residency {
    /// The surface was already resident (no upload).
    pub reused: bool,
    /// Device bytes of this surface.
    pub bytes: usize,
    /// Surfaces evicted to make room.
    pub evicted: usize,
    /// Modeled PCIe upload time (0 when reused).
    pub upload_seconds: f64,
}

struct PoolEntry {
    id: SurfaceId,
    bytes: usize,
    last_used: u64,
}

struct PoolInner {
    entries: Vec<PoolEntry>,
    resident_bytes: usize,
    clock: u64,
    evictions: u64,
}

/// LRU pool of device-resident surfaces, bounded by device bytes.
pub struct DevicePool {
    capacity_bytes: usize,
    inner: Mutex<PoolInner>,
}

impl DevicePool {
    /// An empty pool with the given device-byte budget.
    pub fn new(capacity_bytes: usize) -> DevicePool {
        DevicePool {
            capacity_bytes,
            inner: Mutex::new(PoolInner {
                entries: Vec::new(),
                resident_bytes: 0,
                clock: 0,
                evictions: 0,
            }),
        }
    }

    /// The pool's device-byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Ensures `state` is resident, evicting least-recently-used
    /// surfaces as needed. A surface larger than the whole budget still
    /// becomes resident (evicting everything else): the device must
    /// hold the surface it is asked to evaluate, so the budget floors
    /// at one surface. `pcie_bandwidth` prices the modeled upload.
    pub fn ensure_resident(&self, state: &CompressedState, pcie_bandwidth: f64) -> Residency {
        let id = SurfaceId::of(state);
        let bytes = device_bytes(state);
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.id == id) {
            e.last_used = now;
            return Residency {
                reused: true,
                bytes,
                evicted: 0,
                upload_seconds: 0.0,
            };
        }
        let mut evicted = 0usize;
        while inner.resident_bytes + bytes > self.capacity_bytes {
            // `min_by_key` is None exactly when the pool is empty, which
            // ends eviction (the oversized-surface floor) without a
            // panic path under the live guard.
            let Some(lru) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let gone = inner.entries.swap_remove(lru);
            inner.resident_bytes -= gone.bytes;
            evicted += 1;
        }
        inner.evictions += evicted as u64;
        inner.resident_bytes += bytes;
        inner.entries.push(PoolEntry {
            id,
            bytes,
            last_used: now,
        });
        Residency {
            reused: false,
            bytes,
            evicted,
            upload_seconds: bytes as f64 / pcie_bandwidth,
        }
    }

    /// Device bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().resident_bytes
    }

    /// Number of surfaces currently resident.
    pub fn resident_surfaces(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Total surfaces evicted over the pool's lifetime.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn make_state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x.iter().sum::<f64>() * (k + 1) as f64;
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    #[test]
    fn upload_once_then_reuse() {
        let s = make_state(3, 3, 4);
        let pool = DevicePool::new(1 << 30);
        let first = pool.ensure_resident(&s, 11e9);
        assert!(!first.reused);
        assert!(first.upload_seconds > 0.0);
        for _ in 0..3 {
            let again = pool.ensure_resident(&s, 11e9);
            assert!(again.reused);
            assert_eq!(again.upload_seconds, 0.0);
            assert_eq!(again.evicted, 0);
        }
        assert_eq!(pool.resident_surfaces(), 1);
        assert_eq!(pool.resident_bytes(), first.bytes);
        assert_eq!(pool.evictions(), 0);
    }

    #[test]
    fn lru_eviction_by_device_bytes() {
        let a = make_state(3, 3, 4);
        let b = make_state(3, 3, 5);
        let c = make_state(3, 3, 6);
        let bytes_a = device_bytes(&a);
        let bytes_b = device_bytes(&b);
        // Room for exactly two of the three surfaces.
        let pool = DevicePool::new(bytes_a + bytes_b + device_bytes(&c) / 2);
        assert!(!pool.ensure_resident(&a, 11e9).reused);
        assert!(!pool.ensure_resident(&b, 11e9).reused);
        // Touch `a` so `b` is the LRU victim.
        assert!(pool.ensure_resident(&a, 11e9).reused);
        let r = pool.ensure_resident(&c, 11e9);
        assert!(!r.reused);
        assert_eq!(r.evicted, 1);
        assert_eq!(pool.evictions(), 1);
        // `a` survived, `b` must re-upload.
        assert!(pool.ensure_resident(&a, 11e9).reused);
        assert!(!pool.ensure_resident(&b, 11e9).reused);
    }

    #[test]
    fn oversized_surface_floors_at_one_resident() {
        let s = make_state(3, 4, 8);
        let pool = DevicePool::new(16); // far smaller than any surface
        let r = pool.ensure_resident(&s, 11e9);
        assert!(!r.reused);
        assert_eq!(pool.resident_surfaces(), 1);
        assert!(pool.resident_bytes() > pool.capacity_bytes());
        // Still reusable while resident.
        assert!(pool.ensure_resident(&s, 11e9).reused);
    }
}
