//! The `cuda` interpolation kernel (Sec. V-A), ported to the software
//! device: "The scheduler uses a block size of 128, which is the closest
//! to the ndofs per point. The nno is distributed across the maximum
//! number of concurrent blocks … the whole kernel workload efficiently
//! goes through in a single wave of blocks. The xpv array is mapped onto
//! the shared memory."
//!
//! Execution is bit-faithful to the compressed CPU kernels (the offload
//! must not change results); timing comes from the device model
//! (compute/memory roofline + transfers + launch latency).

use hddm_asg::linear_basis;
use hddm_kernels::CompressedState;

use crate::device::{Device, GpuError};

/// Tunable launch choices — the knobs the ablation benches sweep.
#[derive(Clone, Copy, Debug)]
pub struct LaunchOptions {
    /// Threads per block. The paper picks 128, "closest to the ndofs per
    /// point" (118); other sizes waste thread lanes or occupancy.
    pub block_size: usize,
    /// Stage `xpv` in per-block shared memory (the paper's design). When
    /// `false` the array stays in device DRAM and every chain lookup pays
    /// a global-memory transaction — the configuration the compression
    /// scheme was designed to avoid.
    pub stage_xpv_shared: bool,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            block_size: 128,
            stage_xpv_shared: true,
        }
    }
}

/// Launch geometry, derived from the device, the options and the grid.
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Threads per block (128, "closest to the ndofs per point").
    pub block_size: usize,
    /// Number of blocks (≤ one wave).
    pub grid_size: usize,
    /// Grid points per block.
    pub points_per_block: usize,
}

/// Cost/occupancy report of one launch.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTiming {
    /// Modeled wall seconds (launch + transfers + roofline kernel time).
    pub modeled_seconds: f64,
    /// Blocks launched.
    pub blocks: usize,
    /// Full occupancy waves needed (1 = the paper's target).
    pub waves: usize,
    /// Bytes moved through device memory.
    pub dram_bytes: f64,
    /// Floating-point operations executed.
    pub flops: f64,
}

/// The compressed-format interpolant resident on the (simulated) device.
pub struct CudaInterpolator<'a> {
    device: Device,
    state: &'a CompressedState,
    launch: LaunchConfig,
    options: LaunchOptions,
}

impl<'a> CudaInterpolator<'a> {
    /// Stages a compressed state onto the device with the paper's launch
    /// choices (128-thread blocks, `xpv` in shared memory).
    pub fn new(device: Device, state: &'a CompressedState) -> Result<Self, GpuError> {
        Self::with_options(device, state, LaunchOptions::default())
    }

    /// Stages a compressed state onto the device, validating the
    /// shared-memory mapping of `xpv` (when requested) and the block
    /// geometry.
    pub fn with_options(
        device: Device,
        state: &'a CompressedState,
        options: LaunchOptions,
    ) -> Result<Self, GpuError> {
        let block_size = options.block_size;
        if block_size == 0 || block_size > device.max_threads_per_block {
            return Err(GpuError::BlockTooLarge {
                requested: block_size,
                maximum: device.max_threads_per_block,
            });
        }
        if options.stage_xpv_shared {
            let xpv_bytes = state.grid.xps().len() * std::mem::size_of::<f64>();
            if xpv_bytes > device.shared_mem_per_block {
                return Err(GpuError::SharedMemoryExceeded {
                    needed: xpv_bytes,
                    available: device.shared_mem_per_block,
                });
            }
        }
        // Single-wave distribution: as many blocks as fit concurrently,
        // each owning a contiguous slice of points.
        let max_blocks = device.max_concurrent_blocks_for(block_size);
        let nno = state.grid.nno().max(1);
        let grid_size = max_blocks.min(nno);
        let points_per_block = nno.div_ceil(grid_size);
        Ok(CudaInterpolator {
            device,
            state,
            launch: LaunchConfig {
                block_size,
                grid_size,
                points_per_block,
            },
            options,
        })
    }

    /// The launch geometry in use.
    pub fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// Evaluates the interpolant at `x`, writing `out` (length `ndofs`)
    /// and returning the modeled timing. Results are identical to the CPU
    /// kernels — the simulation executes the same arithmetic the device
    /// would.
    pub fn interpolate(&self, x: &[f64], out: &mut [f64]) -> KernelTiming {
        let state = self.state;
        let cg = &state.grid;
        let ndofs = state.ndofs;
        assert_eq!(x.len(), cg.dim());
        assert_eq!(out.len(), ndofs);

        // --- Stage xpv into "shared memory" (one copy per block on real
        // hardware; values are identical, so the simulation keeps one).
        let xps = cg.xps();
        let mut xpv = vec![0.0f64; xps.len()];
        for (v, entry) in xpv.iter_mut().zip(xps) {
            *v = linear_basis(x[entry.index as usize], entry.l, entry.i).max(0.0);
        }

        // --- Block execution: each block accumulates a private partial
        // over its point slice; thread t owns dof t (block size 128 covers
        // ndofs = 118). Partials are then reduced — the simulation sums
        // sequentially, matching the device's deterministic tree order.
        let nno = cg.nno();
        let nfreq = cg.nfreq();
        let chains = cg.chains();
        out.fill(0.0);
        let mut active_points = 0usize;
        let mut chain_reads = 0usize;
        for block in 0..self.launch.grid_size {
            let lo = block * self.launch.points_per_block;
            let hi = ((block + 1) * self.launch.points_per_block).min(nno);
            if lo >= hi {
                continue;
            }
            let mut partial = vec![0.0f64; ndofs];
            let mut touched = false;
            for p in lo..hi {
                let mut temp = 1.0;
                for &idx in &chains[p * nfreq..(p + 1) * nfreq] {
                    if idx == 0 {
                        break;
                    }
                    chain_reads += 1;
                    temp *= xpv[idx as usize];
                    if temp == 0.0 {
                        break;
                    }
                }
                if temp == 0.0 {
                    continue;
                }
                active_points += 1;
                touched = true;
                let row = &state.surplus[p * ndofs..(p + 1) * ndofs];
                for (acc, s) in partial.iter_mut().zip(row) {
                    *acc += temp * s;
                }
            }
            if touched {
                for (o, p) in out.iter_mut().zip(&partial) {
                    *o += p;
                }
            }
        }

        // --- Roofline cost model.
        let d = self.device();
        let bs = self.launch.block_size;
        // DRAM traffic: chains for all points + surplus rows of points with
        // non-zero weight (dead points short-circuit before the row load).
        let mut dram_bytes = (nno * nfreq * 4 + active_points * ndofs * 8) as f64;
        if !self.options.stage_xpv_shared {
            // Unstaged xpv: the fill writes to DRAM and every chain lookup
            // is a scattered global read (uncoalesced — a full 32-byte
            // transaction per 8-byte access).
            dram_bytes += (xps.len() * 8 + chain_reads * 32) as f64;
        }
        // FLOPs: xpv fill (3 ops each) + chain products + FMA accumulation.
        // The dof loop issues ceil(ndofs / block) rounds of `block` lanes —
        // lanes past ndofs idle but still occupy issue slots, so a block
        // size far from ndofs wastes throughput (the paper's reason for
        // picking 128 for ndofs = 118).
        let dof_issue_slots = ndofs.div_ceil(bs) * bs;
        let flops = (xps.len() * 3 + nno * nfreq + active_points * dof_issue_slots * 2) as f64;
        let kernel_time = (flops / d.fp64_flops).max(dram_bytes / d.mem_bandwidth);
        let transfer_bytes = ((x.len() + ndofs) * 8) as f64;
        let transfer = transfer_bytes / d.pcie_bandwidth;
        let waves = self
            .launch
            .grid_size
            .div_ceil(d.max_concurrent_blocks_for(bs))
            .max(1);
        KernelTiming {
            modeled_seconds: d.launch_latency + transfer + kernel_time * waves as f64,
            blocks: self.launch.grid_size,
            waves,
            dram_bytes,
            flops,
        }
    }

    /// Batched evaluation: `xs` is row-major `n × d`, `outs` row-major
    /// `n × ndofs`. One launch covers the whole batch (this is the shape
    /// the hybrid scheduler's dispatch thread uses).
    pub fn interpolate_batch(&self, xs: &[f64], outs: &mut [f64]) -> KernelTiming {
        let dim = self.state.grid.dim();
        let ndofs = self.state.ndofs;
        assert_eq!(xs.len() % dim, 0);
        let n = xs.len() / dim;
        assert_eq!(outs.len(), n * ndofs);
        let mut total = KernelTiming::default();
        for (x, out) in xs.chunks_exact(dim).zip(outs.chunks_exact_mut(ndofs)) {
            let t = self.interpolate(x, out);
            total.modeled_seconds += t.modeled_seconds - self.device.launch_latency;
            total.dram_bytes += t.dram_bytes;
            total.flops += t.flops;
            total.blocks = t.blocks;
            total.waves = t.waves;
        }
        // One launch amortizes the latency over the batch.
        total.modeled_seconds += self.device.launch_latency;
        total
    }

    /// The device this interpolant is staged on.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};
    use hddm_kernels::{KernelKind, Scratch};

    fn state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x.iter().sum::<f64>() * (k + 1) as f64 + (k as f64).cos();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    #[test]
    fn cuda_matches_cpu_kernels() {
        let s = state(4, 4, 118);
        let gpu = CudaInterpolator::new(Device::p100(), &s).unwrap();
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; 118];
        let mut got = vec![0.0; 118];
        for k in 0..20 {
            let x: Vec<f64> = (0..4)
                .map(|t| ((k * 13 + t * 7) as f64 * 0.043 + 0.01) % 1.0)
                .collect();
            KernelKind::X86.evaluate_compressed(&s, &x, &mut scratch, &mut want);
            gpu.interpolate(&x, &mut got);
            for dof in 0..118 {
                assert!(
                    (got[dof] - want[dof]).abs() < 1e-11,
                    "dof {dof}: {} vs {}",
                    got[dof],
                    want[dof]
                );
            }
        }
    }

    #[test]
    fn single_wave_occupancy() {
        // The paper's launch strategy: the whole workload in one wave.
        let s = state(3, 5, 8);
        let gpu = CudaInterpolator::new(Device::p100(), &s).unwrap();
        let mut out = vec![0.0; 8];
        let timing = gpu.interpolate(&[0.3, 0.6, 0.9], &mut out);
        assert_eq!(timing.waves, 1);
        assert!(timing.blocks <= Device::p100().max_concurrent_blocks());
    }

    #[test]
    fn shared_memory_check_rejects_small_devices() {
        let s = state(4, 4, 4);
        let mut tiny = Device::p100();
        tiny.shared_mem_per_block = 64; // 8 doubles — xps will not fit
        match CudaInterpolator::new(tiny, &s) {
            Err(GpuError::SharedMemoryExceeded { needed, available }) => {
                assert!(needed > available);
            }
            Err(other) => panic!("expected shared-memory error, got {other:?}"),
            Ok(_) => panic!("expected shared-memory error, got Ok"),
        }
    }

    #[test]
    fn paper_grids_fit_shared_memory() {
        // Sec. IV-B: xps of the 300k grid (473 entries) easily fits 48 KB.
        let s = state(8, 3, 4); // structurally similar, small dims for speed
        assert!(CudaInterpolator::new(Device::p100(), &s).is_ok());
    }

    #[test]
    fn batch_matches_singles_and_amortizes_launch() {
        let s = state(3, 3, 5);
        let gpu = CudaInterpolator::new(Device::p100(), &s).unwrap();
        let points = 10usize;
        let xs: Vec<f64> = (0..points * 3).map(|k| (k as f64 * 0.37) % 1.0).collect();
        let mut batch_out = vec![0.0; points * 5];
        let batch_timing = gpu.interpolate_batch(&xs, &mut batch_out);

        let mut single_total = 0.0;
        for (i, x) in xs.chunks_exact(3).enumerate() {
            let mut out = vec![0.0; 5];
            single_total += gpu.interpolate(x, &mut out).modeled_seconds;
            for dof in 0..5 {
                assert!((batch_out[i * 5 + dof] - out[dof]).abs() < 1e-12);
            }
        }
        assert!(batch_timing.modeled_seconds < single_total);
    }

    #[test]
    fn launch_options_do_not_change_results() {
        let s = state(4, 4, 118);
        let reference = CudaInterpolator::new(Device::p100(), &s).unwrap();
        let variants = [
            LaunchOptions {
                block_size: 32,
                stage_xpv_shared: true,
            },
            LaunchOptions {
                block_size: 512,
                stage_xpv_shared: true,
            },
            LaunchOptions {
                block_size: 128,
                stage_xpv_shared: false,
            },
        ];
        let x = [0.31, 0.84, 0.12, 0.57];
        let mut want = vec![0.0; 118];
        reference.interpolate(&x, &mut want);
        for opts in variants {
            let gpu = CudaInterpolator::with_options(Device::p100(), &s, opts).unwrap();
            let mut got = vec![0.0; 118];
            gpu.interpolate(&x, &mut got);
            for dof in 0..118 {
                // Different block partitions regroup the partial sums, so
                // agreement is to rounding, not bitwise.
                assert!(
                    (got[dof] - want[dof]).abs() < 1e-12,
                    "{opts:?} dof {dof}: {} vs {}",
                    got[dof],
                    want[dof]
                );
            }
        }
    }

    #[test]
    fn global_memory_xpv_is_modeled_slower() {
        let s = state(4, 4, 118);
        let shared = CudaInterpolator::new(Device::p100(), &s).unwrap();
        let global = CudaInterpolator::with_options(
            Device::p100(),
            &s,
            LaunchOptions {
                block_size: 128,
                stage_xpv_shared: false,
            },
        )
        .unwrap();
        let x = [0.31, 0.84, 0.12, 0.57];
        let mut out = vec![0.0; 118];
        let t_shared = shared.interpolate(&x, &mut out);
        let t_global = global.interpolate(&x, &mut out);
        assert!(t_global.dram_bytes > t_shared.dram_bytes);
        assert!(t_global.modeled_seconds >= t_shared.modeled_seconds);
    }

    #[test]
    fn block_size_geometry_shows_in_cost_model() {
        // ndofs = 118 with 512-thread blocks wastes 394 of 512 dof lanes
        // per issue round and cuts occupancy to one block per SM. The
        // kernel is memory-bound, so the wasted issue slots show up in the
        // FLOP count (and never *improve* the modeled time) — mirroring
        // the paper's observation that compute-side tweaks have "minimal
        // effect due to the memory-bound nature" of the problem.
        let s = state(4, 4, 118);
        let x = [0.31, 0.84, 0.12, 0.57];
        let mut out = vec![0.0; 118];
        let mut timing_for = |bs: usize| {
            let gpu = CudaInterpolator::with_options(
                Device::p100(),
                &s,
                LaunchOptions {
                    block_size: bs,
                    stage_xpv_shared: true,
                },
            )
            .unwrap();
            gpu.interpolate(&x, &mut out)
        };
        let t128 = timing_for(128);
        let t512 = timing_for(512);
        let t1024 = timing_for(1024);
        assert!(t512.flops > t128.flops);
        assert!(t1024.flops > t512.flops);
        assert!(t512.modeled_seconds >= t128.modeled_seconds);
        assert!(t1024.modeled_seconds >= t128.modeled_seconds);
        // Bigger blocks mean fewer resident blocks per wave.
        assert!(t512.blocks < t128.blocks);
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let s = state(2, 2, 4);
        let r = CudaInterpolator::with_options(
            Device::p100(),
            &s,
            LaunchOptions {
                block_size: 0,
                stage_xpv_shared: true,
            },
        );
        assert!(matches!(r, Err(GpuError::BlockTooLarge { .. })));
    }

    #[test]
    fn bigger_grids_cost_more() {
        let small = state(3, 3, 8);
        let large = state(3, 5, 8);
        let gpu_small = CudaInterpolator::new(Device::p100(), &small).unwrap();
        let gpu_large = CudaInterpolator::new(Device::p100(), &large).unwrap();
        let mut out = vec![0.0; 8];
        let t_small = gpu_small.interpolate(&[0.4, 0.2, 0.8], &mut out);
        let t_large = gpu_large.interpolate(&[0.4, 0.2, 0.8], &mut out);
        assert!(t_large.dram_bytes > t_small.dram_bytes);
    }
}
