//! # hddm-gpu — software GPU and the `cuda` interpolation kernel
//!
//! The accelerator leg of the hybrid scheme (Sec. IV-A / V-A),
//! substituting for the NVIDIA P100 + CUDA stack of "Piz Daint" (see
//! DESIGN.md): a device model with SMs, per-block shared memory, occupancy
//! waves and transfer links ([`device`]), and the compressed-format
//! interpolation kernel mapped onto it ([`kernel`]), with `xpv` staged in
//! shared memory exactly as the paper describes.
//!
//! Results are bit-identical to the CPU kernels (tested); performance is
//! costed by a roofline model, since this host has no GPU.

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod device;
pub mod kernel;
pub mod pool;

pub use backend::{ExecutionBackend, GpuEngine, GpuRun, DEFAULT_POOL_BYTES};
pub use batch::{interpolate_block, BatchTiming};
pub use device::{Device, GpuError};
pub use kernel::{CudaInterpolator, KernelTiming, LaunchConfig, LaunchOptions};
pub use pool::{device_bytes, DevicePool, Residency, SurfaceId};
