//! The software GPU device model: enough of the CUDA execution model
//! (SMs, blocks, shared memory, occupancy waves, transfer links) to run
//! the paper's offloaded interpolation kernel faithfully and to cost it.

/// Static device parameters.
#[derive(Clone, Debug)]
pub struct Device {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Shared memory per block in bytes (48 KB on the P100 — the budget
    /// the `xpv` array must fit, Sec. IV-B).
    pub shared_mem_per_block: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Concurrent blocks per SM at this kernel's register/shared usage
    /// with the default 128-thread blocks.
    pub blocks_per_sm: usize,
    /// Hardware thread-residency limit per SM.
    pub max_threads_per_sm: usize,
    /// Threads per SM sustainable at this kernel's register usage ("for a
    /// given SM and register count", Sec. V-A). Divided by the block size
    /// this yields the occupancy for non-default launch geometries.
    pub reg_limited_threads_per_sm: usize,
    /// Peak FP64 throughput (FLOP/s).
    pub fp64_flops: f64,
    /// Device memory bandwidth (bytes/s).
    pub mem_bandwidth: f64,
    /// Host↔device link bandwidth (bytes/s).
    pub pcie_bandwidth: f64,
    /// Per-call launch + synchronization + driver latency (seconds).
    ///
    /// Calibrated against the paper's Table II: its measured "7k" cuda
    /// time of 122 µs on a P100 (whose kernel work is ≈10 µs at roofline)
    /// implies ≈100 µs of fixed per-call overhead in their setup, which
    /// also reconciles the 300k time (275 µs).
    pub launch_latency: f64,
}

impl Device {
    /// The NVIDIA Tesla P100 of "Piz Daint" (Cray XC50).
    pub fn p100() -> Device {
        Device {
            name: "NVIDIA Tesla P100".into(),
            sm_count: 56,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            blocks_per_sm: 4,
            max_threads_per_sm: 2048,
            reg_limited_threads_per_sm: 512,
            fp64_flops: 4.7e12,
            mem_bandwidth: 732e9,
            pcie_bandwidth: 11e9,
            launch_latency: 1.0e-4,
        }
    }

    /// Maximum number of blocks resident in one wave (default 128-thread
    /// geometry).
    #[inline]
    pub fn max_concurrent_blocks(&self) -> usize {
        self.sm_count * self.blocks_per_sm
    }

    /// Maximum resident blocks per wave for an arbitrary block size,
    /// limited by register pressure and the hardware thread/block caps.
    #[inline]
    pub fn max_concurrent_blocks_for(&self, block_size: usize) -> usize {
        let per_sm = (self.reg_limited_threads_per_sm / block_size.max(1))
            .min(self.max_threads_per_sm / block_size.max(1))
            // hardware blocks-per-SM ceiling, floor of one block
            .clamp(1, 32);
        self.sm_count * per_sm
    }
}

/// Errors raised when a kernel cannot be mapped onto the device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// The shared-memory working set (`xpv`) exceeds the per-block budget.
    SharedMemoryExceeded {
        /// Bytes the kernel needs.
        needed: usize,
        /// Bytes the device offers per block.
        available: usize,
    },
    /// Requested block size exceeds the device limit.
    BlockTooLarge {
        /// Requested threads per block.
        requested: usize,
        /// Device maximum.
        maximum: usize,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::SharedMemoryExceeded { needed, available } => write!(
                f,
                "shared memory exceeded: kernel needs {needed} B, block budget is {available} B"
            ),
            GpuError::BlockTooLarge { requested, maximum } => {
                write!(f, "block size {requested} exceeds device maximum {maximum}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_parameters() {
        let device = Device::p100();
        assert_eq!(device.shared_mem_per_block, 49_152);
        assert_eq!(device.max_concurrent_blocks(), 224);
        assert!(device.fp64_flops > 4e12);
    }

    #[test]
    fn error_messages() {
        let err = GpuError::SharedMemoryExceeded {
            needed: 50_000,
            available: 49_152,
        };
        assert!(err.to_string().contains("shared memory"));
    }
}
