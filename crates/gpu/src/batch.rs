//! The batched `cuda` kernel: one simulated launch per 64-point
//! [`PointBlock`] chunk, mapped onto the device model the way Sec. V-A
//! maps the single-point kernel — and restructured exactly like the CPU
//! batch engine (`hddm_kernels::batch`), so the device walks each
//! compressed chain **once per chunk** instead of once per point:
//!
//! * the chunk's SoA coordinate tile (`dim × 64` doubles) is staged in
//!   per-block shared memory; the `xpv` basis tile (`nxps × 64`) joins it
//!   when the budget allows, otherwise basis columns spill to DRAM;
//! * each xps entry's nonzero-lane mask is a **warp-level ballot** (two
//!   32-lane ballots per 64-point chunk): the AND of a chain's factor
//!   ballots prunes whole-chunk-dead chains before any floating-point
//!   work — the batched analogue of the single-point early exit;
//! * surviving chains compute their 64-wide products and reduce each
//!   surplus row into the alive lanes' output rows per warp (the
//!   `RowAccum` shape of the CPU engine).
//!
//! Execution is **bitwise identical** to the scalar CPU batch kernel
//! (`hddm_kernels::batch::interpolate_batch`): same basis expression,
//! same chain-walk order, same accumulation order per point. Timing
//! comes from the device model (roofline + PCIe transfers + one launch
//! latency per chunk).

use hddm_asg::linear_basis;
use hddm_kernels::{CompressedState, PointBlock, Scratch, BATCH_CHUNK};

use crate::device::{Device, GpuError};
use crate::kernel::LaunchOptions;

/// Cost/occupancy report of a batched block evaluation (all launches).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTiming {
    /// Modeled wall seconds: per-chunk launch latency + point/result
    /// PCIe transfers + roofline kernel time. Surface upload is *not*
    /// included — that is the device pool's one-time cost.
    pub modeled_seconds: f64,
    /// Simulated kernel launches (one per [`BATCH_CHUNK`]-point chunk).
    pub launches: usize,
    /// Blocks per launch (chains distributed across ≤ one wave).
    pub blocks: usize,
    /// Occupancy waves per launch (1 = the paper's target).
    pub waves: usize,
    /// Achieved occupancy: resident threads over the device's
    /// thread-residency limit, in `[0, 1]`.
    pub occupancy: f64,
    /// Bytes moved through device memory.
    pub dram_bytes: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Whether the `xpv` basis tile fit the shared-memory budget
    /// alongside the coordinate tile (else it spilled to DRAM).
    pub xpv_staged: bool,
}

/// Per-launch shared-memory plan for a chunk of `chunk` points.
struct SharedPlan {
    /// `xpv` tile resident in shared memory (vs spilled to DRAM).
    xpv_staged: bool,
}

/// Derives the shared-memory mapping of one chunk launch: the
/// coordinate tile, ballot table and product tile must fit (else the
/// kernel cannot launch at all); the `nxps × chunk` basis tile is
/// staged only when it also fits — on the paper's grids (473 xps ⇒
/// ~242 KB per 64-point tile vs a 48 KB budget) it usually does not,
/// and the walk re-reads basis columns from DRAM instead.
fn plan_shared(
    device: &Device,
    options: &LaunchOptions,
    dim: usize,
    nxps: usize,
    chunk: usize,
) -> Result<SharedPlan, GpuError> {
    let f64s = std::mem::size_of::<f64>();
    // Coordinate tile + per-entry ballot words + product tile.
    let base = dim * chunk * f64s + nxps * 8 + chunk * f64s;
    if base > device.shared_mem_per_block {
        return Err(GpuError::SharedMemoryExceeded {
            needed: base,
            available: device.shared_mem_per_block,
        });
    }
    let xpv_bytes = nxps * chunk * f64s;
    Ok(SharedPlan {
        xpv_staged: options.stage_xpv_shared && base + xpv_bytes <= device.shared_mem_per_block,
    })
}

/// Evaluates a compressed interpolant at a whole [`PointBlock`] on the
/// simulated device: one kernel launch per [`BATCH_CHUNK`]-point chunk,
/// chains distributed across ≤ one wave of blocks per launch. `out` is
/// point-major `npts × ndofs`. Results are bitwise equal to the scalar
/// CPU batch kernel ([`hddm_kernels::batch::interpolate_batch`]); the
/// returned [`BatchTiming`] aggregates the modeled cost of every launch.
pub fn interpolate_block(
    device: &Device,
    options: &LaunchOptions,
    state: &CompressedState,
    block: &PointBlock,
    scratch: &mut Scratch,
    out: &mut [f64],
) -> Result<BatchTiming, GpuError> {
    let cg = &state.grid;
    let ndofs = state.ndofs;
    assert_eq!(block.dim(), cg.dim(), "point/grid dim mismatch");
    assert_eq!(
        out.len(),
        block.len() * ndofs,
        "output must be npts × ndofs"
    );

    let bs = options.block_size;
    if bs == 0 || bs > device.max_threads_per_block {
        return Err(GpuError::BlockTooLarge {
            requested: bs,
            maximum: device.max_threads_per_block,
        });
    }

    let npts = block.len();
    let xps = cg.xps();
    let nno = cg.nno();
    let nfreq = cg.nfreq();
    let chains = cg.chains();
    let surplus = &state.surplus;

    // Launch geometry: the chain axis is distributed across as many
    // blocks as stay resident in one wave (the single-point kernel's
    // strategy, unchanged — the point axis lives inside the chunk).
    let max_blocks = device.max_concurrent_blocks_for(bs);
    let grid_size = max_blocks.min(nno.max(1));
    let waves = grid_size.div_ceil(max_blocks).max(1);
    let resident_blocks = grid_size.min(max_blocks);
    let occupancy =
        (resident_blocks * bs) as f64 / (device.sm_count * device.max_threads_per_sm) as f64;

    out.fill(0.0);
    let mut timing = BatchTiming {
        blocks: grid_size,
        waves,
        occupancy,
        xpv_staged: true,
        ..BatchTiming::default()
    };
    if npts == 0 {
        return Ok(timing);
    }

    let f64s = std::mem::size_of::<f64>() as f64;
    let mut at = 0usize;
    while at < npts {
        let chunk = (npts - at).min(BATCH_CHUNK);
        let plan = plan_shared(device, options, block.dim(), xps.len(), chunk)?;
        timing.xpv_staged &= plan.xpv_staged;
        let (xpvb, temps, colmask) = scratch.prepare_batch(xps.len(), chunk);
        let full = if chunk == 64 {
            u64::MAX
        } else {
            (1u64 << chunk) - 1
        };

        // Basis fill + ballots: same arithmetic (and same `colmask`
        // sentinel) as the CPU batch engine's loop 1, so values are
        // bitwise identical. Two 32-lane ballots per entry build the
        // nonzero-lane word of a 64-point chunk.
        let warps = chunk.div_ceil(32);
        for (e, entry) in xps.iter().enumerate() {
            let xs = &block.column(entry.index as usize)[at..at + chunk];
            let slot = &mut xpvb[e * chunk..(e + 1) * chunk];
            let mut m = 0u64;
            for k in 0..chunk {
                let v = linear_basis(xs[k], entry.l, entry.i).max(0.0);
                slot[k] = v;
                m |= ((v != 0.0) as u64) << k;
            }
            colmask[e] = m;
        }
        colmask[0] = full;

        // Chain walk with ballot pruning — loop 2 of the CPU batch
        // engine verbatim, plus the launch's cost counters.
        let mut factor_cols = 0usize; // basis columns streamed by survivors
        let mut rows_touched = 0usize; // surplus rows accumulated
        let mut alive_pairs = 0usize; // (chain, point) accumulations
        for (p, chain) in chains.chunks_exact(nfreq).enumerate() {
            let len = chain.iter().position(|&i| i == 0).unwrap_or(nfreq);
            let mut bound = full;
            for &idx in &chain[..len] {
                bound &= colmask[idx as usize];
            }
            if bound == 0 {
                continue;
            }
            factor_cols += len.max(1);
            let mut mask = 0u64;
            match len {
                0 => {
                    temps[..chunk].fill(1.0);
                    mask = full;
                }
                1 => {
                    let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                    for k in 0..chunk {
                        let v = c0[k];
                        temps[k] = v;
                        mask |= ((v != 0.0) as u64) << k;
                    }
                }
                2 => {
                    let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                    let c1 = &xpvb[chain[1] as usize * chunk..][..chunk];
                    for k in 0..chunk {
                        let v = c0[k] * c1[k];
                        temps[k] = v;
                        mask |= ((v != 0.0) as u64) << k;
                    }
                }
                _ => {
                    let c0 = &xpvb[chain[0] as usize * chunk..][..chunk];
                    let c1 = &xpvb[chain[1] as usize * chunk..][..chunk];
                    for k in 0..chunk {
                        temps[k] = c0[k] * c1[k];
                    }
                    for &idx in &chain[2..len - 1] {
                        let col = &xpvb[idx as usize * chunk..][..chunk];
                        for (t, &v) in temps[..chunk].iter_mut().zip(col) {
                            *t *= v;
                        }
                    }
                    let last = &xpvb[chain[len - 1] as usize * chunk..][..chunk];
                    for k in 0..chunk {
                        let w = temps[k] * last[k];
                        temps[k] = w;
                        mask |= ((w != 0.0) as u64) << k;
                    }
                }
            }
            if mask == 0 {
                continue;
            }
            rows_touched += 1;
            alive_pairs += mask.count_ones() as usize;
            // Per-warp RowAccum: each alive lane's output row receives
            // `temp · surplus_row` — ascending lane order, the scalar
            // accumulator's walk, so summation order matches bitwise.
            let row = &surplus[p * ndofs..(p + 1) * ndofs];
            let mut m = mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                let temp = temps[k];
                let slot = &mut out[(at + k) * ndofs..(at + k) * ndofs + ndofs];
                for (o, s) in slot.iter_mut().zip(row) {
                    *o += temp * s;
                }
            }
        }

        // --- Roofline cost of this launch.
        // DRAM: chain indices for every chain, surplus rows of chains
        // with at least one alive lane, and the chunk's output rows.
        let mut dram = (nno * nfreq * 4) as f64
            + (rows_touched * ndofs) as f64 * f64s
            + (chunk * ndofs) as f64 * f64s;
        if !plan.xpv_staged {
            // Spilled xpv: the fill writes the whole tile to DRAM and
            // every surviving chain re-streams its factor columns
            // (coalesced — columns are contiguous in the tile).
            dram += (xps.len() * chunk) as f64 * f64s + (factor_cols * chunk) as f64 * f64s;
        }
        // FLOPs: basis fill (3 ops per entry-lane) + ballot/AND words +
        // chain products + FMA accumulation. The dof loop issues
        // warp-granular rounds per alive pair, so ragged ndofs waste
        // lanes exactly as in the single-point kernel's cost model.
        let dof_issue_slots = ndofs.div_ceil(32) * 32;
        let flops = (xps.len() * chunk * 3
            + xps.len() * warps
            + nno * nfreq
            + factor_cols * chunk
            + alive_pairs * dof_issue_slots * 2) as f64;
        let kernel_time = (flops / device.fp64_flops).max(dram / device.mem_bandwidth);
        // PCIe: the chunk's coordinate tile up, its output rows down.
        let transfer_bytes = (block.dim() * chunk + chunk * ndofs) as f64 * f64s;
        let transfer = transfer_bytes / device.pcie_bandwidth;

        timing.launches += 1;
        timing.modeled_seconds += device.launch_latency + transfer + kernel_time * waves as f64;
        timing.dram_bytes += dram;
        timing.flops += flops;
        at += chunk;
    }
    Ok(timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn make_state(dim: usize, n: u8, ndofs: usize) -> CompressedState {
        let grid = regular_grid(dim, n);
        let mut surplus = tabulate(&grid, ndofs, |x, out| {
            for (k, o) in out.iter_mut().enumerate() {
                *o = x
                    .iter()
                    .enumerate()
                    .map(|(t, &v)| ((t + k + 1) as f64 * v).sin() + v * v)
                    .sum();
            }
        });
        hierarchize(&grid, &mut surplus, ndofs);
        CompressedState::new(&grid, &surplus, ndofs)
    }

    fn probe_rows(dim: usize, count: usize) -> Vec<f64> {
        (0..count * dim)
            .map(|s| ((s * 29 + 7) as f64 * 0.01937 + 0.003) % 1.0)
            .collect()
    }

    #[test]
    fn gpu_batch_is_bitwise_scalar_batch() {
        let state = make_state(4, 3, 7);
        let rows = probe_rows(4, BATCH_CHUNK + 13);
        let block = PointBlock::from_rows(4, &rows);
        let n = block.len();
        let mut scratch = Scratch::default();
        let mut want = vec![0.0; n * 7];
        hddm_kernels::batch::interpolate_batch(&state, &block, &mut scratch, &mut want);
        let mut got = vec![0.0; n * 7];
        let timing = interpolate_block(
            &Device::p100(),
            &LaunchOptions::default(),
            &state,
            &block,
            &mut scratch,
            &mut got,
        )
        .unwrap();
        assert_eq!(got, want);
        assert_eq!(timing.launches, 2, "two 64-point chunks ⇒ two launches");
        assert_eq!(timing.waves, 1);
        assert!(timing.occupancy > 0.0 && timing.occupancy <= 1.0);
    }

    #[test]
    fn chunk_launch_count_and_empty_block() {
        let state = make_state(3, 3, 5);
        let mut scratch = Scratch::default();
        let mut out: Vec<f64> = Vec::new();
        let empty = PointBlock::new(3);
        let t = interpolate_block(
            &Device::p100(),
            &LaunchOptions::default(),
            &state,
            &empty,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(t.launches, 0);
        assert_eq!(t.modeled_seconds, 0.0);

        for (npts, launches) in [(1usize, 1usize), (64, 1), (65, 2), (256, 4)] {
            let rows = probe_rows(3, npts);
            let block = PointBlock::from_rows(3, &rows);
            let mut out = vec![0.0; npts * 5];
            let t = interpolate_block(
                &Device::p100(),
                &LaunchOptions::default(),
                &state,
                &block,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            assert_eq!(t.launches, launches, "npts={npts}");
        }
    }

    #[test]
    fn spilled_xpv_costs_more_dram_not_different_values() {
        // A grid whose xpv tile (nxps × 64 doubles) overflows 48 KB.
        let state = make_state(4, 4, 8);
        let rows = probe_rows(4, 64);
        let block = PointBlock::from_rows(4, &rows);
        let mut scratch = Scratch::default();
        let device = Device::p100();
        let mut small = device.clone();
        // Room for the base tiles but never the xpv tile.
        small.shared_mem_per_block = 8 * 1024;
        let mut a = vec![0.0; 64 * 8];
        let mut b = vec![0.0; 64 * 8];
        let opts = LaunchOptions::default();
        let t_big =
            interpolate_block(&device, &opts, &state, &block, &mut scratch, &mut a).unwrap();
        let t_small =
            interpolate_block(&small, &opts, &state, &block, &mut scratch, &mut b).unwrap();
        assert_eq!(a, b, "staging is a cost-model choice, never a value change");
        assert!(!t_small.xpv_staged);
        assert!(t_small.dram_bytes > t_big.dram_bytes);
        assert!(t_small.modeled_seconds >= t_big.modeled_seconds);
    }

    #[test]
    fn base_tiles_must_fit_shared_memory() {
        let state = make_state(4, 3, 4);
        let rows = probe_rows(4, 8);
        let block = PointBlock::from_rows(4, &rows);
        let mut scratch = Scratch::default();
        let mut tiny = Device::p100();
        tiny.shared_mem_per_block = 64;
        let mut out = vec![0.0; 8 * 4];
        let r = interpolate_block(
            &tiny,
            &LaunchOptions::default(),
            &state,
            &block,
            &mut scratch,
            &mut out,
        );
        assert!(matches!(r, Err(GpuError::SharedMemoryExceeded { .. })));
    }

    #[test]
    fn oversized_block_size_is_rejected() {
        let state = make_state(2, 2, 2);
        let block = PointBlock::from_rows(2, &probe_rows(2, 4));
        let mut scratch = Scratch::default();
        let mut out = vec![0.0; 4 * 2];
        let r = interpolate_block(
            &Device::p100(),
            &LaunchOptions {
                block_size: 4096,
                stage_xpv_shared: true,
            },
            &state,
            &block,
            &mut scratch,
            &mut out,
        );
        assert!(matches!(r, Err(GpuError::BlockTooLarge { .. })));
    }
}
