//! hddm-check model of the device-pool residency protocol.
//!
//! Mirrors `crates/gpu/src/pool.rs` — `DevicePool::ensure_resident` —
//! structure-for-structure: one mutex over the whole
//! lookup → evict → insert transaction, LRU victim selection by the
//! clock, and byte accounting maintained with the entry list.
//!
//! Checked properties:
//! - **resident-once**: a surface is never resident twice, no matter
//!   how many requesters race (invariant, checked every step);
//! - **upload-once**: concurrent requests for one surface with room in
//!   the pool upload exactly once (the rest reuse);
//! - **accounting**: `resident_bytes` equals the sum of the resident
//!   entries' bytes once the requesters join;
//! - **no deadlock** in any interleaving (single-lock protocol).
//!
//! Mutations (the checker must catch each with a replayable trace):
//! - `ReleaseBetweenLookupAndInsert` — the miss path drops the mutex
//!   between the lookup and the insert (the classic check-then-act
//!   split): two racing requesters both miss and both insert → the
//!   resident-once invariant fires the step it happens;
//! - `ForgetEvictedBytes` — eviction removes the entry but not its
//!   bytes: the accounting drifts up until the pool believes it is
//!   forever full → the post-join accounting assert panics.

use std::sync::Arc;

use hddm_check::{
    explore, register_invariant, replay, spawn, CheckedAtomicUsize, CheckedMutex, Config,
    FailureKind,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mutation {
    None,
    ReleaseBetweenLookupAndInsert,
    ForgetEvictedBytes,
}

struct Entry {
    id: usize,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    resident_bytes: usize,
    clock: u64,
}

/// Model-level `DevicePool`: the mutex-guarded LRU plus per-surface
/// observability atomics (maintained inside the same critical section,
/// each transition a single step, so invariants never see torn state).
struct PoolModel {
    inner: CheckedMutex<Inner>,
    capacity: usize,
    /// Copies of each surface currently resident (the resident-once
    /// subject; bumped on insert, dropped on evict).
    resident: Vec<CheckedAtomicUsize>,
    /// Uploads performed per surface (the upload-once subject).
    uploads: Vec<CheckedAtomicUsize>,
    mutation: Mutation,
}

impl PoolModel {
    fn new(surfaces: usize, capacity: usize, mutation: Mutation) -> Arc<PoolModel> {
        Arc::new(PoolModel {
            inner: CheckedMutex::named(
                "pool",
                Inner {
                    entries: Vec::new(),
                    resident_bytes: 0,
                    clock: 0,
                },
            ),
            capacity,
            resident: (0..surfaces)
                .map(|s| CheckedAtomicUsize::named(&format!("resident[{s}]"), 0))
                .collect(),
            uploads: (0..surfaces)
                .map(|s| CheckedAtomicUsize::named(&format!("uploads[{s}]"), 0))
                .collect(),
            mutation,
        })
    }

    /// Mirrors `DevicePool::ensure_resident`. Returns `true` on reuse.
    fn ensure_resident(&self, id: usize, bytes: usize) -> bool {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.id == id) {
            e.last_used = now;
            return true;
        }
        if self.mutation == Mutation::ReleaseBetweenLookupAndInsert {
            // The check-then-act split: stage the upload outside the
            // critical section, then re-enter and insert blindly.
            drop(inner);
            inner = self.inner.lock();
        }
        while inner.resident_bytes + bytes > self.capacity {
            let Some(lru) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let gone = inner.entries.swap_remove(lru);
            if self.mutation != Mutation::ForgetEvictedBytes {
                inner.resident_bytes -= gone.bytes;
            }
            self.resident[gone.id].fetch_sub(1);
        }
        inner.resident_bytes += bytes;
        inner.entries.push(Entry {
            id,
            bytes,
            last_used: now,
        });
        self.resident[id].fetch_add(1);
        self.uploads[id].fetch_add(1);
        false
    }
}

/// Spawns one requester per entry of `requests` (surface id, bytes),
/// registers the resident-once invariant, and asserts the byte
/// accounting once every requester joined.
fn pool_model(mutation: Mutation, capacity: usize, requests: &'static [(usize, usize)]) {
    let surfaces = 1 + requests.iter().map(|&(s, _)| s).max().unwrap();
    let m = PoolModel::new(surfaces, capacity, mutation);
    for s in 0..surfaces {
        let m2 = Arc::clone(&m);
        register_invariant(&format!("surface {s} resident at most once"), move || {
            let n = m2.resident[s].peek();
            if n <= 1 {
                Ok(())
            } else {
                Err(format!("surface {s} resident {n} times"))
            }
        });
    }
    let workers: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(i, &(id, bytes))| {
            let m = Arc::clone(&m);
            spawn(&format!("requester-{i}"), move || {
                m.ensure_resident(id, bytes)
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    // Post-join accounting: the byte gauge must equal the entry list.
    let inner = m.inner.lock();
    let actual: usize = inner.entries.iter().map(|e| e.bytes).sum();
    assert_eq!(
        inner.resident_bytes, actual,
        "resident_bytes drifted from the entry list"
    );
}

#[test]
fn same_surface_uploads_once_explores_clean() {
    let report = explore(&Config::new("pool-upload-once"), || {
        pool_model(Mutation::None, 1000, &[(0, 100), (0, 100), (0, 100)])
    });
    let schedules = report.assert_clean();
    println!(
        "model pool-upload-once: {schedules} schedules, max {} steps",
        report.max_steps_seen
    );
}

#[test]
fn eviction_churn_keeps_accounting_clean() {
    // Capacity for one surface: whichever requester runs second evicts
    // the first's surface in every schedule.
    let report = explore(&Config::new("pool-eviction-churn"), || {
        pool_model(Mutation::None, 150, &[(0, 100), (1, 100), (0, 100)])
    });
    let schedules = report.assert_clean();
    println!("model pool-eviction-churn: {schedules} schedules");
}

#[test]
fn mutation_lookup_insert_split_is_double_residency() {
    let model = || {
        pool_model(
            Mutation::ReleaseBetweenLookupAndInsert,
            1000,
            &[(0, 100), (0, 100)],
        )
    };
    let report = explore(&Config::new("pool-mut-split"), model);
    let failure = report
        .expect_failure(FailureKind::InvariantViolation)
        .clone();
    assert!(
        failure.message.contains("resident 2 times"),
        "{}",
        failure.message
    );
    let re = replay(&Config::new("pool-mut-split"), &failure.trace, model);
    let rf = re.expect_failure(FailureKind::InvariantViolation);
    assert_eq!(rf.message, failure.message);
    assert_eq!(rf.events, failure.events);
}

#[test]
fn mutation_forgotten_evicted_bytes_breaks_accounting() {
    let model = || pool_model(Mutation::ForgetEvictedBytes, 150, &[(0, 100), (1, 100)]);
    let report = explore(&Config::new("pool-mut-bytes"), model);
    let failure = report.expect_failure(FailureKind::Panic).clone();
    assert!(failure.message.contains("drifted"), "{}", failure.message);
    let re = replay(&Config::new("pool-mut-bytes"), &failure.trace, model);
    let rf = re.expect_failure(FailureKind::Panic);
    assert_eq!(rf.message, failure.message);
}
