//! Golden-value equivalence for the GPU backend, joining the kernel
//! suite's contract: on randomized adaptive grids with randomized
//! surpluses and evaluation points (seeded `ChaCha8Rng`), the batched
//! device kernel must be **bitwise** equal to the scalar single-point
//! `x86` kernel (the offload is an exact reformulation, never an
//! approximation) and within ≤ 1e-12 of the dense `gold` baseline —
//! across block widths 1/7/64/256 and ragged ndofs. Device-pool
//! residency (upload-once/reuse, evictions) must never change values.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_asg::{basis, hierarchize, regular_grid, tabulate, ActiveCoord, NodeKey, SparseGrid};
use hddm_gpu::{interpolate_block, Device, ExecutionBackend, GpuEngine, LaunchOptions};
use hddm_kernels::{gold, x86, CompressedState, DenseState, KernelKind, PointBlock, Scratch};

const TOL: f64 = 1e-12;

/// A random ancestor-closed adaptive grid in `dim` dimensions.
fn random_grid(dim: usize, nodes: usize, rng: &mut ChaCha8Rng) -> SparseGrid {
    let mut grid = SparseGrid::new(dim);
    grid.insert(NodeKey::root());
    for _ in 0..nodes {
        let actives = rng.gen_range(1..=3.min(dim));
        let mut coords: Vec<ActiveCoord> = Vec::new();
        for _ in 0..actives {
            let d = rng.gen_range(0..dim) as u16;
            if coords.iter().any(|c| c.dim == d) {
                continue;
            }
            let level = rng.gen_range(2..=5u32) as u8;
            let indices = basis::level_indices(level);
            let index = indices[rng.gen_range(0..indices.len())];
            coords.push(ActiveCoord {
                dim: d,
                level,
                index,
            });
        }
        grid.insert_closed(NodeKey::from_coords(coords));
    }
    grid
}

fn random_surplus(grid: &SparseGrid, ndofs: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..grid.len() * ndofs)
        .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
        .collect()
}

fn random_rows(dim: usize, npts: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..npts * dim).map(|_| rng.gen::<f64>()).collect()
}

/// GPU batched kernel vs scalar single-point (bitwise) and gold
/// (≤ 1e-12), over random adaptive grids × block widths 1/7/64/256 ×
/// ragged ndofs.
#[test]
fn gpu_backend_joins_the_kernel_golden_suite() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x6B00);
    let device = Device::p100();
    let options = LaunchOptions::default();
    for round in 0..12 {
        let dim = rng.gen_range(2..=5usize);
        // Ragged on purpose: never a multiple of a lane or warp width.
        let ndofs = [1usize, 3, 5, 7, 11][rng.gen_range(0..5usize)];
        let grid = random_grid(dim, rng.gen_range(0..10), &mut rng);
        let surplus = random_surplus(&grid, ndofs, &mut rng);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let mut scratch = Scratch::default();
        for npts in [1usize, 7, 64, 256] {
            let rows = random_rows(dim, npts, &mut rng);
            let block = PointBlock::from_rows(dim, &rows);
            let mut got = vec![0.0; npts * ndofs];
            interpolate_block(
                &device,
                &options,
                &compressed,
                &block,
                &mut scratch,
                &mut got,
            )
            .expect("paper-scale grids launch cleanly");
            let mut single = vec![0.0; ndofs];
            let mut want_gold = vec![0.0; ndofs];
            for p in 0..npts {
                let x = &rows[p * dim..(p + 1) * dim];
                x86::interpolate(&compressed, x, &mut scratch, &mut single);
                assert_eq!(
                    &got[p * ndofs..(p + 1) * ndofs],
                    &single[..],
                    "round {round} npts {npts} point {p}: gpu vs scalar must be bitwise"
                );
                gold::interpolate(&dense, x, &mut want_gold);
                for k in 0..ndofs {
                    assert!(
                        (got[p * ndofs + k] - want_gold[k]).abs() <= TOL,
                        "round {round} npts {npts} point {p} dof {k}: {} vs gold {}",
                        got[p * ndofs + k],
                        want_gold[k]
                    );
                }
            }
        }
    }
}

fn smooth_state(dim: usize, level: u8, ndofs: usize) -> CompressedState {
    let grid = regular_grid(dim, level);
    let mut surplus = tabulate(&grid, ndofs, |x, out| {
        for (k, o) in out.iter_mut().enumerate() {
            *o = x
                .iter()
                .enumerate()
                .map(|(t, &v)| ((t + k + 1) as f64 * v).sin() + v * v)
                .sum();
        }
    });
    hierarchize(&grid, &mut surplus, ndofs);
    CompressedState::new(&grid, &surplus, ndofs)
}

/// The backend dispatch entry (the seam the driver/serve consumers use)
/// agrees with every CPU `KernelKind` batch path to ≤ 1e-12 and with the
/// scalar batch path bitwise.
#[test]
fn backend_dispatch_matches_every_cpu_kernel() {
    let state = smooth_state(4, 3, 7);
    let mut rng = ChaCha8Rng::seed_from_u64(0x6B01);
    let rows = random_rows(4, 96, &mut rng);
    let block = PointBlock::from_rows(4, &rows);
    let mut scratch = Scratch::default();
    let gpu = ExecutionBackend::gpu();
    let mut got = vec![0.0; 96 * 7];
    gpu.evaluate_batch(KernelKind::X86, &state, &block, &mut scratch, &mut got);

    let mut scalar = vec![0.0; 96 * 7];
    hddm_kernels::batch::interpolate_batch(&state, &block, &mut scratch, &mut scalar);
    assert_eq!(got, scalar, "gpu backend vs scalar batch must be bitwise");

    for kind in KernelKind::COMPRESSED {
        let mut cpu = vec![0.0; 96 * 7];
        ExecutionBackend::Cpu.evaluate_batch(kind, &state, &block, &mut scratch, &mut cpu);
        for (i, (&g, &c)) in got.iter().zip(&cpu).enumerate() {
            assert!(
                (g - c).abs() <= TOL,
                "{kind:?} slot {i}: gpu {g} vs cpu {c}"
            );
        }
    }
}

/// Pool residency is pure cost accounting: a surface evaluates
/// identically before upload, after reuse, and after being evicted and
/// re-uploaded.
#[test]
fn pool_residency_never_changes_values() {
    let a = smooth_state(3, 4, 5);
    let b = smooth_state(3, 5, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(0x6B02);
    let rows = random_rows(3, 64, &mut rng);
    let block = PointBlock::from_rows(3, &rows);
    let mut scratch = Scratch::default();

    // A pool that can hold exactly one of the two surfaces, forcing an
    // eviction on every alternation.
    let engine = GpuEngine::configured(
        Device::p100(),
        LaunchOptions::default(),
        hddm_gpu::device_bytes(&a).max(hddm_gpu::device_bytes(&b)) + 64,
        None,
    );
    let mut first_a = vec![0.0; 64 * 5];
    let run = engine
        .evaluate_batch(&a, &block, &mut scratch, &mut first_a)
        .unwrap();
    assert!(!run.reused, "first touch uploads");

    let mut first_b = vec![0.0; 64 * 5];
    let run = engine
        .evaluate_batch(&b, &block, &mut scratch, &mut first_b)
        .unwrap();
    assert!(!run.reused);
    assert!(engine.pool().evictions() >= 1, "b displaced a");

    // Re-evaluate both after the eviction churn: bitwise identical.
    let mut again = vec![0.0; 64 * 5];
    engine
        .evaluate_batch(&a, &block, &mut scratch, &mut again)
        .unwrap();
    assert_eq!(again, first_a);
    engine
        .evaluate_batch(&b, &block, &mut scratch, &mut again)
        .unwrap();
    assert_eq!(again, first_b);
}
