//! The compression pipeline of Sec. IV-B, step by step, with inspectable
//! intermediate artifacts (the ξ_freq matrices of Fig. 4, the transition
//! matrices, and the lookup vectors that Algorithm 2 folds into chains).
//!
//! Terminology (paper ↔ code):
//!
//! * `Ξ̃` — the dense `nno × d` matrix of one-based `(l, i)` pairs; we read
//!   it straight off the sparse grid.
//! * `Ξ` — `Ξ̃` after the zero-elimination transform: every pair becomes
//!   the pre-scaled `(ł, í) = (2^{l−1}, i)`, and level-1 pairs become
//!   `(0, 0)` ("zero"), Fig. 3.
//! * `ξ_freq` — for `freq = 0 … nfreq−1`, a dynamically expandable matrix
//!   with `d` columns holding the `freq`-th non-zero of each `Ξ` row in the
//!   column of its dimension, packed top-down per column (footnote 7),
//!   Fig. 4.
//! * `T_freq` — transition matrices linking the renumbered row ids of
//!   consecutive `ξ_freq` pairs.
//! * `xps` — the global array of unique `(dimension, ł, í)` elements; its
//!   size is the number of *meaningful* 1-D basis evaluations per
//!   interpolation (Table I: 237 for the "7k" grid, 473 for "300k" —
//!   including the sentinel slot 0 that terminates chains).
//! * `V_freq` — per-`ξ_freq` lookup vectors mapping renumbered ids to `xps`
//!   entries.
//! * `chains` — the final `nno × nfreq` matrix of `xps` indices walked by
//!   the interpolation kernels (Fig. 5 left).

use hddm_asg::{basis, SparseGrid};

/// One non-zero element of `Ξ`, tagged with the row (grid point) it came
/// from. `l` and `i` are the pre-scaled pair (`Index<uint16_t>` in the
/// paper's kernels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XiElement {
    /// Pre-scaled level `ł = 2^{level−1}`.
    pub l: u16,
    /// Index `í` within the level.
    pub i: u16,
    /// Dimension (column of `Ξ`) this element sits in.
    pub dim: u32,
    /// Original `Ξ` row (dense grid-point id).
    pub row: u32,
}

/// The zero-eliminated sparse view of `Ξ`: for every grid point, its
/// non-zero elements in ascending dimension order.
#[derive(Clone, Debug)]
pub struct XiSparse {
    /// Per-point element lists (index = dense grid id).
    pub rows: Vec<Vec<XiElement>>,
    /// Dimensionality `d`.
    pub dim: usize,
}

impl XiSparse {
    /// Extracts the non-zero structure of `Ξ` from the grid (steps of
    /// Fig. 3: build `Ξ̃`, transform, drop zeros).
    pub fn from_grid(grid: &SparseGrid) -> Self {
        let rows = grid
            .nodes()
            .iter()
            .enumerate()
            .map(|(p, node)| {
                node.active()
                    .map(|c| {
                        let (l, i) = basis::scaled_pair(c.level, c.index);
                        debug_assert!(l != 0 || i != 0);
                        XiElement {
                            l,
                            i,
                            dim: c.dim as u32,
                            row: p as u32,
                        }
                    })
                    .collect()
            })
            .collect();
        XiSparse {
            rows,
            dim: grid.dim(),
        }
    }

    /// `nfreq`: the maximum number of non-zeros across rows (paper: "the
    /// number of frequencies"; ≤ 7 in the application's typical grids).
    pub fn nfreq(&self) -> usize {
        self.rows.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Fraction of `(0,0)` entries in the conceptual dense `Ξ` (the "up to
    /// 96.8% zeros" of Sec. IV-B).
    pub fn zero_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let nonzeros: usize = self.rows.iter().map(|r| r.len()).sum();
        1.0 - nonzeros as f64 / (self.rows.len() * self.dim) as f64
    }
}

/// One `ξ_freq` matrix: `d` ragged columns, each holding the elements whose
/// dimension equals that column, packed top-down in arrival order
/// (footnote 7's "dynamically expandable matrix with fixed row size").
#[derive(Clone, Debug, Default)]
pub struct XiFreq {
    /// `columns[j]` = elements placed in column `j`, by row.
    pub columns: Vec<Vec<XiElement>>,
}

impl XiFreq {
    /// Number of (ragged) rows = tallest column.
    pub fn nrows(&self) -> usize {
        self.columns.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Total elements stored.
    pub fn len(&self) -> usize {
        self.columns.iter().map(|c| c.len()).sum()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major traversal (row 0 across all columns, then row 1, …) — the
    /// order that defines the per-frequency renumbering.
    pub fn traverse(&self) -> impl Iterator<Item = &XiElement> + '_ {
        let nrows = self.nrows();
        (0..nrows).flat_map(move |r| self.columns.iter().filter_map(move |col| col.get(r)))
    }
}

/// Decomposes `Ξ` into `nfreq` ξ-matrices: the `k`-th non-zero of each row
/// (in ascending dimension order) lands in `ξ_k`, column = its dimension.
pub fn decompose(xi: &XiSparse) -> Vec<XiFreq> {
    let nfreq = xi.nfreq();
    let mut mats: Vec<XiFreq> = (0..nfreq)
        .map(|_| XiFreq {
            columns: vec![Vec::new(); xi.dim],
        })
        .collect();
    for row in &xi.rows {
        for (k, element) in row.iter().enumerate() {
            mats[k].columns[element.dim as usize].push(*element);
        }
    }
    mats
}

/// The renumbering of one frequency: `order[new_id] = original grid id`,
/// plus the inverse map for points that appear in this frequency.
#[derive(Clone, Debug)]
pub struct Renumbering {
    /// `order[new_id]` = original dense grid id.
    pub order: Vec<u32>,
    /// `new_of[original id]` = new id, or `u32::MAX` when the point has no
    /// element at this frequency.
    pub new_of: Vec<u32>,
}

/// Renumbers the points of one `ξ_freq` in row-major traversal order
/// ("renumbered in a sorted order that ranges from the first to the last
/// row of ξ_freq").
pub fn renumber(mat: &XiFreq, nno: usize) -> Renumbering {
    let mut order = Vec::with_capacity(mat.len());
    let mut new_of = vec![u32::MAX; nno];
    for element in mat.traverse() {
        debug_assert_eq!(new_of[element.row as usize], u32::MAX);
        new_of[element.row as usize] = order.len() as u32;
        order.push(element.row);
    }
    Renumbering { order, new_of }
}

/// Sentinel id used in transition matrices and chains ("no successor").
/// In `chains` the sentinel is plain 0 (`if (!idx) break` in the kernels);
/// `xps[0]` holds the neutral `(0,0)` pair whose basis value is exactly 1.
pub const NO_SUCCESSOR: u32 = u32::MAX;

/// Builds the transition matrix `T_freq` between the renumberings of
/// frequency `k` and `k + 1`: `t[new_id_k] = new_id_{k+1}` (or
/// [`NO_SUCCESSOR`] when the point has no `k+1`-th non-zero).
pub fn transition(from: &Renumbering, to: &Renumbering) -> Vec<u32> {
    from.order
        .iter()
        .map(|&orig| to.new_of[orig as usize])
        .collect()
}

/// One entry of the global unique-element array `xps`. Field names mirror
/// the paper's `Index<uint16_t>` struct (`index` is the dimension the
/// kernel uses to gather `x[j]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct XpsEntry {
    /// Dimension `j` whose coordinate the kernel reads.
    pub index: u32,
    /// Pre-scaled level `ł` (0 for the sentinel).
    pub l: u16,
    /// Index `í` (0 for the sentinel).
    pub i: u16,
}

impl XpsEntry {
    /// The sentinel occupying `xps[0]`; `LinearBasis` evaluates it to 1.
    pub const SENTINEL: XpsEntry = XpsEntry {
        index: 0,
        l: 0,
        i: 0,
    };
}

/// The deduplicated element array plus per-frequency lookup vectors
/// `V_freq` (`lookups[k][new_id_k]` = `xps` index).
#[derive(Clone, Debug)]
pub struct UniqueElements {
    /// `xps[0]` is the sentinel; real elements start at 1.
    pub xps: Vec<XpsEntry>,
    /// `lookups[k][new_id]` = index into `xps`.
    pub lookups: Vec<Vec<u32>>,
}

/// Collects unique `(dim, ł, í)` elements across all frequencies (traversal
/// order: frequency-ascending, then row-major) and builds the `V_freq`
/// lookup vectors.
pub fn unique_elements(mats: &[XiFreq]) -> UniqueElements {
    use std::collections::HashMap;
    let mut xps = vec![XpsEntry::SENTINEL];
    let mut seen: HashMap<XpsEntry, u32> = HashMap::new();
    let mut lookups = Vec::with_capacity(mats.len());
    for mat in mats {
        let mut v = Vec::with_capacity(mat.len());
        for element in mat.traverse() {
            let entry = XpsEntry {
                index: element.dim,
                l: element.l,
                i: element.i,
            };
            let id = *seen.entry(entry).or_insert_with(|| {
                xps.push(entry);
                (xps.len() - 1) as u32
            });
            v.push(id);
        }
        lookups.push(v);
    }
    UniqueElements { xps, lookups }
}

/// Algorithm 2: folds transition matrices and lookup vectors into the
/// per-point `chains` matrix (`nno_chained × nfreq`, row `p` in the
/// frequency-0 renumbered order, 0-padded when a point runs out of
/// non-zeros).
///
/// Returns `(chains, order)` where `order[new_pos] = original grid id` for
/// the chained points; points with *no* non-zeros at all (the root) are not
/// covered and are appended by the caller.
pub fn build_chains(
    renumberings: &[Renumbering],
    transitions: &[Vec<u32>],
    unique: &UniqueElements,
    nfreq: usize,
) -> (Vec<u32>, Vec<u32>) {
    if nfreq == 0 {
        return (Vec::new(), Vec::new());
    }
    let first = &renumberings[0];
    let npoints = first.order.len();
    let mut chains = vec![0u32; npoints * nfreq];
    for p in 0..npoints {
        let mut id = p as u32;
        chains[p * nfreq] = unique.lookups[0][p];
        for k in 1..nfreq {
            id = transitions[k - 1][id as usize];
            if id == NO_SUCCESSOR {
                break; // remaining slots stay 0 (the chain terminator)
            }
            chains[p * nfreq + k] = unique.lookups[k][id as usize];
        }
    }
    (chains, first.order.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::regular_grid;

    #[test]
    fn xi_sparse_zero_fraction_matches_paper_figure() {
        // Fig. 3 example: maximum refinement level 2 (one-based level 3),
        // d = 59 — the paper quotes "up to 96.8%" zeros.
        let grid = regular_grid(59, 3);
        let xi = XiSparse::from_grid(&grid);
        let zf = xi.zero_fraction();
        assert!(zf > 0.96 && zf < 0.99, "zero fraction {zf}");
    }

    #[test]
    fn nfreq_matches_level_budget() {
        // Regular grid of level n has at most n−1 active dims per point.
        for n in 2..=4u8 {
            let grid = regular_grid(6, n);
            let xi = XiSparse::from_grid(&grid);
            assert_eq!(xi.nfreq(), n as usize - 1, "n={n}");
        }
    }

    #[test]
    fn decompose_puts_kth_nonzero_in_kth_matrix() {
        let grid = regular_grid(3, 3);
        let xi = XiSparse::from_grid(&grid);
        let mats = decompose(&xi);
        assert_eq!(mats.len(), 2);
        // Every row's first element must appear in ξ_0, second in ξ_1.
        let total: usize = mats.iter().map(|m| m.len()).sum();
        let nonzeros: usize = xi.rows.iter().map(|r| r.len()).sum();
        assert_eq!(total, nonzeros);
        for row in &xi.rows {
            for (k, element) in row.iter().enumerate() {
                assert!(
                    mats[k].columns[element.dim as usize].contains(element),
                    "element {element:?} missing from ξ_{k}"
                );
            }
        }
    }

    #[test]
    fn column_packing_preserves_arrival_order() {
        let grid = regular_grid(2, 4);
        let xi = XiSparse::from_grid(&grid);
        let mats = decompose(&xi);
        for mat in &mats {
            for col in &mat.columns {
                // Rows within a column must be in ascending original-row
                // order (elements arrive in grid order).
                for w in col.windows(2) {
                    assert!(w[0].row < w[1].row);
                }
            }
        }
    }

    #[test]
    fn renumber_is_a_bijection_on_chained_points() {
        let grid = regular_grid(3, 4);
        let xi = XiSparse::from_grid(&grid);
        let mats = decompose(&xi);
        let r0 = renumber(&mats[0], grid.len());
        // Every non-root point appears exactly once.
        let roots = xi.rows.iter().filter(|r| r.is_empty()).count();
        assert_eq!(r0.order.len(), grid.len() - roots);
        let mut seen = vec![false; grid.len()];
        for &orig in &r0.order {
            assert!(!seen[orig as usize]);
            seen[orig as usize] = true;
        }
        // Inverse map agrees.
        for (new_id, &orig) in r0.order.iter().enumerate() {
            assert_eq!(r0.new_of[orig as usize], new_id as u32);
        }
    }

    #[test]
    fn transitions_compose_to_row_identity() {
        let grid = regular_grid(3, 4);
        let xi = XiSparse::from_grid(&grid);
        let mats = decompose(&xi);
        let renums: Vec<_> = mats.iter().map(|m| renumber(m, grid.len())).collect();
        for k in 0..renums.len() - 1 {
            let t = transition(&renums[k], &renums[k + 1]);
            for (id_k, &id_next) in t.iter().enumerate() {
                let orig = renums[k].order[id_k];
                if id_next == NO_SUCCESSOR {
                    assert!(xi.rows[orig as usize].len() <= k + 1);
                } else {
                    assert_eq!(renums[k + 1].order[id_next as usize], orig);
                }
            }
        }
    }

    #[test]
    fn xps_counts_match_table1() {
        // Table I: "7k" (d=59, level 3) has 237 xps per state; "300k"
        // (level 4) has 473. Both include the sentinel slot.
        let grid3 = regular_grid(59, 3);
        let xi3 = XiSparse::from_grid(&grid3);
        let unique3 = unique_elements(&decompose(&xi3));
        assert_eq!(unique3.xps.len(), 237);

        let grid4 = regular_grid(59, 4);
        let xi4 = XiSparse::from_grid(&grid4);
        let unique4 = unique_elements(&decompose(&xi4));
        assert_eq!(unique4.xps.len(), 473);
    }

    #[test]
    fn sentinel_is_slot_zero_and_neutral() {
        let grid = regular_grid(2, 3);
        let xi = XiSparse::from_grid(&grid);
        let unique = unique_elements(&decompose(&xi));
        assert_eq!(unique.xps[0], XpsEntry::SENTINEL);
        assert_eq!(hddm_asg::linear_basis(0.42, 0, 0), 1.0);
        // No real element may alias the sentinel slot.
        for v in unique.lookups.iter().flatten() {
            assert_ne!(*v, 0);
        }
    }
}
