//! # hddm-compress — adaptive sparse grid index compression
//!
//! The novel data structure of Sec. IV-B of Kübler et al. (IPDPS 2018):
//! instead of iterating all `d` dimensions per grid point during
//! interpolation (`nno × d` basis evaluations, ≥95% of which are the
//! constant level-1 factor), points carry short **chains** of indices into
//! a deduplicated element array `xps`, reducing the complexity to
//! `nno × nfreq` with `nfreq ≤ 7` for the paper's grids — about an order of
//! magnitude — while the randomly accessed per-evaluation scratch (`xpv`,
//! |xps| ≤ 473 doubles) fits in L1 cache or GPU shared memory.
//!
//! [`pipeline`] exposes each construction stage (zero elimination, `ξ_freq`
//! decomposition, renumbering, transition matrices, unique elements,
//! Algorithm 2); [`CompressedGrid`] drives them and owns the kernel-facing
//! arrays.
//!
//! ```
//! use hddm_asg::{regular_grid, hierarchize, tabulate};
//! use hddm_compress::CompressedGrid;
//!
//! let grid = regular_grid(4, 3);
//! let mut surplus = tabulate(&grid, 1, |x, out| out[0] = x.iter().sum());
//! hierarchize(&grid, &mut surplus, 1);
//!
//! let cg = CompressedGrid::build(&grid);
//! let reordered = cg.reorder_rows(&surplus, 1);
//! let mut xpv = vec![0.0; cg.xps().len()];
//! let mut out = [0.0];
//! cg.interpolate_scalar(&reordered, 1, &[0.5, 0.5, 0.5, 0.5], &mut xpv, &mut out);
//! assert!((out[0] - 2.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod compressed;
pub mod pipeline;

#[allow(deprecated)]
pub use compressed::compression_builds;
pub use compressed::{builds_total, CompressedGrid, CompressionStats, BUILDS_COUNTER};
pub use pipeline::{
    build_chains, decompose, renumber, transition, unique_elements, Renumbering, UniqueElements,
    XiElement, XiFreq, XiSparse, XpsEntry,
};
