//! The kernel-facing compressed grid: `xps` + `chains` + point reordering,
//! assembled by the [`crate::pipeline`] stages, with the scalar reference
//! interpolator of Fig. 5 (left).

use std::cell::Cell;

use hddm_asg::{basis, linear_basis, SparseGrid};

use crate::pipeline::{
    build_chains, decompose, renumber, transition, unique_elements, XiSparse, XpsEntry,
};

thread_local! {
    /// Full pipeline runs performed by this thread (see
    /// [`compression_builds`]).
    static BUILDS: Cell<usize> = const { Cell::new(0) };
}

/// Name of the process-global registry counter incremented by every
/// [`CompressedGrid::build`] (see [`builds_total`]).
pub const BUILDS_COUNTER: &str = "hddm_compress_builds_total";

/// The [`BUILDS_COUNTER`] instrument, resolved once.
fn builds_counter() -> &'static std::sync::Arc<hddm_telemetry::Counter> {
    static COUNTER: std::sync::OnceLock<std::sync::Arc<hddm_telemetry::Counter>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(|| hddm_telemetry::Registry::global().counter(BUILDS_COUNTER))
}

/// Process-wide number of full compression-pipeline runs
/// ([`CompressedGrid::build`]), read from the [`BUILDS_COUNTER`]
/// instrument on [`hddm_telemetry::Registry::global`].
pub fn builds_total() -> u64 {
    builds_counter().get()
}

/// Number of full compression-pipeline runs ([`CompressedGrid::build`])
/// this thread has performed. The driver's incremental hierarchization
/// contract — *one* compression per state per step, regardless of how
/// many refinement levels the step grows — is asserted against this
/// counter; it is thread-local so concurrently running tests (or sweep
/// workers) cannot pollute each other's deltas.
#[deprecated(
    note = "use `builds_total()` (the `hddm_compress_builds_total` registry \
            counter) for process-wide counts; this thread-local shim remains \
            only for single-thread delta assertions in existing tests"
)]
pub fn compression_builds() -> usize {
    BUILDS.with(|b| b.get())
}

/// Compression statistics reported alongside Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompressionStats {
    /// Fraction of `(0,0)` pairs in the conceptual dense `Ξ` matrix.
    pub zero_fraction: f64,
    /// Bytes of the compressed structure (`xps` + `chains`).
    pub compressed_bytes: usize,
    /// Bytes of the dense `nno × d` pair matrix it replaces.
    pub dense_bytes: usize,
}

/// A sparse grid compressed per Sec. IV-B, ready for the optimized
/// interpolation kernels.
///
/// Invariants:
/// * `xps[0]` is the neutral sentinel `(j,ł,í) = (0,0,0)` with basis value 1;
/// * `chains` has `nno × nfreq` entries; row `p` lists the `xps` ids of
///   point `p`'s non-trivial 1-D factors, 0-terminated;
/// * `order[p]` maps the chain row `p` back to the dense id in the original
///   [`SparseGrid`] — surplus matrices must be permuted with
///   [`CompressedGrid::reorder_rows`] before kernels touch them.
#[derive(Clone, Debug)]
pub struct CompressedGrid {
    dim: usize,
    nno: usize,
    nfreq: usize,
    xps: Vec<XpsEntry>,
    chains: Vec<u32>,
    order: Vec<u32>,
    stats: CompressionStats,
}

impl CompressedGrid {
    /// Runs the full compression pipeline on a grid.
    pub fn build(grid: &SparseGrid) -> Self {
        BUILDS.with(|b| b.set(b.get() + 1));
        builds_counter().inc();
        let xi = XiSparse::from_grid(grid);
        let zero_fraction = xi.zero_fraction();
        let nfreq = xi.nfreq().max(1);
        let mats = decompose(&xi);
        let renumberings: Vec<_> = mats.iter().map(|m| renumber(m, grid.len())).collect();
        let transitions: Vec<Vec<u32>> = renumberings
            .windows(2)
            .map(|w| transition(&w[0], &w[1]))
            .collect();
        let unique = unique_elements(&mats);
        let (mut chains, mut order) = if mats.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            build_chains(&renumberings, &transitions, &unique, nfreq)
        };
        // Points with no non-zero factors (the root node) carry all-zero
        // chains and are appended after the chained points.
        for (p, row) in xi.rows.iter().enumerate() {
            if row.is_empty() {
                order.push(p as u32);
                chains.extend(std::iter::repeat_n(0, nfreq));
            }
        }
        debug_assert_eq!(order.len(), grid.len());
        debug_assert_eq!(chains.len(), grid.len() * nfreq);

        let xps = unique.xps;
        let compressed_bytes = xps.len() * std::mem::size_of::<XpsEntry>() + chains.len() * 4;
        let dense_bytes = grid.len() * grid.dim() * 2 * std::mem::size_of::<u16>();
        CompressedGrid {
            dim: grid.dim(),
            nno: grid.len(),
            nfreq,
            xps,
            chains,
            order,
            stats: CompressionStats {
                zero_fraction,
                compressed_bytes,
                dense_bytes,
            },
        }
    }

    /// Reassembles a compressed grid from its raw arrays (the checkpoint
    /// path). Validates every structural invariant the kernels rely on;
    /// panics on violation — a corrupt checkpoint must not reach a kernel.
    /// `stats` are recomputed from the arrays.
    pub fn from_raw_parts(
        dim: usize,
        nfreq: usize,
        xps: Vec<XpsEntry>,
        chains: Vec<u32>,
        order: Vec<u32>,
    ) -> Self {
        assert!(dim >= 1, "dimension must be positive");
        assert!(nfreq >= 1, "nfreq must be positive");
        assert!(
            xps.first() == Some(&XpsEntry::SENTINEL),
            "xps[0] must be the sentinel"
        );
        assert_eq!(chains.len() % nfreq, 0, "chains not a multiple of nfreq");
        let nno = chains.len() / nfreq;
        assert_eq!(order.len(), nno, "order length mismatch");
        let mut seen = vec![false; nno];
        for &o in &order {
            assert!(
                (o as usize) < nno && !std::mem::replace(&mut seen[o as usize], true),
                "order is not a permutation"
            );
        }
        let mut nonzero = 0usize;
        for &c in &chains {
            assert!((c as usize) < xps.len(), "chain entry out of xps range");
            if c != 0 {
                nonzero += 1;
            }
        }
        for e in &xps[1..] {
            assert!(
                (e.index as usize) < dim && e.l >= 2,
                "invalid xps entry {e:?}"
            );
        }
        let zero_fraction = 1.0 - nonzero as f64 / (nno * dim).max(1) as f64;
        let compressed_bytes = xps.len() * std::mem::size_of::<XpsEntry>() + chains.len() * 4;
        let dense_bytes = nno * dim * 2 * std::mem::size_of::<u16>();
        CompressedGrid {
            dim,
            nno,
            nfreq,
            xps,
            chains,
            order,
            stats: CompressionStats {
                zero_fraction,
                compressed_bytes,
                dense_bytes,
            },
        }
    }

    /// A compressed grid over no points at all — the seed of incremental
    /// construction via [`Self::append_nodes`].
    pub fn empty(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be positive");
        CompressedGrid {
            dim,
            nno: 0,
            nfreq: 1,
            xps: vec![XpsEntry::SENTINEL],
            chains: Vec::new(),
            order: Vec::new(),
            stats: CompressionStats {
                zero_fraction: 1.0,
                compressed_bytes: std::mem::size_of::<XpsEntry>(),
                dense_bytes: 0,
            },
        }
    }

    /// Appends grid points to the compressed structure **without
    /// re-running the pipeline**: a chain row is a point's non-trivial
    /// 1-D factors as `xps` ids in ascending dimension order, so new
    /// points only need their elements interned into the (tiny) `xps`
    /// dictionary and one row appended to `chains`/`order`. The chain
    /// stride widens in place when a new point has more non-zeros than
    /// any before it (old rows keep their 0 terminators).
    ///
    /// Every kernel invariant of [`Self::from_raw_parts`] is preserved,
    /// and the result is independent of how a sequence of appends is
    /// batched — appending ids `A` then `B` is bitwise identical to
    /// appending `A ∪ B` at once. The *row order* is append order, not
    /// the pipeline's frequency-sorted order, so an appended grid is a
    /// valid (equally exact) interpolant with a different — still
    /// streaming — surplus layout.
    pub fn append_nodes(&mut self, grid: &SparseGrid, new_ids: &[u32]) {
        assert_eq!(grid.dim(), self.dim, "grid dim mismatch");
        use std::collections::HashMap;
        let mut seen: HashMap<XpsEntry, u32> = self
            .xps
            .iter()
            .enumerate()
            .map(|(id, &e)| (e, id as u32))
            .collect();

        for &p in new_ids {
            let node = grid.node(p as usize);
            let row_len = node.active_count();
            if row_len > self.nfreq {
                // Widen the stride: old rows are re-laid with trailing
                // zeros (the chain terminator), identical to what a
                // one-shot append with the wider stride would hold.
                let mut widened = vec![0u32; self.nno * row_len];
                for (r, chain) in self.chains.chunks_exact(self.nfreq).enumerate() {
                    widened[r * row_len..r * row_len + self.nfreq].copy_from_slice(chain);
                }
                self.chains = widened;
                self.nfreq = row_len;
            }
            let start = self.chains.len();
            self.chains.extend(std::iter::repeat_n(0, self.nfreq));
            for (k, c) in node.active().enumerate() {
                let (l, i) = basis::scaled_pair(c.level, c.index);
                debug_assert!(l >= 2, "active coord must be level >= 2");
                let entry = XpsEntry {
                    index: c.dim as u32,
                    l,
                    i,
                };
                let id = *seen.entry(entry).or_insert_with(|| {
                    self.xps.push(entry);
                    (self.xps.len() - 1) as u32
                });
                self.chains[start + k] = id;
            }
            self.order.push(p);
            self.nno += 1;
        }

        let nonzero = self.chains.iter().filter(|&&c| c != 0).count();
        self.stats = CompressionStats {
            zero_fraction: 1.0 - nonzero as f64 / (self.nno * self.dim).max(1) as f64,
            compressed_bytes: self.xps.len() * std::mem::size_of::<XpsEntry>()
                + self.chains.len() * 4,
            dense_bytes: self.nno * self.dim * 2 * std::mem::size_of::<u16>(),
        };
        debug_assert!(self.order.iter().all(|&o| (o as usize) < grid.len()));
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of grid points `nno`.
    #[inline]
    pub fn nno(&self) -> usize {
        self.nno
    }

    /// Number of frequencies (chain stride).
    #[inline]
    pub fn nfreq(&self) -> usize {
        self.nfreq
    }

    /// The unique-element array (`xps[0]` is the sentinel). Its length is
    /// the "# xps/state" column of Table I.
    #[inline]
    pub fn xps(&self) -> &[XpsEntry] {
        &self.xps
    }

    /// The chains matrix, row-major `nno × nfreq`.
    #[inline]
    pub fn chains(&self) -> &[u32] {
        &self.chains
    }

    /// Chain-position → original dense grid id.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Compression statistics.
    #[inline]
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// Permutes a row-major `nno × ndofs` matrix from grid order into chain
    /// order (the paper's "surplus matrix reordering").
    pub fn reorder_rows(&self, src: &[f64], ndofs: usize) -> Vec<f64> {
        assert_eq!(src.len(), self.nno * ndofs);
        let mut dst = vec![0.0; src.len()];
        for (new_pos, &orig) in self.order.iter().enumerate() {
            let from = orig as usize * ndofs;
            dst[new_pos * ndofs..(new_pos + 1) * ndofs].copy_from_slice(&src[from..from + ndofs]);
        }
        dst
    }

    /// Inverse of [`reorder_rows`](Self::reorder_rows).
    pub fn restore_rows(&self, src: &[f64], ndofs: usize) -> Vec<f64> {
        assert_eq!(src.len(), self.nno * ndofs);
        let mut dst = vec![0.0; src.len()];
        for (new_pos, &orig) in self.order.iter().enumerate() {
            let to = orig as usize * ndofs;
            dst[to..to + ndofs].copy_from_slice(&src[new_pos * ndofs..(new_pos + 1) * ndofs]);
        }
        dst
    }

    /// Fills `xpv` with the clamped basis values of every `xps` entry at
    /// `x` — the first loop of Fig. 5 (left). `xpv[0]` is 1 (sentinel).
    pub fn fill_xpv(&self, x: &[f64], xpv: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim);
        debug_assert_eq!(xpv.len(), self.xps.len());
        for (v, entry) in xpv.iter_mut().zip(&self.xps) {
            let xp = linear_basis(x[entry.index as usize], entry.l, entry.i);
            *v = xp.max(0.0);
        }
    }

    /// Ablation variant of [`interpolate_scalar`](Self::interpolate_scalar)
    /// *without* the surplus matrix reordering: `surplus` stays in the
    /// original grid order and every live point gathers its row through the
    /// `order` indirection. Chains and arithmetic are identical — only the
    /// memory access pattern changes from streaming to scattered, which is
    /// precisely the effect the paper's "surplus matrix reordering" removes.
    pub fn interpolate_scalar_unordered(
        &self,
        surplus_grid_order: &[f64],
        ndofs: usize,
        x: &[f64],
        xpv: &mut [f64],
        out: &mut [f64],
    ) {
        assert_eq!(surplus_grid_order.len(), self.nno * ndofs);
        assert_eq!(out.len(), ndofs);
        self.fill_xpv(x, xpv);
        out.fill(0.0);
        let nfreq = self.nfreq;
        for (p, chain) in self.chains.chunks_exact(nfreq).enumerate() {
            let mut temp = 1.0;
            let mut dead = false;
            for &idx in chain {
                if idx == 0 {
                    break;
                }
                temp *= xpv[idx as usize];
                if temp == 0.0 {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            let orig = self.order[p] as usize;
            let row = &surplus_grid_order[orig * ndofs..(orig + 1) * ndofs];
            for (o, s) in out.iter_mut().zip(row) {
                *o += temp * s;
            }
        }
    }

    /// Scalar compressed interpolation — a direct transcription of the
    /// paper's Fig. 5 (left) listing. `surplus` must already be in chain
    /// order (`reorder_rows`), row-major `nno × ndofs`; `out` accumulates
    /// from zero.
    pub fn interpolate_scalar(
        &self,
        surplus: &[f64],
        ndofs: usize,
        x: &[f64],
        xpv: &mut [f64],
        out: &mut [f64],
    ) {
        assert_eq!(surplus.len(), self.nno * ndofs);
        assert_eq!(out.len(), ndofs);
        self.fill_xpv(x, xpv);
        out.fill(0.0);
        let nfreq = self.nfreq;
        for (p, chain) in self.chains.chunks_exact(nfreq).enumerate() {
            let mut temp = 1.0;
            let mut dead = false;
            for &idx in chain {
                if idx == 0 {
                    break;
                }
                temp *= xpv[idx as usize];
                if temp == 0.0 {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            let row = &surplus[p * ndofs..(p + 1) * ndofs];
            for (o, s) in out.iter_mut().zip(row) {
                *o += temp * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{
        hierarchize, interpolate_reference, regular_grid, tabulate, NodeKey, SparseGrid,
    };

    fn smooth(x: &[f64], out: &mut [f64]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = x
                .iter()
                .enumerate()
                .map(|(t, &v)| ((t + 1) as f64 * v).sin() + (k as f64 + 0.5) * v * v)
                .sum::<f64>();
        }
    }

    fn check_equivalence(grid: &SparseGrid, ndofs: usize, points: &[Vec<f64>]) {
        let mut surplus = tabulate(grid, ndofs, smooth);
        hierarchize(grid, &mut surplus, ndofs);
        let cg = CompressedGrid::build(grid);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut got = vec![0.0; ndofs];
        let mut want = vec![0.0; ndofs];
        for x in points {
            cg.interpolate_scalar(&reordered, ndofs, x, &mut xpv, &mut got);
            interpolate_reference(grid, &surplus, ndofs, x, &mut want);
            for k in 0..ndofs {
                assert!(
                    (got[k] - want[k]).abs() < 1e-11,
                    "dof {k} at {x:?}: {} vs {}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    fn lattice_points(dim: usize, per_dim: usize) -> Vec<Vec<f64>> {
        // Deterministic off-grid sample points.
        let mut points = Vec::new();
        for s in 0..per_dim {
            let mut x = vec![0.0; dim];
            for (t, v) in x.iter_mut().enumerate() {
                *v = ((s as f64 + 0.37) * 0.61 + t as f64 * 0.217) % 1.0;
            }
            points.push(x);
        }
        points
    }

    #[test]
    fn equivalent_to_reference_on_regular_grids() {
        for dim in [1usize, 2, 3, 5] {
            for n in 2..=4u8 {
                let grid = regular_grid(dim, n);
                check_equivalence(&grid, 3, &lattice_points(dim, 25));
            }
        }
    }

    #[test]
    fn equivalent_on_adaptive_grid() {
        use hddm_asg::ActiveCoord;
        let mut grid = SparseGrid::new(3);
        grid.insert_closed(NodeKey::from_coords([
            ActiveCoord {
                dim: 0,
                level: 4,
                index: 3,
            },
            ActiveCoord {
                dim: 2,
                level: 3,
                index: 1,
            },
        ]));
        grid.insert_closed(NodeKey::from_coords([ActiveCoord {
            dim: 1,
            level: 5,
            index: 9,
        }]));
        check_equivalence(&grid, 2, &lattice_points(3, 40));
    }

    #[test]
    fn exact_at_grid_points() {
        let grid = regular_grid(4, 3);
        let ndofs = 2;
        let values = tabulate(&grid, ndofs, smooth);
        let mut surplus = values.clone();
        hierarchize(&grid, &mut surplus, ndofs);
        let cg = CompressedGrid::build(&grid);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut out = vec![0.0; ndofs];
        let mut x = vec![0.0; 4];
        for i in 0..grid.len() {
            grid.unit_point_of(i, &mut x);
            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut out);
            for k in 0..ndofs {
                assert!((out[k] - values[i * ndofs + k]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn raw_parts_roundtrip() {
        let grid = regular_grid(5, 3);
        let cg = CompressedGrid::build(&grid);
        let rebuilt = CompressedGrid::from_raw_parts(
            cg.dim(),
            cg.nfreq(),
            cg.xps().to_vec(),
            cg.chains().to_vec(),
            cg.order().to_vec(),
        );
        assert_eq!(rebuilt.nno(), cg.nno());
        assert_eq!(rebuilt.chains(), cg.chains());
        assert_eq!(rebuilt.order(), cg.order());
        assert!((rebuilt.stats().zero_fraction - cg.stats().zero_fraction).abs() < 1e-12);
        // The rebuilt grid interpolates identically.
        let ndofs = 2;
        let mut surplus = tabulate(&grid, ndofs, smooth);
        hierarchize(&grid, &mut surplus, ndofs);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for x in lattice_points(5, 10) {
            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut a);
            rebuilt.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "order is not a permutation")]
    fn raw_parts_reject_bad_order() {
        let grid = regular_grid(3, 3);
        let cg = CompressedGrid::build(&grid);
        let mut order = cg.order().to_vec();
        order[0] = order[1];
        let _ = CompressedGrid::from_raw_parts(
            cg.dim(),
            cg.nfreq(),
            cg.xps().to_vec(),
            cg.chains().to_vec(),
            order,
        );
    }

    #[test]
    #[should_panic(expected = "chain entry out of xps range")]
    fn raw_parts_reject_dangling_chain() {
        let grid = regular_grid(3, 3);
        let cg = CompressedGrid::build(&grid);
        let mut chains = cg.chains().to_vec();
        chains[0] = cg.xps().len() as u32 + 7;
        let _ = CompressedGrid::from_raw_parts(
            cg.dim(),
            cg.nfreq(),
            cg.xps().to_vec(),
            chains,
            cg.order().to_vec(),
        );
    }

    #[test]
    fn unordered_variant_matches_reordered() {
        let grid = regular_grid(4, 4);
        let ndofs = 3;
        let mut surplus = tabulate(&grid, ndofs, smooth);
        hierarchize(&grid, &mut surplus, ndofs);
        let cg = CompressedGrid::build(&grid);
        let reordered = cg.reorder_rows(&surplus, ndofs);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for x in lattice_points(4, 30) {
            cg.interpolate_scalar(&reordered, ndofs, &x, &mut xpv, &mut a);
            cg.interpolate_scalar_unordered(&surplus, ndofs, &x, &mut xpv, &mut b);
            for k in 0..ndofs {
                assert!((a[k] - b[k]).abs() < 1e-12, "dof {k} at {x:?}");
            }
        }
    }

    #[test]
    fn reorder_roundtrip() {
        let grid = regular_grid(3, 3);
        let cg = CompressedGrid::build(&grid);
        let src: Vec<f64> = (0..grid.len() * 2).map(|v| v as f64).collect();
        let there = cg.reorder_rows(&src, 2);
        let back = cg.restore_rows(&there, 2);
        assert_eq!(src, back);
    }

    #[test]
    fn order_is_permutation() {
        let grid = regular_grid(5, 3);
        let cg = CompressedGrid::build(&grid);
        let mut seen = vec![false; grid.len()];
        for &orig in cg.order() {
            assert!(!seen[orig as usize], "duplicate {orig}");
            seen[orig as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chains_complexity_is_nno_times_nfreq() {
        // The headline claim of Sec. IV-B: iteration count drops from
        // nno × d to nno × nfreq.
        let grid = regular_grid(59, 3);
        let cg = CompressedGrid::build(&grid);
        assert_eq!(cg.nfreq(), 2);
        assert_eq!(cg.chains().len(), grid.len() * 2);
        // vs. dense: grid.len() * 59 iterations.
        assert!(cg.chains().len() * 29 < grid.len() * 59);
    }

    #[test]
    fn compression_shrinks_memory() {
        let grid = regular_grid(59, 3);
        let cg = CompressedGrid::build(&grid);
        let stats = cg.stats();
        assert!(
            stats.compressed_bytes * 5 < stats.dense_bytes,
            "compressed {} vs dense {}",
            stats.compressed_bytes,
            stats.dense_bytes
        );
        assert!(stats.zero_fraction > 0.96);
    }

    #[test]
    fn root_only_grid() {
        let mut grid = SparseGrid::new(7);
        grid.insert(NodeKey::root());
        let cg = CompressedGrid::build(&grid);
        assert_eq!(cg.nno(), 1);
        assert_eq!(cg.nfreq(), 1);
        assert_eq!(cg.chains(), &[0]);
        let surplus = vec![3.25];
        let reordered = cg.reorder_rows(&surplus, 1);
        let mut xpv = vec![0.0; cg.xps().len()];
        let mut out = [0.0];
        cg.interpolate_scalar(&reordered, 1, &[0.1; 7], &mut xpv, &mut out);
        assert_eq!(out[0], 3.25);
    }

    #[test]
    fn append_nodes_batching_is_invisible() {
        // Appending in many small batches must be bitwise identical to
        // one big append — the extend-equals-rebuild contract.
        let grid = regular_grid(4, 4);
        let all: Vec<u32> = (0..grid.len() as u32).collect();
        let mut oneshot = CompressedGrid::empty(4);
        oneshot.append_nodes(&grid, &all);
        let mut batched = CompressedGrid::empty(4);
        let mut at = 0usize;
        let mut step = 1usize;
        while at < all.len() {
            let end = (at + step).min(all.len());
            batched.append_nodes(&grid, &all[at..end]);
            at = end;
            step = step * 2 + 1;
        }
        assert_eq!(oneshot.nno(), batched.nno());
        assert_eq!(oneshot.nfreq(), batched.nfreq());
        assert_eq!(oneshot.xps(), batched.xps());
        assert_eq!(oneshot.chains(), batched.chains());
        assert_eq!(oneshot.order(), batched.order());
    }

    #[test]
    fn appended_grid_interpolates_like_the_pipeline() {
        // Append order differs from the pipeline's frequency-sorted
        // order, but the interpolant it represents is the same function.
        let grid = regular_grid(3, 4);
        let ndofs = 2;
        let mut surplus = tabulate(&grid, ndofs, smooth);
        hierarchize(&grid, &mut surplus, ndofs);

        let built = CompressedGrid::build(&grid);
        let built_rows = built.reorder_rows(&surplus, ndofs);

        let all: Vec<u32> = (0..grid.len() as u32).collect();
        let mut appended = CompressedGrid::empty(3);
        appended.append_nodes(&grid, &all);
        // Append order == grid order, so the surplus matrix needs no
        // permutation at all (order is the identity here).
        assert!(appended
            .order()
            .iter()
            .enumerate()
            .all(|(i, &o)| i == o as usize));
        let appended_rows = appended.reorder_rows(&surplus, ndofs);
        assert_eq!(appended_rows, surplus);

        // Invariants of from_raw_parts hold for the appended structure.
        let revalidated = CompressedGrid::from_raw_parts(
            appended.dim(),
            appended.nfreq(),
            appended.xps().to_vec(),
            appended.chains().to_vec(),
            appended.order().to_vec(),
        );
        assert!((revalidated.stats().zero_fraction - appended.stats().zero_fraction).abs() < 1e-12);

        let mut xpv_a = vec![0.0; built.xps().len()];
        let mut xpv_b = vec![0.0; appended.xps().len()];
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for x in lattice_points(3, 30) {
            built.interpolate_scalar(&built_rows, ndofs, &x, &mut xpv_a, &mut a);
            appended.interpolate_scalar(&appended_rows, ndofs, &x, &mut xpv_b, &mut b);
            for k in 0..ndofs {
                assert!((a[k] - b[k]).abs() < 1e-12, "dof {k} at {x:?}");
            }
        }
    }

    #[test]
    fn append_widens_the_chain_stride_in_place() {
        use hddm_asg::ActiveCoord;
        let mut grid = SparseGrid::new(3);
        grid.insert(NodeKey::root());
        let first = grid.len() as u32;
        let mut cg = CompressedGrid::empty(3);
        cg.append_nodes(&grid, &(0..first).collect::<Vec<_>>());
        assert_eq!(cg.nfreq(), 1);
        // A node with three active dims forces nfreq 1 → 3.
        grid.insert_closed(NodeKey::from_coords([
            ActiveCoord {
                dim: 0,
                level: 2,
                index: 0,
            },
            ActiveCoord {
                dim: 1,
                level: 2,
                index: 2,
            },
            ActiveCoord {
                dim: 2,
                level: 2,
                index: 0,
            },
        ]));
        let rest: Vec<u32> = (first..grid.len() as u32).collect();
        cg.append_nodes(&grid, &rest);
        assert_eq!(cg.nfreq(), 3);
        assert_eq!(cg.nno(), grid.len());
        assert_eq!(cg.chains().len(), grid.len() * 3);
        // Widened old rows terminate with zeros.
        assert_eq!(&cg.chains()[..3], &[0, 0, 0]);
    }

    #[test]
    #[allow(deprecated)]
    fn build_counter_counts_pipeline_runs_only() {
        let grid = regular_grid(3, 3);
        let before = crate::compression_builds();
        let global_before = crate::builds_total();
        let _ = CompressedGrid::build(&grid);
        let mut inc = CompressedGrid::empty(3);
        inc.append_nodes(&grid, &(0..grid.len() as u32).collect::<Vec<_>>());
        assert_eq!(crate::compression_builds(), before + 1);
        // The registry counter moves in lockstep (other test threads may
        // add more, so >= rather than ==).
        assert!(crate::builds_total() > global_before);
    }

    #[test]
    fn xpv_fits_gpu_shared_memory_for_300k_grid() {
        // Sec. IV-B: xps of the 300k grid (473 doubles) "easily fits the
        // cache as well as the GPU shared memory (48 KB)".
        let grid = regular_grid(59, 4);
        let cg = CompressedGrid::build(&grid);
        assert_eq!(cg.xps().len(), 473);
        assert!(cg.xps().len() * 8 < 48 * 1024);
    }
}
