//! # hddm-serve — the scenario serving front-end
//!
//! The paper's end goal is *interactive* large-scale economic modeling:
//! solved policy surfaces should be servable, not just batch-computable.
//! This crate turns the scenario engine (`hddm-scenarios`) into a
//! request/response service — the API seam the distributed-sweep and
//! async-serving roadmap items build on.
//!
//! The [`ScenarioService`] facade answers each [`ScenarioRequest`] along
//! a three-way decision tree:
//!
//! ```text
//!                 submit(request)
//!                       │
//!            exact hash in cache? ──yes──▶ answer now (0 solver steps;
//!                       │                  sharded concurrent read path,
//!                       no                 disk restore outside locks)
//!                       │
//!         same-shape neighbour within
//!         the warm radius? ──yes──▶ enqueue + attach WarmHint
//!                       │           (solve will warm start)
//!                       no
//!                       │
//!                  enqueue cold
//!
//!   queue ──(linger window, ≤ max_batch)──▶ ScenarioSet micro-batch
//!         ──▶ incremental batch executor ──▶ fulfill tickets as each
//!                                            scenario completes
//! ```
//!
//! Design constraints inherited from the workspace: **no external async
//! runtime** — plain threads, condvars, and the executor's completion
//! handle ([`hddm_scenarios::BatchHandle`]); identical pending requests
//! coalesce into one solve; the queue is bounded (back-pressure via
//! [`ServeError::QueueFull`], never unbounded buffering). Requests may
//! carry a [`deadline`](ScenarioRequest::deadline): ones still queued
//! when it passes are shed with [`ServeError::DeadlineExceeded`] — at
//! batch-seal time and in the full-queue sweep — without consuming a
//! solve. [`ScenarioService::stats`] exposes the admission, shedding,
//! and queue-depth counters as a [`ServiceStats`] snapshot.
//!
//! ```
//! use hddm_olg::Calibration;
//! use hddm_scenarios::{CacheKind, ExecutorConfig, Scenario, SurfaceCache};
//! use hddm_serve::{ScenarioRequest, ScenarioService, ServeConfig};
//!
//! let mut base = Scenario::from_calibration("serve-demo", Calibration::small(4, 3, 2, 0.03));
//! base.solve.tolerance = 1e-6;
//! base.solve.max_steps = 50;
//! let service = ScenarioService::new(
//!     SurfaceCache::default(),
//!     ServeConfig { executor: ExecutorConfig::serial(), ..ServeConfig::default() },
//! );
//! // Cold miss: micro-batched through the executor.
//! let cold = service.call(ScenarioRequest::new(base.clone())).unwrap();
//! assert_eq!(cold.kind(), CacheKind::Cold);
//! assert!(cold.report.converged);
//! assert!(cold.batch_size >= 1);
//! // Identical request again: exact hit served straight from the cache.
//! let hit = service.call(ScenarioRequest::new(base)).unwrap();
//! assert_eq!(hit.kind(), CacheKind::Exact);
//! assert_eq!(hit.report.steps, 0);
//! assert_eq!(hit.batch_size, 0);
//! ```

#![warn(missing_docs)]

mod service;
mod types;

pub use service::{ScenarioService, Ticket};
pub use types::{
    ScenarioRequest, ScenarioResponse, ServeConfig, ServeError, ServiceStats, WarmHint,
};
