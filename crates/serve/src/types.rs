//! The typed request/response surface of the scenario serving API.

use std::time::Duration;

use hddm_scenarios::{CacheKind, ExecutorConfig, ExecutorError, HashId, Scenario, ScenarioReport};

/// Configuration of a [`ScenarioService`](crate::ScenarioService).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Executor the micro-batches are dispatched to (fleet, host
    /// threads, kernel, warm-start policy, persistent cache directory).
    pub executor: ExecutorConfig,
    /// Maximum scenarios coalesced into one dispatched micro-batch.
    pub max_batch: usize,
    /// Bound of the pending queue, in scenario groups (requests for the
    /// same scenario coalesce into one group). Submissions beyond the
    /// bound fail fast with [`ServeError::QueueFull`] instead of
    /// buffering without limit.
    pub queue_capacity: usize,
    /// How long a dispatcher waits after the first pending request for
    /// more to coalesce before sealing the micro-batch. Zero dispatches
    /// immediately (no coalescing window).
    pub linger: Duration,
    /// Dispatcher worker threads draining the queue (each seals and runs
    /// its own micro-batches; clamped to ≥ 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            executor: ExecutorConfig::default(),
            max_batch: 8,
            queue_capacity: 256,
            linger: Duration::from_millis(2),
            workers: 2,
        }
    }
}

/// One scenario request: the fully resolved scenario plus the per-request
/// serving policy.
#[derive(Clone, Debug)]
pub struct ScenarioRequest {
    /// The scenario to serve.
    pub scenario: Scenario,
    /// Whether a nearby cached surface may seed a warm start (and be
    /// reported as [`ScenarioResponse::warm_hint`]). `false` forces a
    /// cold solve on any non-exact lookup.
    pub allow_warm: bool,
    /// Latency budget measured from submission. A request still queued
    /// when its deadline passes is shed with
    /// [`ServeError::DeadlineExceeded`] instead of burning a solve the
    /// caller no longer wants; shedding happens at batch-seal time and
    /// when a full queue sweeps for expired groups. `None` (the default)
    /// waits indefinitely. The deadline gates *admission to dispatch*,
    /// not the solve itself — a request dispatched just inside its
    /// deadline still runs to completion.
    pub deadline: Option<Duration>,
}

impl ScenarioRequest {
    /// A request with the default serving policy (warm starts allowed).
    pub fn new(scenario: Scenario) -> ScenarioRequest {
        ScenarioRequest {
            scenario,
            allow_warm: true,
            deadline: None,
        }
    }

    /// A request that refuses warm starts: exact hit or cold solve.
    pub fn cold_only(scenario: Scenario) -> ScenarioRequest {
        ScenarioRequest {
            scenario,
            allow_warm: false,
            deadline: None,
        }
    }

    /// Sets the latency budget (see [`ScenarioRequest::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> ScenarioRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Nearest warm-start candidate reported on a near miss — the metadata
/// the service extracts from the cache index at admission time, before
/// the solve runs (and without any record-file I/O).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmHint {
    /// Content hash of the nearest same-shape cached scenario.
    pub source: HashId,
    /// Fingerprint distance between the request and the candidate.
    pub distance: f64,
    /// The candidate's measured solve cost — a latency estimate for the
    /// enqueued solve.
    pub estimated_cost_seconds: f64,
}

/// The served answer for one request.
#[derive(Clone, Debug)]
pub struct ScenarioResponse {
    /// The solve (or zero-step exact-hit) telemetry. `report.cache` is
    /// the decision-tree outcome: `Exact` (served from the cache, zero
    /// steps), `Warm` (solved, seeded from a nearby surface), `Cold`
    /// (solved from the steady-state guess).
    pub report: ScenarioReport,
    /// Nearest warm-start candidate known at admission time (`None` for
    /// exact hits, cold-only requests, and requests with no same-shape
    /// neighbour in radius).
    pub warm_hint: Option<WarmHint>,
    /// Scenarios in the dispatched micro-batch this request rode in
    /// (1 for a lone miss; 0 for the exact-hit fast path, which never
    /// touches the queue).
    pub batch_size: usize,
    /// Seconds the request waited in the queue before dispatch (0 for
    /// the exact-hit fast path).
    pub queue_seconds: f64,
    /// Seconds from submission to response.
    pub total_seconds: f64,
}

impl ScenarioResponse {
    /// The decision-tree outcome (`Exact` / `Warm` / `Cold`).
    pub fn kind(&self) -> CacheKind {
        self.report.cache
    }

    /// Content hash of the served scenario.
    pub fn hash(&self) -> HashId {
        self.report.hash
    }
}

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The scenario failed validation at admission.
    Invalid(String),
    /// The pending queue is at capacity; retry later (back-pressure).
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The request's [`deadline`](ScenarioRequest::deadline) passed while
    /// it waited in the queue; it was shed without consuming a solve.
    DeadlineExceeded {
        /// The latency budget the request was submitted with.
        deadline: Duration,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The persistent cache directory could not be opened.
    Cache(String),
    /// The dispatched solve failed.
    Executor(ExecutorError),
    /// A dispatcher died without delivering this request's result.
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(reason) => write!(f, "invalid scenario: {reason}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "serving queue is full ({capacity} pending groups)")
            }
            ServeError::DeadlineExceeded { deadline } => {
                write!(
                    f,
                    "deadline of {:.3}s passed while the request was queued",
                    deadline.as_secs_f64()
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Cache(reason) => write!(f, "cache directory unusable: {reason}"),
            ServeError::Executor(e) => write!(f, "executor failed: {e}"),
            ServeError::WorkerLost => write!(f, "dispatcher died before delivering the result"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecutorError> for ServeError {
    fn from(e: ExecutorError) -> Self {
        ServeError::Executor(e)
    }
}

/// A consistent snapshot of the service's admission and dispatch
/// counters ([`ScenarioService::stats`](crate::ScenarioService::stats)).
/// All counters are cumulative since the service started; only
/// [`queue_depth`](ServiceStats::queue_depth) is instantaneous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that passed validation (exact hits, coalesced waiters,
    /// enqueued groups, and queue-full rejections all count).
    pub submitted: u64,
    /// Requests answered on the caller's thread from the cache.
    pub exact_hits: u64,
    /// Groups newly placed on the queue (one per distinct pending
    /// scenario/policy).
    pub enqueued_groups: u64,
    /// Requests that attached to an already-pending identical group
    /// instead of enqueueing their own.
    pub coalesced_waiters: u64,
    /// Submissions rejected with [`ServeError::QueueFull`] after the
    /// expired-group sweep failed to free a slot.
    pub rejected_queue_full: u64,
    /// Waiters answered with [`ServeError::DeadlineExceeded`] because
    /// their deadline passed before dispatch.
    pub shed_waiters: u64,
    /// Queued groups dropped whole — every waiter expired — without
    /// consuming a solve.
    pub shed_groups: u64,
    /// Micro-batches handed to the executor.
    pub dispatched_batches: u64,
    /// Scenario groups those micro-batches contained.
    pub dispatched_groups: u64,
    /// Pending groups on the queue right now.
    pub queue_depth: u64,
    /// High-water mark of the pending queue since the service started.
    pub queue_depth_peak: u64,
}
