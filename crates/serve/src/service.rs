//! The [`ScenarioService`] itself: admission (exact-hit fast path, warm
//! probing), the bounded coalescing queue, and the dispatcher workers.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hddm_scenarios::{
    fingerprint, run_batch, scenario_hash, ExecutorConfig, ScenarioReport, ScenarioSet, ShapeKey,
    SurfaceCache,
};
use hddm_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::types::{
    ScenarioRequest, ScenarioResponse, ServeConfig, ServeError, ServiceStats, WarmHint,
};

/// The completion slot a [`Ticket`] waits on.
type Slot = Arc<(Mutex<Option<Result<ScenarioResponse, ServeError>>>, Condvar)>;

fn recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(|poisoned| {
        lock.clear_poison();
        poisoned.into_inner()
    })
}

/// A pending response: returned by [`ScenarioService::submit`]
/// immediately (pre-filled for exact hits), fulfilled by a dispatcher
/// for queued misses.
#[derive(Debug)]
pub struct Ticket {
    slot: Slot,
}

impl Ticket {
    fn pending() -> (Ticket, Slot) {
        let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
        (
            Ticket {
                slot: Arc::clone(&slot),
            },
            slot,
        )
    }

    fn ready(result: Result<ScenarioResponse, ServeError>) -> Ticket {
        Ticket {
            slot: Arc::new((Mutex::new(Some(result)), Condvar::new())),
        }
    }

    /// Non-blocking peek: `Some` once the response (or error) is in.
    pub fn poll(&self) -> Option<Result<ScenarioResponse, ServeError>> {
        recover(&self.slot.0).clone()
    }

    /// Blocks until the response is in.
    pub fn wait(self) -> Result<ScenarioResponse, ServeError> {
        let (lock, cv) = &*self.slot;
        let mut slot = recover(lock);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = cv.wait(slot).unwrap_or_else(|poisoned| {
                lock.clear_poison();
                poisoned.into_inner()
            });
        }
    }
}

/// One waiter on a queued group: the ticket's completion slot plus the
/// request's latency budget — both the absolute expiry (for the shed
/// check) and the requested duration (for the error the caller sees).
struct Waiter {
    slot: Slot,
    deadline: Option<(Instant, Duration)>,
}

impl Waiter {
    fn fulfill(&self, result: Result<ScenarioResponse, ServeError>) {
        *recover(&self.slot.0) = Some(result);
        self.slot.1.notify_all();
    }
}

/// One queued scenario group: the representative scenario plus every
/// ticket waiting on it (identical in-queue requests coalesce here — one
/// solve fans out to all waiters). The drop guard turns an abandoned
/// group (dispatcher panic) into [`ServeError::WorkerLost`] instead of a
/// forever-blocked ticket.
struct Group {
    scenario: hddm_scenarios::Scenario,
    hash: u64,
    shape: ShapeKey,
    fingerprint: Vec<f64>,
    allow_warm: bool,
    warm_hint: Option<WarmHint>,
    enqueued: Instant,
    waiters: Vec<Waiter>,
    fulfilled: bool,
}

impl Group {
    fn fulfill(&mut self, result: Result<ScenarioResponse, ServeError>) {
        self.fulfilled = true;
        for waiter in self.waiters.drain(..) {
            waiter.fulfill(result.clone());
        }
    }

    /// Answers every waiter whose deadline has passed with
    /// [`ServeError::DeadlineExceeded`] and removes it. Returns `false`
    /// (and marks the group fulfilled — no solve owed) when no live
    /// waiter remains.
    fn shed_expired(&mut self, now: Instant, metrics: &Instruments) -> bool {
        self.waiters.retain(|w| match w.deadline {
            Some((expires, requested)) if now >= expires => {
                w.fulfill(Err(ServeError::DeadlineExceeded {
                    deadline: requested,
                }));
                metrics.shed_waiters.inc();
                false
            }
            _ => true,
        });
        if self.waiters.is_empty() {
            self.fulfilled = true;
            metrics.shed_groups.inc();
            return false;
        }
        true
    }
}

impl Drop for Group {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.fulfill(Err(ServeError::WorkerLost));
        }
    }
}

struct QueueState {
    groups: VecDeque<Group>,
    shutdown: bool,
}

/// Registry-backed admission/dispatch instruments behind
/// [`ScenarioService::stats`]. The counters are lock-free relaxed atomics
/// (each an independent monotone tally, not a synchronization edge); the
/// histograms time the serving phases: exact-hit latency, the warm-hint
/// probe, queue wait, and batch solves. All live in the cache's registry,
/// so one snapshot covers admission, cache traffic, and the dispatched
/// solves' driver phases together.
struct Instruments {
    registry: Registry,
    submitted: Arc<Counter>,
    exact_hits: Arc<Counter>,
    enqueued_groups: Arc<Counter>,
    coalesced_waiters: Arc<Counter>,
    rejected_queue_full: Arc<Counter>,
    shed_waiters: Arc<Counter>,
    shed_groups: Arc<Counter>,
    dispatched_batches: Arc<Counter>,
    dispatched_groups: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_depth_peak: Arc<Gauge>,
    exact_hit_seconds: Arc<Histogram>,
    warm_hint_seconds: Arc<Histogram>,
    queue_wait_seconds: Arc<Histogram>,
    batch_solve_seconds: Arc<Histogram>,
}

impl Instruments {
    fn new(registry: Registry) -> Instruments {
        Instruments {
            submitted: registry.counter("hddm_serve_submitted_total"),
            exact_hits: registry.counter("hddm_serve_exact_hits_total"),
            enqueued_groups: registry.counter("hddm_serve_enqueued_groups_total"),
            coalesced_waiters: registry.counter("hddm_serve_coalesced_waiters_total"),
            rejected_queue_full: registry.counter("hddm_serve_rejected_queue_full_total"),
            shed_waiters: registry.counter("hddm_serve_shed_waiters_total"),
            shed_groups: registry.counter("hddm_serve_shed_groups_total"),
            dispatched_batches: registry.counter("hddm_serve_dispatched_batches_total"),
            dispatched_groups: registry.counter("hddm_serve_dispatched_groups_total"),
            queue_depth: registry.gauge("hddm_serve_queue_depth"),
            queue_depth_peak: registry.gauge("hddm_serve_queue_depth_peak"),
            exact_hit_seconds: registry.histogram("hddm_serve_exact_hit_seconds"),
            warm_hint_seconds: registry.histogram("hddm_serve_warm_hint_seconds"),
            queue_wait_seconds: registry.histogram("hddm_serve_queue_wait_seconds"),
            batch_solve_seconds: registry.histogram("hddm_serve_batch_solve_seconds"),
            registry,
        }
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    metrics: Instruments,
}

/// The non-blocking scenario serving facade over the scenario engine:
///
/// * **exact hit** — the scenario's content hash is cached (in memory or
///   in the persistent index): the response is built on the caller's
///   thread from the cached surface, with zero solver steps. Concurrent
///   callers read through the sharded cache (and restore record files
///   from disk outside any lock), so hit latency does not serialize;
/// * **near miss** — no exact surface, but a same-shape neighbour lies
///   within the warm radius: the request is enqueued for a warm-started
///   solve and the response carries the neighbour as a [`WarmHint`];
/// * **cold miss** — nothing usable cached: the request is enqueued for
///   a cold solve.
///
/// Enqueued misses land on a bounded queue where identical scenarios
/// coalesce into one group; dispatcher threads seal up to
/// [`ServeConfig::max_batch`] groups (after a [`ServeConfig::linger`]
/// coalescing window) into a [`ScenarioSet`] micro-batch and run it
/// through the incremental batch executor
/// ([`run_batch`](hddm_scenarios::run_batch)), fulfilling each ticket as
/// its scenario completes. No async runtime: plain threads, condvars,
/// and the executor's completion handle.
pub struct ScenarioService {
    cache: SurfaceCache,
    config: ServeConfig,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScenarioService {
    /// Starts a service over an existing cache handle (shared with any
    /// other holder — sweeps warming the cache concurrently are visible
    /// to the service immediately).
    pub fn new(cache: SurfaceCache, config: ServeConfig) -> ScenarioService {
        let workers = config.workers.max(1);
        ScenarioService::spawn(cache, config, workers)
    }

    /// Starts a service, opening the cache the executor configuration
    /// describes (persistent when `executor.cache_dir` is set).
    pub fn open(config: ServeConfig) -> Result<ScenarioService, ServeError> {
        let cache = config.executor.open_cache().map_err(ServeError::Cache)?;
        Ok(ScenarioService::new(cache, config))
    }

    /// Spawns with an explicit worker count; `workers == 0` (tests only)
    /// leaves the queue undrained.
    fn spawn(cache: SurfaceCache, config: ServeConfig, workers: usize) -> ScenarioService {
        // The service's instruments live in the cache's registry: one
        // snapshot covers admission, cache traffic, and solve phases.
        let registry = cache.registry().clone();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                groups: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            metrics: Instruments::new(registry.clone()),
        });
        // Refresh the live queue-depth gauge ahead of every snapshot; the
        // Weak keeps the registry from holding the queue alive after the
        // service is dropped.
        let weak = Arc::downgrade(&shared);
        registry.on_collect(move || {
            if let Some(shared) = weak.upgrade() {
                shared
                    .metrics
                    .queue_depth
                    .set(recover(&shared.queue).groups.len() as u64);
            }
        });
        let handles = (0..workers)
            .map(|_| {
                let cache = cache.clone();
                let config = config.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatcher_loop(&cache, &config, &shared))
            })
            .collect();
        ScenarioService {
            cache,
            config,
            shared,
            workers: handles,
        }
    }

    /// The cache this service serves from.
    pub fn cache(&self) -> &SurfaceCache {
        &self.cache
    }

    /// The registry holding this service's instruments (`hddm_serve_*`)
    /// — shared with the cache's (`hddm_cache_*`) and, through the
    /// executor, the dispatched solves' phase spans (`hddm_solve_*`).
    pub fn registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// Admits a request and returns a [`Ticket`] without blocking on any
    /// solve. Exact hits come back pre-fulfilled (the lookup — including
    /// a lazy disk restore — runs on the calling thread, concurrently
    /// with other callers); misses are enqueued for micro-batching.
    pub fn submit(&self, request: ScenarioRequest) -> Result<Ticket, ServeError> {
        let admitted = Instant::now();
        request.scenario.validate().map_err(ServeError::Invalid)?;
        let metrics = &self.shared.metrics;
        metrics.submitted.inc();
        // The latency budget becomes an absolute expiry at admission;
        // the requested duration rides along for the shed error.
        let deadline = request.deadline.map(|d| (admitted + d, d));
        let scenario = request.scenario;
        let hash = scenario_hash(&scenario);
        // One derivation of the cache identity (ShapeKey::of is shared
        // with the executor's solve-time lookups — the probe here and
        // the dispatched solve must never disagree).
        let shape = ShapeKey::of(&scenario);
        let fp = fingerprint(&scenario);

        // Exact-hit fast path: answer from the cache immediately. The
        // warm path is deliberately not taken here — a warm start still
        // costs a solve, which belongs on the batch queue. The probe is
        // telemetry-neutral on a miss: the dispatched solve's own lookup
        // accounts for it (counting here too would double every miss).
        if let Some(surface) = self.cache.lookup_exact(hash, shape, &fp) {
            let mut report = ScenarioReport::from_exact_hit(
                &scenario.name,
                &surface,
                admitted.elapsed().as_secs_f64(),
            );
            report.worker = "serve-cache".into();
            metrics.exact_hits.inc();
            metrics
                .exact_hit_seconds
                .record(admitted.elapsed().as_secs_f64());
            return Ok(Ticket::ready(Ok(ScenarioResponse {
                report,
                warm_hint: None,
                batch_size: 0,
                queue_seconds: 0.0,
                total_seconds: admitted.elapsed().as_secs_f64(),
            })));
        }

        // A bare hash match is not identity: a colliding hash with a
        // different shape/fingerprint is a *different* scenario (the
        // cache demotes exactly this case), and coalescing it would
        // answer one request with another scenario's surface. Compare
        // the full cache identity.
        let same_group = |g: &Group| {
            g.hash == hash
                && g.shape == shape
                && g.fingerprint == fp
                && g.allow_warm == request.allow_warm
        };

        let (ticket, slot) = Ticket::pending();

        // Coalescing fast path: if an identical scenario is already
        // pending, attach to its group without paying the near-miss
        // probe below (the group keeps the first submitter's hint).
        {
            let mut state = recover(&self.shared.queue);
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if let Some(group) = state.groups.iter_mut().find(|g| same_group(g)) {
                group.waiters.push(Waiter { slot, deadline });
                metrics.coalesced_waiters.inc();
                drop(state);
                self.shared.cv.notify_all();
                return Ok(ticket);
            }
        }

        // Near-miss probe (outside the queue lock — it scans every shard
        // and the persistent index): index metadata only, no record I/O.
        let warm_hint = if request.allow_warm {
            let span = hddm_telemetry::SpanTimer::start(Arc::clone(&metrics.warm_hint_seconds));
            let hint = self.cache.nearest_neighbour(shape, &fp).map(|n| WarmHint {
                source: n.hash,
                distance: n.distance,
                estimated_cost_seconds: n.cost_seconds,
            });
            span.stop();
            hint
        } else {
            None
        };

        {
            let mut state = recover(&self.shared.queue);
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            // Re-check: an identical request may have enqueued while the
            // probe ran. Coalesce then (the fresh hint is redundant).
            if let Some(group) = state.groups.iter_mut().find(|g| same_group(g)) {
                group.waiters.push(Waiter { slot, deadline });
                metrics.coalesced_waiters.inc();
            } else {
                if state.groups.len() >= self.config.queue_capacity {
                    // Deadline-aware back-pressure: before rejecting,
                    // shed queued groups whose every waiter has already
                    // expired — they will never be served in time, and
                    // each one freed admits a live request instead.
                    let now = Instant::now();
                    state.groups.retain_mut(|g| g.shed_expired(now, metrics));
                }
                if state.groups.len() >= self.config.queue_capacity {
                    metrics.rejected_queue_full.inc();
                    return Err(ServeError::QueueFull {
                        capacity: self.config.queue_capacity,
                    });
                }
                state.groups.push_back(Group {
                    scenario,
                    hash,
                    shape,
                    fingerprint: fp,
                    allow_warm: request.allow_warm,
                    warm_hint,
                    enqueued: admitted,
                    waiters: vec![Waiter { slot, deadline }],
                    fulfilled: false,
                });
                metrics.enqueued_groups.inc();
                metrics
                    .queue_depth_peak
                    .fetch_max(state.groups.len() as u64);
            }
        }
        self.shared.cv.notify_all();
        Ok(ticket)
    }

    /// [`ScenarioService::submit`] + [`Ticket::wait`]: the blocking
    /// convenience call.
    pub fn call(&self, request: ScenarioRequest) -> Result<ScenarioResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Pending groups currently queued (coalesced; an exact-hit fast
    /// path never appears here).
    pub fn queue_depth(&self) -> usize {
        recover(&self.shared.queue).groups.len()
    }

    /// Snapshot of the admission and dispatch counters — a structured
    /// view over the registry's instruments. The live queue-depth gauge
    /// is refreshed first through the same path the registry's collect
    /// hook uses, so a [`Registry::snapshot`] taken at the same quiescent
    /// instant reports bit-identical values.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.shared.metrics;
        m.queue_depth.set(self.queue_depth() as u64);
        ServiceStats {
            submitted: m.submitted.get(),
            exact_hits: m.exact_hits.get(),
            enqueued_groups: m.enqueued_groups.get(),
            coalesced_waiters: m.coalesced_waiters.get(),
            rejected_queue_full: m.rejected_queue_full.get(),
            shed_waiters: m.shed_waiters.get(),
            shed_groups: m.shed_groups.get(),
            dispatched_batches: m.dispatched_batches.get(),
            dispatched_groups: m.dispatched_groups.get(),
            queue_depth: m.queue_depth.get(),
            queue_depth_peak: m.queue_depth_peak.get(),
        }
    }
}

impl Drop for ScenarioService {
    fn drop(&mut self) {
        {
            let mut state = recover(&self.shared.queue);
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        // Graceful: dispatchers drain every already-admitted group
        // before exiting, so no accepted ticket is abandoned.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One dispatcher: seal a micro-batch (first pending group + whatever
/// arrives within the linger window, up to `max_batch`), run it through
/// the incremental executor, fulfill tickets as scenarios complete.
fn dispatcher_loop(cache: &SurfaceCache, config: &ServeConfig, shared: &Shared) {
    let max_batch = config.max_batch.max(1);
    loop {
        let mut batch: Vec<Group> = Vec::new();
        {
            let mut state = recover(&shared.queue);
            loop {
                if !state.groups.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.cv.wait(state).unwrap_or_else(|poisoned| {
                    shared.queue.clear_poison();
                    poisoned.into_inner()
                });
            }
            // Coalescing window: hold the batch open briefly so near-
            // simultaneous misses ride together (unless it is already
            // full, or the service is shutting down).
            if !config.linger.is_zero() {
                let deadline = Instant::now() + config.linger;
                while state.groups.len() < max_batch && !state.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    state = shared
                        .cv
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poisoned| {
                            shared.queue.clear_poison();
                            poisoned.into_inner()
                        })
                        .0;
                }
            }
            // Seal-time shedding: a group whose every waiter expired
            // during the wait is dropped here, *before* it can occupy a
            // batch slot or burn a solve. Mixed groups keep running for
            // their live waiters; only the expired ones are answered
            // early with DeadlineExceeded.
            let now = Instant::now();
            while batch.len() < max_batch {
                match state.groups.pop_front() {
                    Some(mut group) => {
                        if group.shed_expired(now, &shared.metrics) {
                            batch.push(group);
                        }
                    }
                    None => break,
                }
            }
        }
        if !batch.is_empty() {
            dispatch(cache, &config.executor, batch, &shared.metrics);
        }
    }
}

/// Runs one sealed micro-batch. Requests that forbid warm starts are
/// split into their own sub-batch so the per-request policy survives the
/// executor's batch-level `warm_start` flag.
fn dispatch(
    cache: &SurfaceCache,
    executor: &ExecutorConfig,
    batch: Vec<Group>,
    metrics: &Instruments,
) {
    let (warm_ok, cold_only): (Vec<Group>, Vec<Group>) =
        batch.into_iter().partition(|g| g.allow_warm);
    for (mut groups, allow_warm) in [(warm_ok, true), (cold_only, false)] {
        if groups.is_empty() {
            continue;
        }
        metrics.dispatched_batches.inc();
        metrics.dispatched_groups.add(groups.len() as u64);
        let set = ScenarioSet {
            scenarios: groups.iter().map(|g| g.scenario.clone()).collect(),
        };
        let exec = ExecutorConfig {
            warm_start: executor.warm_start && allow_warm,
            ..executor.clone()
        };
        let dispatched = Instant::now();
        let batch_size = groups.len();
        for group in &groups {
            metrics
                .queue_wait_seconds
                .record(dispatched.duration_since(group.enqueued).as_secs_f64());
        }
        match run_batch(set, cache.clone(), exec) {
            Ok(mut handle) => {
                while let Some((i, result)) = handle.recv() {
                    let group = &mut groups[i];
                    let response = result
                        .map(|report| ScenarioResponse {
                            report,
                            warm_hint: group.warm_hint,
                            batch_size,
                            queue_seconds: dispatched.duration_since(group.enqueued).as_secs_f64(),
                            total_seconds: group.enqueued.elapsed().as_secs_f64(),
                        })
                        .map_err(ServeError::Executor);
                    group.fulfill(response);
                }
                // Undelivered scenarios (executor thread died) fall to
                // the groups' drop guards → WorkerLost.
            }
            Err(e) => {
                for group in &mut groups {
                    group.fulfill(Err(ServeError::Executor(e.clone())));
                }
            }
        }
        metrics
            .batch_solve_seconds
            .record(dispatched.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_olg::Calibration;
    use hddm_scenarios::Scenario;

    fn base() -> Scenario {
        let mut s = Scenario::from_calibration("svc", Calibration::small(4, 3, 2, 0.03));
        s.solve.tolerance = 1e-6;
        s.solve.max_steps = 50;
        s
    }

    fn undrained(queue_capacity: usize) -> ScenarioService {
        // No dispatchers: the queue fills and stays full — the
        // deterministic way to exercise admission control.
        ScenarioService::spawn(
            SurfaceCache::default(),
            ServeConfig {
                executor: ExecutorConfig::serial(),
                queue_capacity,
                ..ServeConfig::default()
            },
            0,
        )
    }

    #[test]
    fn the_queue_is_bounded_and_rejects_overflow() {
        let service = undrained(2);
        let mut beta = 0.949;
        let mut submit_distinct = || {
            let mut s = base();
            s.calibration.beta = beta;
            beta += 0.001;
            service.submit(ScenarioRequest::new(s))
        };
        let _t1 = submit_distinct().unwrap();
        let _t2 = submit_distinct().unwrap();
        assert_eq!(service.queue_depth(), 2);
        let err = submit_distinct().unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"));
        assert_eq!(service.stats().rejected_queue_full, 1);
    }

    #[test]
    fn a_full_queue_sheds_expired_groups_before_rejecting() {
        let service = undrained(1);
        let expired = service
            .submit(ScenarioRequest::new(base()).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(service.queue_depth(), 1);

        // At capacity, but the only queued group is fully expired: the
        // sweep frees its slot and the live request is admitted.
        let mut other = base();
        other.calibration.beta = 0.951;
        let live = service.submit(ScenarioRequest::new(other)).unwrap();
        assert_eq!(
            expired.wait().unwrap_err(),
            ServeError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        );
        assert!(live.poll().is_none(), "the live request is queued");
        assert_eq!(service.queue_depth(), 1);
        let stats = service.stats();
        assert_eq!(stats.shed_groups, 1);
        assert_eq!(stats.shed_waiters, 1);
        assert_eq!(stats.rejected_queue_full, 0);

        // With only live work queued, overflow is rejected for real.
        let mut third = base();
        third.calibration.beta = 0.952;
        let err = service.submit(ScenarioRequest::new(third)).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 1 });
        assert_eq!(service.stats().rejected_queue_full, 1);
    }

    #[test]
    fn identical_pending_requests_coalesce_into_one_group() {
        let service = undrained(8);
        let t1 = service.submit(ScenarioRequest::new(base())).unwrap();
        let t2 = service.submit(ScenarioRequest::new(base())).unwrap();
        // Same scenario → one group, two waiters.
        assert_eq!(service.queue_depth(), 1);
        // A cold-only request for the same scenario must NOT share the
        // warm-allowed solve (different serving policy → its own group).
        let _t3 = service.submit(ScenarioRequest::cold_only(base())).unwrap();
        assert_eq!(service.queue_depth(), 2);
        assert!(t1.poll().is_none());
        assert!(t2.poll().is_none());

        // Dropping the service abandons the undrained groups: waiters
        // get WorkerLost (never a hang).
        drop(service);
        assert_eq!(t1.wait().unwrap_err(), ServeError::WorkerLost);
        assert_eq!(t2.wait().unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_admission() {
        let service = undrained(4);
        let mut bad = base();
        bad.solve.tolerance = -1.0;
        let err = service.submit(ScenarioRequest::new(bad)).unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)));
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let service = undrained(4);
        recover(&service.shared.queue).shutdown = true;
        let err = service.submit(ScenarioRequest::new(base())).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn stats_and_registry_snapshot_agree_bit_for_bit() {
        // Traffic over every admission counter class: enqueue, coalesce,
        // shed, reject.
        let service = undrained(1);
        let expired = service
            .submit(ScenarioRequest::new(base()).with_deadline(Duration::ZERO))
            .unwrap();
        let _coalesced = service
            .submit(ScenarioRequest::new(base()).with_deadline(Duration::ZERO))
            .unwrap();
        let mut other = base();
        other.calibration.beta = 0.951;
        let _live = service.submit(ScenarioRequest::new(other)).unwrap();
        let _ = expired.wait();
        let mut third = base();
        third.calibration.beta = 0.952;
        let _ = service.submit(ScenarioRequest::new(third)).unwrap_err();

        let stats = service.stats();
        let snap = service.registry().snapshot();
        let counter = |name: &str| {
            snap.counter(name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let gauge = |name: &str| snap.gauge(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(stats.submitted, counter("hddm_serve_submitted_total"));
        assert_eq!(stats.exact_hits, counter("hddm_serve_exact_hits_total"));
        assert_eq!(
            stats.enqueued_groups,
            counter("hddm_serve_enqueued_groups_total")
        );
        assert_eq!(
            stats.coalesced_waiters,
            counter("hddm_serve_coalesced_waiters_total")
        );
        assert_eq!(
            stats.rejected_queue_full,
            counter("hddm_serve_rejected_queue_full_total")
        );
        assert_eq!(stats.shed_waiters, counter("hddm_serve_shed_waiters_total"));
        assert_eq!(stats.shed_groups, counter("hddm_serve_shed_groups_total"));
        assert_eq!(
            stats.dispatched_batches,
            counter("hddm_serve_dispatched_batches_total")
        );
        assert_eq!(
            stats.dispatched_groups,
            counter("hddm_serve_dispatched_groups_total")
        );
        assert_eq!(stats.queue_depth, gauge("hddm_serve_queue_depth"));
        assert_eq!(stats.queue_depth_peak, gauge("hddm_serve_queue_depth_peak"));
        // The admission identity the metrics-check tool enforces.
        assert_eq!(
            stats.submitted,
            stats.exact_hits
                + stats.enqueued_groups
                + stats.coalesced_waiters
                + stats.rejected_queue_full
        );
        // Cache and serve instruments share one registry.
        assert!(snap.counter("hddm_cache_misses_total").is_some());
    }
}
