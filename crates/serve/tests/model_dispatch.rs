//! hddm-check model of the dispatcher's queue lifecycle.
//!
//! Mirrors `crates/serve/src/service.rs` — `submit` (enqueue/coalesce/
//! shutdown-reject), `Ticket::wait` (slot mutex + condvar), `Group`
//! (waiter fan-out, drop-guard `WorkerLost` backstop),
//! `dispatcher_loop` (wait for work or shutdown → linger `wait_timeout`
//! → seal-time deadline shed → pop up to `max_batch` → solve outside
//! the lock → fulfill), and `ScenarioService::drop` (set shutdown,
//! notify, join — graceful drain because the dispatcher keeps draining
//! a non-empty queue even after shutdown).
//!
//! Checked properties:
//! - **no request dropped un-answered**: every admitted ticket's wait
//!   terminates with exactly one answer (solved, shed, or worker-lost;
//!   double-fulfills trip an invariant the moment they happen);
//! - liveness: no deadlock or lost wakeup across the queue condvar,
//!   ticket slots, and shutdown — including the linger `wait_timeout`
//!   (the checker's lazy timeout must never report the linger as a
//!   lost wakeup);
//! - deadline shedding and coalescing explored via `choose` (each
//!   waiter's expiry is a value decision).
//!
//! Mutation:
//! - `ExitBeforeDrain` — the dispatcher checks `shutdown` *before*
//!   "queue non-empty" (seal racing shutdown) and the `Group` drop
//!   guard is disabled: an admitted group left in the queue at
//!   shutdown is never answered → its ticket's wait is a lost wakeup.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hddm_check::{
    choose, explore, register_invariant, replay, spawn, step, CheckedAtomicUsize, CheckedCondvar,
    CheckedMutex, Config, FailureKind,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mutation {
    None,
    ExitBeforeDrain,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Answer {
    Solved,
    Shed,
    WorkerLost,
    Rejected,
}

/// `Ticket` slot: result mutex + condvar, exactly as in `service.rs`.
struct TicketSlot {
    slot: CheckedMutex<Option<Answer>>,
    cv: CheckedCondvar,
}

impl TicketSlot {
    fn new(i: usize) -> Arc<TicketSlot> {
        Arc::new(TicketSlot {
            slot: CheckedMutex::named(&format!("slot{i}"), None),
            cv: CheckedCondvar::named(&format!("slot{i}_cv")),
        })
    }

    /// Mirrors `Ticket::wait`.
    fn wait(&self) -> Answer {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cv.wait(slot);
        }
    }
}

/// One queued group: waiter slots + expiry flags + the drop-guard
/// `fulfilled` marker.
struct Group {
    hash: u64,
    waiters: Vec<(Arc<TicketSlot>, bool)>, // (slot, expired)
    fulfilled: bool,
}

struct SvcModel {
    queue: CheckedMutex<(Vec<Group>, bool)>, // (groups, shutdown)
    queue_cv: CheckedCondvar,
    fulfills: CheckedAtomicUsize,
    double_fulfills: CheckedAtomicUsize,
    mutation: Mutation,
}

const MAX_BATCH: usize = 2;

impl SvcModel {
    fn new(mutation: Mutation) -> Arc<SvcModel> {
        Arc::new(SvcModel {
            queue: CheckedMutex::named("queue", (Vec::new(), false)),
            queue_cv: CheckedCondvar::named("queue_cv"),
            fulfills: CheckedAtomicUsize::named("fulfills", 0),
            double_fulfills: CheckedAtomicUsize::named("double_fulfills", 0),
            mutation,
        })
    }

    fn fulfill_waiter(&self, slot: &TicketSlot, answer: Answer) {
        let mut g = slot.slot.lock();
        if g.is_some() {
            self.double_fulfills.fetch_add(1);
        }
        *g = Some(answer);
        drop(g);
        slot.cv.notify_all();
        self.fulfills.fetch_add(1);
    }

    fn fulfill_group(&self, group: &mut Group, answer: Answer) {
        group.fulfilled = true;
        for (slot, _) in group.waiters.drain(..) {
            self.fulfill_waiter(&slot, answer);
        }
    }

    /// Mirrors `ScenarioService::submit`: shutdown-reject, coalesce
    /// onto an existing group for the same hash, else enqueue.
    /// `expired` models the waiter's deadline having passed by seal
    /// time (a `choose` at the call site).
    fn submit(&self, i: usize, hash: u64, expired: bool) -> Result<Arc<TicketSlot>, Answer> {
        let slot = TicketSlot::new(i);
        {
            let mut q = self.queue.lock();
            if q.1 {
                return Err(Answer::Rejected);
            }
            if let Some(g) = q.0.iter_mut().find(|g| g.hash == hash) {
                g.waiters.push((Arc::clone(&slot), expired)); // coalesce
            } else {
                q.0.push(Group {
                    hash,
                    waiters: vec![(Arc::clone(&slot), expired)],
                    fulfilled: false,
                });
            }
        }
        self.queue_cv.notify_all();
        Ok(slot)
    }

    /// Mirrors `dispatcher_loop`.
    fn dispatcher(&self) {
        loop {
            let mut batch: Vec<Group> = Vec::new();
            {
                let mut q = self.queue.lock();
                loop {
                    if self.mutation == Mutation::ExitBeforeDrain {
                        // BUG under test: seal racing shutdown — exits
                        // with admitted groups still queued.
                        if q.1 {
                            return;
                        }
                        if !q.0.is_empty() {
                            break;
                        }
                    } else {
                        if !q.0.is_empty() {
                            break;
                        }
                        if q.1 {
                            return;
                        }
                    }
                    q = self.queue_cv.wait(q);
                }
                // Coalescing window: hold the batch open briefly
                // (unless already full or shutting down).
                while q.0.len() < MAX_BATCH && !q.1 {
                    let (qq, timed_out) = self.queue_cv.wait_timeout(q);
                    q = qq;
                    if timed_out {
                        break;
                    }
                }
                // Seal-time shedding + pop up to max_batch.
                while batch.len() < MAX_BATCH && !q.0.is_empty() {
                    let mut group = q.0.remove(0);
                    // `shed_expired`: answer expired waiters now; keep
                    // the group only if live waiters remain.
                    let mut live = Vec::new();
                    for (slot, expired) in group.waiters.drain(..) {
                        if expired {
                            self.fulfill_waiter(&slot, Answer::Shed);
                        } else {
                            live.push((slot, expired));
                        }
                    }
                    group.waiters = live;
                    if group.waiters.is_empty() {
                        group.fulfilled = true; // no solve owed
                    } else {
                        batch.push(group);
                    }
                }
            }
            if !batch.is_empty() {
                // The solve runs outside the queue lock.
                step("run_batch solve");
                for mut group in batch {
                    self.fulfill_group(&mut group, Answer::Solved);
                }
            }
        }
    }

    /// Mirrors `ScenarioService::drop`: flag shutdown, wake the
    /// dispatcher, join it, then run the `Group` drop-guard backstop
    /// over whatever is left (in the real code the guard runs when the
    /// queue is dropped; the mutation disables it to expose the
    /// un-drained group).
    fn shutdown(&self) {
        {
            let mut q = self.queue.lock();
            q.1 = true;
        }
        self.queue_cv.notify_all();
    }

    fn drop_queue(&self) {
        if self.mutation == Mutation::ExitBeforeDrain {
            return; // backstop disabled: leaked groups stay un-answered
        }
        let mut q = self.queue.lock();
        let mut groups = std::mem::take(&mut q.0);
        drop(q);
        for group in groups.iter_mut() {
            if !group.fulfilled {
                self.fulfill_group(group, Answer::WorkerLost);
            }
        }
    }
}

/// Two submitters racing the dispatcher and shutdown: same hash (so
/// coalescing is explored), per-waiter expiry from `choose`. Every
/// admitted ticket must see exactly one answer.
fn dispatch_model(mutation: Mutation, answers_seen: Arc<AtomicUsize>) {
    let m = SvcModel::new(mutation);
    {
        let m2 = Arc::clone(&m);
        register_invariant("no ticket fulfilled twice", move || {
            let n = m2.double_fulfills.peek();
            if n == 0 {
                Ok(())
            } else {
                Err(format!("{n} double-fulfilled ticket(s)"))
            }
        });
    }
    let dispatcher = {
        let m = Arc::clone(&m);
        spawn("dispatcher", move || m.dispatcher())
    };
    let submitters: Vec<_> = (0..2)
        .map(|i| {
            let m = Arc::clone(&m);
            spawn(&format!("submitter-{i}"), move || {
                let expired = choose(2) == 1;
                match m.submit(i, 7, expired) {
                    Ok(slot) => Some(slot.wait()),
                    Err(_rejected) => None,
                }
            })
        })
        .collect();
    m.shutdown();
    let answers: Vec<Option<Answer>> = submitters.into_iter().map(|s| s.join()).collect();
    dispatcher.join();
    m.drop_queue();
    // Terminal bookkeeping: every admitted ticket answered exactly once.
    let admitted = answers.iter().filter(|a| a.is_some()).count();
    assert_eq!(
        m.fulfills.peek(),
        admitted,
        "answers delivered != tickets admitted"
    );
    for a in answers.iter().flatten() {
        assert!(
            matches!(a, Answer::Solved | Answer::Shed | Answer::WorkerLost),
            "unexpected terminal answer {a:?}"
        );
    }
    // ORDERING: Relaxed — cross-execution stats outside the model.
    answers_seen.fetch_add(admitted, Ordering::Relaxed);
}

#[test]
fn dispatcher_lifecycle_explores_clean() {
    let seen = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&seen);
    let report = explore(&Config::new("dispatch-lifecycle"), move || {
        dispatch_model(Mutation::None, Arc::clone(&s))
    });
    let schedules = report.assert_clean();
    // ORDERING: Relaxed — read after exploration finished.
    assert!(
        seen.load(Ordering::Relaxed) > 0,
        "some schedule must admit at least one ticket"
    );
    println!(
        "model dispatch-lifecycle: {} schedules, max {} steps",
        schedules, report.max_steps_seen
    );
}

#[test]
fn mutation_exit_before_drain_is_lost_wakeup() {
    let seen = Arc::new(AtomicUsize::new(0));
    let model = {
        let s = Arc::clone(&seen);
        move || dispatch_model(Mutation::ExitBeforeDrain, Arc::clone(&s))
    };
    let report = explore(
        &Config::new("dispatch-mut-exit-before-drain"),
        model.clone(),
    );
    let failure = report.expect_failure(FailureKind::LostWakeup).clone();
    assert!(
        failure.message.contains("slot"),
        "the stranded thread waits on its ticket slot: {}",
        failure.message
    );
    let re = replay(
        &Config::new("dispatch-mut-exit-before-drain"),
        &failure.trace,
        model,
    );
    let rf = re.expect_failure(FailureKind::LostWakeup);
    assert_eq!(rf.message, failure.message);
    assert_eq!(rf.events, failure.events);
}
