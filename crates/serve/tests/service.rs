//! Acceptance tests of the serving front-end:
//!
//! * a mixed trace through [`ScenarioService`] returns correct responses
//!   for all three decision-tree paths (exact hit, warm start, cold miss
//!   via micro-batch);
//! * ≥ 4 concurrent exact-hit readers restore their surfaces from disk
//!   **without serializing on a single cache lock** — proven by a
//!   rendezvous inside the restore path (all four must be inside their
//!   record-file reads simultaneously) and by the cache's
//!   `concurrent_restores_peak` telemetry;
//! * identical concurrent requests coalesce into one solve.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hddm_olg::Calibration;
use hddm_scenarios::{
    run_set, CacheKind, ExecutorConfig, Knob, Scenario, ScenarioSet, SurfaceCache,
};
use hddm_serve::{ScenarioRequest, ScenarioService, ServeConfig, ServeError};

fn base() -> Scenario {
    let mut s = Scenario::from_calibration("serve", Calibration::small(4, 3, 2, 0.03));
    s.solve.tolerance = 1e-6;
    s.solve.max_steps = 50;
    s
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        executor: ExecutorConfig::serial(),
        linger: Duration::from_millis(5),
        ..ServeConfig::default()
    }
}

/// A fresh, collision-free temp directory per test invocation.
fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hddm_serve_test_{}_{tag}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_trace_exercises_all_three_paths_correctly() {
    let service = ScenarioService::new(SurfaceCache::default(), serve_config());

    // 1. Cold miss: nothing cached, no warm hint possible.
    let cold = service.call(ScenarioRequest::new(base())).unwrap();
    assert_eq!(cold.kind(), CacheKind::Cold);
    assert!(cold.report.converged);
    assert!(cold.report.steps > 0);
    assert!(cold.warm_hint.is_none(), "empty cache cannot hint");
    assert!(cold.batch_size >= 1, "misses go through the micro-batch");
    assert!(cold.total_seconds >= cold.queue_seconds);

    // 2. Near miss: same shape, fingerprint within the warm radius. The
    //    response must carry the nearest-neighbour metadata AND the
    //    executor must actually warm start from it.
    let mut near = base();
    Knob::Beta.apply(&mut near, 0.9525).unwrap();
    near.name = "serve/near".into();
    let warm = service.call(ScenarioRequest::new(near.clone())).unwrap();
    assert_eq!(warm.kind(), CacheKind::Warm);
    assert!(warm.report.converged);
    let hint = warm.warm_hint.expect("near miss must carry a warm hint");
    assert_eq!(hint.source, cold.hash(), "hint names the cached neighbour");
    assert!(hint.distance > 0.0 && hint.distance <= 0.05);
    assert!(hint.estimated_cost_seconds > 0.0);
    assert_eq!(
        warm.report.warm_source,
        Some(cold.hash()),
        "the solve used the hinted surface"
    );

    // 3. Exact hit: the identical scenario is answered from the cache
    //    with zero solver steps, without touching the queue.
    let hit = service.call(ScenarioRequest::new(base())).unwrap();
    assert_eq!(hit.kind(), CacheKind::Exact);
    assert_eq!(hit.report.steps, 0);
    assert_eq!(hit.hash(), cold.hash());
    assert_eq!(hit.batch_size, 0, "exact hits bypass the micro-batch");
    assert_eq!(hit.queue_seconds, 0.0);
    assert!(hit.warm_hint.is_none());

    // 4. Far miss: same shape but far fingerprint (a box reform well
    //    outside the warm radius) — cold, no hint.
    let mut far = base();
    Knob::CapitalSpan.apply(&mut far, 0.45).unwrap();
    far.name = "serve/far".into();
    let cold2 = service.call(ScenarioRequest::new(far)).unwrap();
    assert_eq!(cold2.kind(), CacheKind::Cold);
    assert!(cold2.warm_hint.is_none(), "out-of-radius must not hint");

    // 5. Cold-only policy: a nearby neighbour exists, but the request
    //    forbids warm starts — served cold, no hint attached.
    let mut near2 = base();
    Knob::Beta.apply(&mut near2, 0.9515).unwrap();
    near2.name = "serve/cold-only".into();
    let forced = service.call(ScenarioRequest::cold_only(near2)).unwrap();
    assert_eq!(forced.kind(), CacheKind::Cold);
    assert!(forced.warm_hint.is_none());
    assert_eq!(forced.report.warm_source, None);
}

/// The tentpole concurrency acceptance: ≥ 4 exact-hit readers, each
/// restoring a *different* persisted surface, must all be inside their
/// record-file reads at the same time. Under the old design (file I/O
/// under the single cache mutex) the rendezvous can never complete —
/// each reader would hold the lock for the duration of its read, so the
/// hook would time out with fewer than 4 arrivals.
#[test]
fn four_concurrent_exact_hit_readers_restore_from_disk_without_serializing() {
    const READERS: usize = 4;
    let dir = temp_cache_dir("concurrent");

    // Warm the persistent cache with 4 distinct scenarios.
    let set = ScenarioSet::grid(&base(), &[(Knob::Beta, vec![0.949, 0.95, 0.951, 0.952])]).unwrap();
    {
        let warmer = SurfaceCache::open(&dir).unwrap();
        let report = run_set(&set, &warmer, &ExecutorConfig::serial()).unwrap();
        assert!(report.all_converged());
        assert_eq!(report.cache_stats.persisted_entries, READERS);
    }

    // Fresh cache over the directory — every surface must come off disk.
    let cache = SurfaceCache::open(&dir).unwrap();

    // Rendezvous hook: every restore waits (bounded) until all four
    // readers are inside the restore path simultaneously.
    let rendezvous = Arc::new((Mutex::new(0usize), Condvar::new()));
    let timed_out = Arc::new(Mutex::new(false));
    {
        let rendezvous = Arc::clone(&rendezvous);
        let timed_out = Arc::clone(&timed_out);
        cache.set_restore_hook(Arc::new(move |_hash| {
            let (count, cv) = &*rendezvous;
            let mut inside = count.lock().unwrap();
            *inside += 1;
            cv.notify_all();
            let deadline = Instant::now() + Duration::from_secs(20);
            while *inside < READERS {
                let now = Instant::now();
                if now >= deadline {
                    *timed_out.lock().unwrap() = true;
                    return;
                }
                let (guard, _) = cv.wait_timeout(inside, deadline - now).unwrap();
                inside = guard;
            }
        }));
    }

    let service = Arc::new(ScenarioService::new(cache.clone(), serve_config()));
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = set
            .scenarios
            .iter()
            .map(|scenario| {
                let service = Arc::clone(&service);
                let request = ScenarioRequest::new(scenario.clone());
                scope.spawn(move || service.call(request).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All four served as zero-step exact hits restored from disk.
    for response in &responses {
        assert_eq!(response.kind(), CacheKind::Exact);
        assert_eq!(response.report.steps, 0);
        assert_eq!(response.batch_size, 0);
    }
    assert!(
        !*timed_out.lock().unwrap(),
        "restores serialized: fewer than {READERS} readers were ever \
         inside the restore path simultaneously"
    );
    let stats = cache.stats();
    assert_eq!(stats.exact_hits, READERS);
    assert_eq!(
        stats.disk_hits, READERS,
        "each surface restored exactly once"
    );
    assert!(
        stats.concurrent_restores_peak >= READERS,
        "peak concurrent restores {} < {READERS}: the read path serialized",
        stats.concurrent_restores_peak
    );
    // The surfaces spread over more than one shard, so the readers were
    // not all funneled through one lock even in memory.
    assert!(
        cache.shard_entries().iter().filter(|&&n| n > 0).count() >= 2,
        "shard telemetry: entries {:?}",
        cache.shard_entries()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_concurrent_requests_share_one_solve() {
    const CLIENTS: usize = 5;
    // One dispatcher with a long linger: all five identical requests
    // land in the queue before the batch seals, so they must coalesce
    // into a single group → a single solve fanned out to every waiter.
    let service = Arc::new(ScenarioService::new(
        SurfaceCache::default(),
        ServeConfig {
            executor: ExecutorConfig::serial(),
            workers: 1,
            linger: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    ));

    // Submit all five tickets non-blocking (well inside the linger
    // window — each submit is microseconds), then wait concurrently.
    let tickets: Vec<_> = (0..CLIENTS)
        .map(|_| service.submit(ScenarioRequest::new(base())).unwrap())
        .collect();
    assert_eq!(
        service.queue_depth(),
        1,
        "five requests, one coalesced group"
    );
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = tickets
            .into_iter()
            .map(|ticket| scope.spawn(move || ticket.wait().unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client got the same single solve: identical step counts and
    // bit-identical wall clocks (a clone of one report, not five solves).
    let first = &responses[0];
    assert_eq!(first.kind(), CacheKind::Cold);
    assert!(first.report.converged);
    for response in &responses[1..] {
        assert_eq!(response.kind(), CacheKind::Cold);
        assert_eq!(response.report.steps, first.report.steps);
        assert_eq!(
            response.report.wall_seconds.to_bits(),
            first.report.wall_seconds.to_bits(),
            "responses must share one underlying solve"
        );
    }
    let stats = service.cache().stats();
    assert_eq!(
        stats.entries, 1,
        "exactly one surface was solved and deposited"
    );
}

/// Admission control: a request whose deadline has already passed when
/// the dispatcher seals its batch is answered with `DeadlineExceeded`
/// and never burns a solve.
#[test]
fn expired_requests_are_shed_at_seal_without_burning_a_solve() {
    let service = ScenarioService::new(
        SurfaceCache::default(),
        ServeConfig {
            executor: ExecutorConfig::serial(),
            workers: 1,
            linger: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let ticket = service
        .submit(ScenarioRequest::new(base()).with_deadline(Duration::ZERO))
        .unwrap();
    let err = ticket.wait().unwrap_err();
    assert_eq!(
        err,
        ServeError::DeadlineExceeded {
            deadline: Duration::ZERO
        }
    );
    assert!(err.to_string().contains("deadline"));
    let stats = service.stats();
    assert_eq!(stats.shed_waiters, 1);
    assert_eq!(stats.shed_groups, 1);
    assert_eq!(
        stats.dispatched_groups, 0,
        "the shed group never dispatched"
    );
    assert_eq!(
        service.cache().stats().entries,
        0,
        "no solve was burned for the expired request"
    );
}

/// A coalesced group with one expired and one live waiter sheds only the
/// expired one — the group still dispatches (once) for the live waiter.
#[test]
fn a_coalesced_group_sheds_only_its_expired_waiters() {
    let service = ScenarioService::new(
        SurfaceCache::default(),
        ServeConfig {
            executor: ExecutorConfig::serial(),
            workers: 1,
            linger: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    let live = service.submit(ScenarioRequest::new(base())).unwrap();
    let expired = service
        .submit(ScenarioRequest::new(base()).with_deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(service.queue_depth(), 1, "identical requests coalesce");
    assert_eq!(
        expired.wait().unwrap_err(),
        ServeError::DeadlineExceeded {
            deadline: Duration::ZERO
        }
    );
    let served = live.wait().unwrap();
    assert_eq!(served.kind(), CacheKind::Cold);
    assert!(served.report.converged);
    let stats = service.stats();
    assert_eq!(stats.coalesced_waiters, 1);
    assert_eq!(stats.shed_waiters, 1);
    assert_eq!(
        stats.shed_groups, 0,
        "the group still dispatched for its live waiter"
    );
    assert_eq!(stats.dispatched_groups, 1);
    assert_eq!(stats.queue_depth_peak, 1);
}

/// Linger-window boundary: a request that arrives after a batch seals
/// (here forced by `max_batch: 1`) is not lost — it lands in the next
/// sealed batch.
#[test]
fn a_request_after_the_seal_lands_in_the_next_batch() {
    let service = ScenarioService::new(
        SurfaceCache::default(),
        ServeConfig {
            executor: ExecutorConfig::serial(),
            workers: 1,
            max_batch: 1,
            linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let mut second = base();
    Knob::CapitalSpan.apply(&mut second, 0.45).unwrap();
    second.name = "serve/next-batch".into();
    let t1 = service.submit(ScenarioRequest::new(base())).unwrap();
    // Let the lone dispatcher seal (zero linger → immediately) so the
    // second request arrives while the first batch is being solved.
    std::thread::sleep(Duration::from_millis(5));
    let t2 = service.submit(ScenarioRequest::new(second)).unwrap();
    let r1 = t1.wait().unwrap();
    let r2 = t2.wait().unwrap();
    assert!(r1.report.converged);
    assert!(r2.report.converged);
    assert_eq!(r1.batch_size, 1);
    assert_eq!(r2.batch_size, 1, "the late request rode its own batch");
    let stats = service.stats();
    assert_eq!(stats.enqueued_groups, 2);
    assert_eq!(stats.dispatched_batches, 2);
    assert_eq!(stats.dispatched_groups, 2);
}

/// Shutdown during the linger window must break the window and drain
/// the already-admitted request — a graceful result, not `WorkerLost`.
#[test]
fn shutdown_during_the_linger_window_drains_the_queue() {
    let service = ScenarioService::new(
        SurfaceCache::default(),
        ServeConfig {
            executor: ExecutorConfig::serial(),
            workers: 1,
            linger: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let started = Instant::now();
    let ticket = service.submit(ScenarioRequest::new(base())).unwrap();
    // Give the dispatcher time to enter the linger wait, then shut down.
    std::thread::sleep(Duration::from_millis(50));
    drop(service);
    let served = ticket.wait().expect("shutdown must drain, not abandon");
    assert_eq!(served.kind(), CacheKind::Cold);
    assert!(served.report.converged);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must break the linger window, not sit it out"
    );
}
