//! # hddm-sched — work-stealing task scheduling
//!
//! The intra-node parallelization layer of Sec. IV-A, substituting for
//! Intel TBB: a work-stealing `parallel_for` over grid points
//! ([`pool::parallel_for`]) and the hybrid CPU+accelerator dispatch of
//! Fig. 2, where one thread is dedicated to feeding the GPU with large
//! preempted batches ([`hybrid::hybrid_for`]).
//!
//! The scheduler is deliberately independent of what the tasks do — the
//! time-iteration driver hands it per-grid-point equation solves, the
//! benches hand it synthetic loads.

#![warn(missing_docs)]

pub mod hybrid;
pub mod pool;

pub use hybrid::{hybrid_for, HybridConfig, HybridStats};
pub use pool::{parallel_for, parallel_for_init, Chunk, LoadStats, PoolConfig};
