//! Hybrid CPU + accelerator dispatch (lower part of Fig. 2): CPU workers
//! pull fine-grained chunks while "one of the TBB-managed threads is
//! exclusively used for the GPU dispatch", preempting large batches of
//! work from the same queue so the accelerator stays saturated.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_deque::{Injector, Steal};

use crate::pool::{Chunk, RetireGuard};

/// Configuration of a hybrid execution.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// CPU worker threads (excluding the dispatch thread).
    pub cpu_threads: usize,
    /// Items per CPU chunk.
    pub cpu_grain: usize,
    /// Items the accelerator thread preempts per batch (0 disables the
    /// accelerator path).
    pub accel_batch: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            cpu_threads: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).max(1))
                .unwrap_or(1),
            cpu_grain: 1,
            accel_batch: 64,
        }
    }
}

/// Outcome of a hybrid run.
#[derive(Clone, Debug, Default)]
pub struct HybridStats {
    /// Items processed by each CPU worker.
    pub cpu_items: Vec<usize>,
    /// Items processed by the accelerator thread.
    pub accel_items: usize,
    /// Batches dispatched to the accelerator.
    pub accel_batches: usize,
}

/// Processes `0..n`, splitting between CPU workers (`cpu_task`, one index
/// at a time) and an accelerator dispatch thread (`accel_task`, whole
/// batches). Every index is handled exactly once, by exactly one side.
pub fn hybrid_for<C, A>(n: usize, config: &HybridConfig, cpu_task: C, accel_task: A) -> HybridStats
where
    C: Fn(usize) + Sync,
    A: Fn(Chunk) + Sync,
{
    let cpu_threads = config.cpu_threads.max(1);
    if config.accel_batch == 0 {
        let stats = crate::pool::parallel_for(
            n,
            &crate::pool::PoolConfig {
                threads: cpu_threads,
                grain: config.cpu_grain,
            },
            cpu_task,
        );
        return HybridStats {
            cpu_items: stats.items_per_worker,
            accel_items: 0,
            accel_batches: 0,
        };
    }

    // The shared queue holds CPU-grain chunks; the accelerator preempts
    // several of them per dispatch.
    let injector = Injector::new();
    let grain = config.cpu_grain.max(1);
    let mut outstanding = 0usize;
    let mut lo = 0;
    while lo < n {
        let hi = (lo + grain).min(n);
        injector.push(Chunk { lo, hi });
        outstanding += 1;
        lo = hi;
    }
    let remaining = AtomicUsize::new(outstanding);

    let cpu_counters: Vec<AtomicUsize> = (0..cpu_threads).map(|_| AtomicUsize::new(0)).collect();
    let accel_items = AtomicUsize::new(0);
    let accel_batches = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // CPU workers.
        for counter in cpu_counters.iter() {
            let injector = &injector;
            let remaining = &remaining;
            let cpu_task = &cpu_task;
            scope.spawn(move || loop {
                match injector.steal() {
                    Steal::Success(chunk) => {
                        // Retire on unwind too (see RetireGuard): a
                        // panicking task must not strand the queue.
                        let _retire = RetireGuard(remaining);
                        for i in chunk.lo..chunk.hi {
                            cpu_task(i);
                        }
                        // ORDERING: Relaxed — per-worker load statistic,
                        // read only after the scope joins.
                        counter.fetch_add(chunk.len(), Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        // ORDERING: Acquire — pairs with RetireGuard's
                        // AcqRel decrement: observing zero must make the
                        // retired chunks' writes visible before exit.
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }

        // The dedicated accelerator dispatch thread: grabs up to
        // `accel_batch` items worth of chunks, coalesces contiguous runs,
        // and hands them to the device in batches.
        {
            let injector = &injector;
            let remaining = &remaining;
            let accel_task = &accel_task;
            let accel_items = &accel_items;
            let accel_batches = &accel_batches;
            let batch_target = config.accel_batch;
            scope.spawn(move || loop {
                let mut grabbed: Vec<Chunk> = Vec::new();
                let mut got = 0usize;
                while got < batch_target {
                    match injector.steal() {
                        Steal::Success(chunk) => {
                            got += chunk.len();
                            grabbed.push(chunk);
                        }
                        Steal::Retry => {
                            std::thread::yield_now();
                            continue;
                        }
                        Steal::Empty => break,
                    }
                }
                if grabbed.is_empty() {
                    // ORDERING: Acquire — same pairing as the CPU
                    // workers' exit check above.
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                }
                // The grabbed chunks are this thread's responsibility from
                // here on: retire them (on success *or* unwind) so a
                // panicking device task cannot strand the queue.
                let _retire: Vec<RetireGuard> =
                    grabbed.iter().map(|_| RetireGuard(remaining)).collect();
                // Coalesce contiguous chunks into maximal ranges so the
                // device sees few large launches.
                grabbed.sort_unstable_by_key(|c| c.lo);
                let mut run = grabbed[0];
                let mut dispatched = 0usize;
                for chunk in grabbed.into_iter().skip(1) {
                    if chunk.lo == run.hi {
                        run.hi = chunk.hi;
                    } else {
                        accel_task(run);
                        dispatched += run.len();
                        // ORDERING: Relaxed — dispatch statistic, read
                        // only after the scope joins.
                        accel_batches.fetch_add(1, Ordering::Relaxed);
                        run = chunk;
                    }
                }
                accel_task(run);
                dispatched += run.len();
                // ORDERING: Relaxed — dispatch statistics, read only
                // after the scope joins.
                accel_batches.fetch_add(1, Ordering::Relaxed);
                // ORDERING: Relaxed — as above.
                accel_items.fetch_add(dispatched, Ordering::Relaxed);
            });
        }
    });

    HybridStats {
        cpu_items: cpu_counters
            .iter()
            // ORDERING: Relaxed — workers have joined (scope ended);
            // single-threaded read-out of their counters.
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        // ORDERING: Relaxed — post-join read-out, as above.
        accel_items: accel_items.load(Ordering::Relaxed),
        // ORDERING: Relaxed — post-join read-out, as above.
        accel_batches: accel_batches.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn run(n: usize, config: &HybridConfig) -> (Vec<u32>, HybridStats) {
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = hybrid_for(
            n,
            config,
            |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
            |chunk| {
                for i in chunk.lo..chunk.hi {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        (
            hits.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
            stats,
        )
    }

    #[test]
    fn every_item_once_with_accelerator() {
        let (hits, stats) = run(
            500,
            &HybridConfig {
                cpu_threads: 3,
                cpu_grain: 2,
                accel_batch: 32,
            },
        );
        assert!(hits.iter().all(|&h| h == 1), "duplicate or missing items");
        let cpu: usize = stats.cpu_items.iter().sum();
        assert_eq!(cpu + stats.accel_items, 500);
    }

    #[test]
    fn accelerator_disabled_falls_back_to_cpu() {
        let (hits, stats) = run(
            100,
            &HybridConfig {
                cpu_threads: 2,
                cpu_grain: 5,
                accel_batch: 0,
            },
        );
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(stats.accel_items, 0);
        assert_eq!(stats.accel_batches, 0);
    }

    #[test]
    fn accelerator_receives_batches() {
        // With a yielding CPU side and a big batch size, the dispatch
        // thread must engage and take large coalesced batches — even on a
        // single-core host (the CPU worker yields every item).
        let n = 10_000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = hybrid_for(
            n,
            &HybridConfig {
                cpu_threads: 1,
                cpu_grain: 1,
                accel_batch: 512,
            },
            |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            },
            |chunk| {
                for i in chunk.lo..chunk.hi {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(stats.accel_items > 0, "accelerator never engaged");
        let avg = stats.accel_items / stats.accel_batches.max(1);
        assert!(avg > 8, "batches too small: {avg}");
    }

    #[test]
    fn empty_input() {
        let (hits, stats) = run(0, &HybridConfig::default());
        assert!(hits.is_empty());
        assert_eq!(stats.accel_items, 0);
    }
}
