//! Work-stealing parallel-for over grid-point indices — the TBB substitute
//! (Sec. IV-A: "the threads leverage TBB's automatic workload balancing
//! based on stealing tasks from the slower workers").
//!
//! Built on `crossbeam-deque`: a global injector seeded with index chunks,
//! one LIFO worker deque per thread, and stealers between all pairs. Each
//! solved chunk decrements a shared outstanding counter; workers exit when
//! it reaches zero.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_deque::{Injector, Steal, Stealer, Worker};

/// A half-open index range, the unit of scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First index.
    pub lo: usize,
    /// One past the last index.
    pub hi: usize,
}

impl Chunk {
    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the chunk is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Per-worker execution statistics, for load-balance reporting.
#[derive(Clone, Debug, Default)]
pub struct LoadStats {
    /// Items processed by each worker.
    pub items_per_worker: Vec<usize>,
    /// Successful steals per worker (from the injector or peers).
    pub steals_per_worker: Vec<usize>,
}

impl LoadStats {
    /// Load imbalance = max/mean of per-worker item counts (1.0 is
    /// perfect).
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.items_per_worker.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.items_per_worker.len() as f64;
        let max = *self.items_per_worker.iter().max().unwrap() as f64;
        max / mean
    }
}

/// Configuration of a parallel-for execution.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Items per scheduling chunk (grid points per task).
    pub grain: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            grain: 1,
        }
    }
}

/// Decrements the outstanding-chunk counter on drop, so a chunk is
/// retired even when the task unwinds — peers then drain the rest and the
/// panic propagates out of the thread scope instead of deadlocking it.
/// (The panicking worker's own deque stays stealable: `crossbeam-deque`
/// stealers hold the buffer alive independently of the `Worker`.)
pub(crate) struct RetireGuard<'a>(pub(crate) &'a AtomicUsize);

impl Drop for RetireGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: AcqRel — Release publishes the chunk's writes to the
        // peer that observes the counter hit zero (its Acquire load in
        // the steal loop), and Acquire keeps this retire from being
        // reordered before the task's own reads complete.
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Runs `task(index)` for every index in `0..n`, work-stealing across
/// `config.threads` threads. `task` observes each index exactly once.
pub fn parallel_for<F>(n: usize, config: &PoolConfig, task: F) -> LoadStats
where
    F: Fn(usize) + Sync,
{
    parallel_for_init(n, config, || (), |(), i| task(i))
}

/// Like [`parallel_for`], but each worker first builds private state with
/// `init` and threads it through its `task` calls — the pattern for
/// per-thread solver scratch and oracles.
pub fn parallel_for_init<S, I, F>(n: usize, config: &PoolConfig, init: I, task: F) -> LoadStats
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let threads = config.threads.max(1);
    let grain = config.grain.max(1);
    if threads == 1 || n <= grain {
        let mut state = init();
        for i in 0..n {
            task(&mut state, i);
        }
        return LoadStats {
            items_per_worker: vec![n],
            steals_per_worker: vec![0],
        };
    }

    let injector = Injector::new();
    let mut outstanding = 0usize;
    let mut lo = 0;
    while lo < n {
        let hi = (lo + grain).min(n);
        injector.push(Chunk { lo, hi });
        outstanding += 1;
        lo = hi;
    }
    let remaining = AtomicUsize::new(outstanding);

    let workers: Vec<Worker<Chunk>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Chunk>> = workers.iter().map(|w| w.stealer()).collect();

    let counters: Vec<(AtomicUsize, AtomicUsize)> = (0..threads)
        .map(|_| (AtomicUsize::new(0), AtomicUsize::new(0)))
        .collect();

    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let remaining = &remaining;
            let counters = &counters;
            let task = &task;
            let init = &init;
            scope.spawn(move || {
                let (items, steals) = &counters[me];
                let mut state = init();
                loop {
                    // Local pop first; otherwise steal from the injector or
                    // a slower peer.
                    let (chunk, stolen) = match worker.pop() {
                        Some(c) => (Some(c), false),
                        None => {
                            let acquired = std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&worker).or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(other, _)| *other != me)
                                        .map(|(_, s)| s.steal())
                                        .collect()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(Steal::success);
                            (acquired, true)
                        }
                    };
                    match chunk {
                        Some(chunk) => {
                            if stolen {
                                // ORDERING: Relaxed — per-worker load
                                // statistic, read only after join.
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            // Decrement on unwind too: if a task panics,
                            // peers must still observe the chunk as retired
                            // or they spin forever and the panic never
                            // propagates out of the thread scope.
                            let _retire = RetireGuard(remaining);
                            for i in chunk.lo..chunk.hi {
                                task(&mut state, i);
                            }
                            // ORDERING: Relaxed — per-worker load
                            // statistic, read only after join.
                            items.fetch_add(chunk.len(), Ordering::Relaxed);
                        }
                        None => {
                            // ORDERING: Acquire — pairs with the AcqRel
                            // retire in `RetireGuard::drop`; seeing zero
                            // here must also make every retired chunk's
                            // writes visible before the worker exits.
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    LoadStats {
        items_per_worker: counters
            .iter()
            // ORDERING: Relaxed — workers have joined (scope ended), so
            // their counter writes are already visible; this is a
            // single-threaded read-out.
            .map(|(i, _)| i.load(Ordering::Relaxed))
            .collect(),
        steals_per_worker: counters
            .iter()
            // ORDERING: Relaxed — post-join read-out, as above.
            .map(|(_, s)| s.load(Ordering::Relaxed))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = parallel_for(
            n,
            &PoolConfig {
                threads: 4,
                grain: 7,
            },
            |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        let total: usize = stats.items_per_worker.iter().sum();
        assert_eq!(total, n);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let stats = parallel_for(0, &PoolConfig::default(), |_| panic!("no items"));
        assert_eq!(stats.items_per_worker.iter().sum::<usize>(), 0);
    }

    #[test]
    fn single_thread_is_sequential() {
        let order = std::sync::Mutex::new(Vec::new());
        parallel_for(
            10,
            &PoolConfig {
                threads: 1,
                grain: 3,
            },
            |i| order.lock().unwrap().push(i),
        );
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn imbalanced_work_is_shared() {
        // Tasks yield so peer workers get scheduled even on a single-core
        // host; with per-item chunks, stealing must then spread the work.
        let n = 400;
        let stats = parallel_for(
            n,
            &PoolConfig {
                threads: 4,
                grain: 1,
            },
            |i| {
                let reps = if i % 10 == 0 { 5 } else { 1 };
                for _ in 0..reps {
                    std::thread::yield_now();
                }
            },
        );
        let total: usize = stats.items_per_worker.iter().sum();
        assert_eq!(total, n);
        // At least one other worker must have obtained work.
        let busy = stats.items_per_worker.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 2, "{:?}", stats.items_per_worker);
    }

    #[test]
    fn imbalance_metric() {
        let stats = LoadStats {
            items_per_worker: vec![10, 10, 10, 10],
            steals_per_worker: vec![0; 4],
        };
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
        let skew = LoadStats {
            items_per_worker: vec![40, 0, 0, 0],
            steals_per_worker: vec![0; 4],
        };
        assert!((skew.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_worker_state_is_private_and_initialized_once() {
        use std::sync::Mutex;
        // Each worker's state is a (worker_tag, count) pair; verify init
        // runs once per worker thread and state never crosses threads.
        let inits = AtomicU32::new(0);
        let observed = Mutex::new(Vec::new());
        let n = 300;
        parallel_for_init(
            n,
            &PoolConfig {
                threads: 3,
                grain: 5,
            },
            || {
                let tag = inits.fetch_add(1, Ordering::SeqCst);
                (tag, 0usize)
            },
            |(tag, count), _i| {
                *count += 1;
                observed.lock().unwrap().push((*tag, *count));
            },
        );
        assert!(inits.load(Ordering::SeqCst) <= 3);
        // Per-tag counts must be the strictly increasing sequence 1..=k —
        // interleaving across threads would break it if state leaked.
        let mut per_tag: std::collections::HashMap<u32, usize> = Default::default();
        let mut total = 0usize;
        for (tag, count) in observed.into_inner().unwrap() {
            let prev = per_tag.entry(tag).or_insert(0);
            assert_eq!(count, *prev + 1, "tag {tag}");
            *prev = count;
            total += 1;
        }
        assert_eq!(total, n);
    }

    #[test]
    fn grain_larger_than_n_degenerates_to_serial() {
        let hits: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        let stats = parallel_for(
            10,
            &PoolConfig {
                threads: 8,
                grain: 100,
            },
            |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Serial fast path reports a single worker.
        assert_eq!(stats.items_per_worker, vec![10]);
        assert_eq!(stats.steals_per_worker, vec![0]);
    }

    #[test]
    fn panics_in_tasks_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(
                50,
                &PoolConfig {
                    threads: 2,
                    grain: 1,
                },
                |i| {
                    if i == 17 {
                        panic!("injected");
                    }
                },
            );
        });
        assert!(result.is_err(), "worker panic must not be swallowed");
    }

    #[test]
    fn steals_are_recorded() {
        // With more threads than one and per-item chunks from the
        // injector, at least one acquisition is counted as a steal (the
        // injector grab itself counts).
        let stats = parallel_for(
            64,
            &PoolConfig {
                threads: 2,
                grain: 1,
            },
            |_| std::thread::yield_now(),
        );
        let steals: usize = stats.steals_per_worker.iter().sum();
        assert!(steals > 0);
    }
}
