//! Cross-instance determinism: two drivers built from the same calibration
//! in the same process must produce bit-identical policies. This guards
//! the checkpoint/restart path (a resumed run continues the interrupted
//! one exactly) against hash-seed or iteration-order nondeterminism.

use hddm_core::{DriverConfig, OlgStep, TimeIteration};
use hddm_kernels::KernelKind;
use hddm_olg::{Calibration, OlgModel, PolicyOracle};
use hddm_sched::PoolConfig;

fn config(max_steps: usize) -> DriverConfig {
    DriverConfig {
        kernel: KernelKind::X86,
        start_level: 2,
        max_steps,
        tolerance: 0.0,
        pool: PoolConfig {
            threads: 1,
            grain: 4,
        },
        ..Default::default()
    }
}

fn probe(ti: &TimeIteration<OlgStep>, x: &[f64]) -> Vec<Vec<f64>> {
    let mut oracle = ti.policy.oracle(KernelKind::X86);
    (0..2)
        .map(|z| {
            let mut row = vec![0.0; 8];
            oracle.eval(z, x, &mut row);
            row
        })
        .collect()
}

#[test]
fn two_fresh_runs_are_bitwise_identical() {
    let make = || OlgModel::new(Calibration::small(5, 3, 2, 0.03));
    let x = make().steady.state_vector();
    let mut a = TimeIteration::new(OlgStep::new(make()), config(4));
    a.run();
    let mut b = TimeIteration::new(OlgStep::new(make()), config(4));
    b.run();
    assert_eq!(probe(&a, &x), probe(&b, &x));
}

#[test]
fn multithreaded_run_matches_single_thread() {
    // Disjoint-row writes and the deterministic merge make thread count
    // irrelevant to the result.
    let make = || OlgModel::new(Calibration::small(5, 3, 2, 0.03));
    let x = make().steady.state_vector();
    let mut serial = TimeIteration::new(OlgStep::new(make()), config(3));
    serial.run();
    let mut cfg = config(3);
    cfg.pool = PoolConfig {
        threads: 4,
        grain: 1,
    };
    let mut parallel = TimeIteration::new(OlgStep::new(make()), cfg);
    parallel.run();
    assert_eq!(probe(&serial, &x), probe(&parallel, &x));
}
