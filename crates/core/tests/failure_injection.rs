//! Failure injection for the driver's per-point fallback chain:
//! warm-start solve → cold-restart solve → keep the previous policy row.
//! A production run on 4,096 nodes cannot afford one stubborn Newton
//! failure aborting a 20,000-second step, so failures must degrade
//! gracefully and be *counted* (the `solver_failures` field of
//! [`StepReport`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use hddm_core::{DriverConfig, StepModel, TimeIteration};
use hddm_kernels::KernelKind;
use hddm_olg::PolicyOracle;
use hddm_sched::PoolConfig;
use hddm_solver::SolverError;

/// A 2-D toy model: the fixed point of `p(x) = 0.5·pnext(x) + x₀` per dof.
/// Failure bands are carved out of the domain:
/// * `x₀ > 0.75` — the warm-start attempt fails, the cold restart works
///   (exercises the retry leg);
/// * `x₀ < 0.25` — both attempts fail (exercises the keep-pnext leg).
struct FlakyModel {
    warm_failures: AtomicUsize,
    hard_failures: AtomicUsize,
}

const COLD_MARKER: f64 = -123.0;

impl StepModel for FlakyModel {
    fn dim(&self) -> usize {
        2
    }
    fn ndofs(&self) -> usize {
        2
    }
    fn num_states(&self) -> usize {
        1
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0, 0.0], vec![1.0, 1.0])
    }
    fn initial_row(&self) -> Vec<f64> {
        vec![COLD_MARKER, COLD_MARKER]
    }
    fn solve_point_row(
        &self,
        _z: usize,
        x: &[f64],
        warm: &[f64],
        oracle: &mut dyn PolicyOracle,
    ) -> Result<Vec<f64>, SolverError> {
        let is_cold_attempt = warm[0] == COLD_MARKER;
        if x[0] < 0.25 {
            self.hard_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SolverError::MaxIterations { residual: 1.0 });
        }
        if x[0] > 0.75 && !is_cold_attempt {
            self.warm_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SolverError::MaxIterations { residual: 0.5 });
        }
        let mut next = vec![0.0; 2];
        oracle.eval(0, x, &mut next);
        // On the very first step pnext is the COLD_MARKER constant; treat
        // it as zero so the iteration contracts toward the fixed point.
        let base: Vec<f64> = next
            .iter()
            .map(|&v| if v == COLD_MARKER { 0.0 } else { v })
            .collect();
        Ok(vec![0.5 * base[0] + x[0], 0.5 * base[1] + x[0]])
    }
}

fn run(max_steps: usize) -> (TimeIteration<FlakyModel>, Vec<hddm_core::StepReport>) {
    let mut ti = TimeIteration::new(
        FlakyModel {
            warm_failures: AtomicUsize::new(0),
            hard_failures: AtomicUsize::new(0),
        },
        DriverConfig {
            kernel: KernelKind::X86,
            start_level: 3,
            max_steps,
            tolerance: 0.0,
            pool: PoolConfig {
                threads: 2,
                grain: 1,
            },
            ..Default::default()
        },
    );
    let reports = ti.run();
    (ti, reports)
}

#[test]
fn failures_are_counted_and_do_not_abort_the_step() {
    let (ti, reports) = run(3);
    let report = reports.last().unwrap();
    assert!(
        ti.model.warm_failures.load(Ordering::Relaxed) > 0,
        "no warm failures injected"
    );
    assert!(
        ti.model.hard_failures.load(Ordering::Relaxed) > 0,
        "no hard failures injected"
    );
    assert!(
        report.solver_failures > 0,
        "driver did not record the injected failures"
    );
    // Every state still produced a full policy (the step completed).
    assert!(report.points_per_state.iter().all(|&p| p > 0));
}

#[test]
fn hard_failure_points_keep_the_previous_policy() {
    // After one step, points in the always-fail band must carry pnext's
    // value (the initial constant row) — the final fallback leg.
    let (ti, _) = run(1);
    let mut oracle = ti.policy.oracle(KernelKind::X86);
    let mut row = vec![0.0; 2];
    // x₀ = 0 is a level-2 grid node inside the always-fail band, so the
    // interpolant there *is* the fallback nodal value.
    oracle.eval(0, &[0.0, 0.5], &mut row);
    assert_eq!(row, vec![COLD_MARKER, COLD_MARKER]);
}

#[test]
fn cold_restart_rescues_warm_failures() {
    // Points in the warm-fail band are solved by the cold retry: their
    // policy is NOT the fallback constant.
    let (ti, _) = run(1);
    let mut oracle = ti.policy.oracle(KernelKind::X86);
    let mut row = vec![0.0; 2];
    oracle.eval(0, &[0.875, 0.5], &mut row);
    assert!(
        (row[0] - 0.875).abs() < 1e-9,
        "cold retry did not solve the point: {row:?}"
    );
}

#[test]
fn failure_free_region_converges_to_fixed_point() {
    // In the clean band the contraction p = 0.5 p + x₀ has fixed point
    // 2·x₀; time iteration must find it despite failures elsewhere.
    let (ti, reports) = run(40);
    assert!(reports.len() >= 10);
    let mut oracle = ti.policy.oracle(KernelKind::X86);
    let mut row = vec![0.0; 2];
    oracle.eval(0, &[0.5, 0.5], &mut row);
    assert!((row[0] - 1.0).abs() < 1e-6, "fixed point missed: {row:?}");
}
