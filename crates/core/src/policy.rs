//! Policy-function storage: one adaptive sparse grid interpolant per
//! discrete state, with domain scaling and the kernel-backed
//! [`PolicyOracle`] the per-point solver calls 16 times per residual.

use hddm_asg::BoxDomain;
use hddm_kernels::{CompressedState, KernelKind, MultiState, Scratch};
use hddm_olg::PolicyOracle;

/// The policy `p = (p(z=1), …, p(z=Ns))` of one time-iteration step:
/// per-state compressed interpolants over a shared physical domain.
#[derive(Clone, Debug)]
pub struct PolicySet {
    /// Per-state interpolants (compressed, chain-ordered surpluses).
    pub states: MultiState,
    /// The physical box `B` all states share.
    pub domain: BoxDomain,
}

impl PolicySet {
    /// Bundles per-state interpolants with the domain.
    pub fn new(states: Vec<CompressedState>, domain: BoxDomain) -> Self {
        PolicySet {
            states: MultiState::new(states),
            domain,
        }
    }

    /// Points per state (`M_z`).
    pub fn points_per_state(&self) -> Vec<usize> {
        self.states.points_per_state()
    }

    /// An oracle view over this policy set using `kernel`.
    pub fn oracle(&self, kernel: KernelKind) -> AsgOracle<'_> {
        AsgOracle {
            set: self,
            kernel,
            scratch: Scratch::default(),
            phys: vec![0.0; self.domain.dim()],
            unit: vec![0.0; self.domain.dim()],
        }
    }
}

/// [`PolicyOracle`] implementation on compressed ASG kernels: clamps the
/// physical query into `B` (the paper's domain truncation), rescales to
/// the unit cube, and evaluates the requested state's interpolant.
pub struct AsgOracle<'a> {
    set: &'a PolicySet,
    kernel: KernelKind,
    scratch: Scratch,
    phys: Vec<f64>,
    unit: Vec<f64>,
}

impl PolicyOracle for AsgOracle<'_> {
    fn eval(&mut self, z_next: usize, x_next: &[f64], out: &mut [f64]) {
        self.phys.copy_from_slice(x_next);
        self.set.domain.clamp(&mut self.phys);
        self.set.domain.to_unit(&self.phys, &mut self.unit);
        self.set
            .states
            .evaluate_one(self.kernel, z_next, &self.unit, &mut self.scratch, out);
    }
}

impl AsgOracle<'_> {
    /// Evaluates the interpolant of state `z` at a *unit-cube* point
    /// (driver-internal shortcut when the point is already scaled).
    pub fn eval_unit(&mut self, z: usize, unit: &[f64], out: &mut [f64]) {
        self.set
            .states
            .evaluate_one(self.kernel, z, unit, &mut self.scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::{hierarchize, regular_grid, tabulate};

    fn linear_state(domain: &BoxDomain, slope: f64) -> CompressedState {
        // Interpolant of f(x) = slope · x_phys[0] over the domain.
        let grid = regular_grid(domain.dim(), 3);
        let lo = domain.lo()[0];
        let width = domain.width(0);
        let mut surplus = tabulate(&grid, 1, |u, out| {
            out[0] = slope * (lo + u[0] * width);
        });
        hierarchize(&grid, &mut surplus, 1);
        CompressedState::new(&grid, &surplus, 1)
    }

    #[test]
    fn oracle_scales_physical_coordinates() {
        let domain = BoxDomain::new(vec![2.0, -1.0], vec![6.0, 1.0]);
        let set = PolicySet::new(
            vec![linear_state(&domain, 1.0), linear_state(&domain, -2.0)],
            domain,
        );
        let mut oracle = set.oracle(KernelKind::X86);
        let mut out = [0.0];
        oracle.eval(0, &[3.0, 0.0], &mut out);
        assert!((out[0] - 3.0).abs() < 1e-9, "{}", out[0]);
        oracle.eval(1, &[5.0, 0.5], &mut out);
        assert!((out[0] + 10.0).abs() < 1e-9, "{}", out[0]);
    }

    #[test]
    fn oracle_clamps_out_of_box_queries() {
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let set = PolicySet::new(vec![linear_state(&domain, 1.0)], domain);
        let mut oracle = set.oracle(KernelKind::Avx2);
        let mut out = [0.0];
        oracle.eval(0, &[5.0, 0.5], &mut out); // x0 clamped to 1.0
        assert!((out[0] - 1.0).abs() < 1e-9);
        oracle.eval(0, &[-3.0, 0.5], &mut out); // clamped to 0.0
        assert!(out[0].abs() < 1e-9);
    }
}
