//! The parallel time-iteration driver — Algorithm 1 of the paper, with the
//! per-step structure of Fig. 2: for each discrete state, build this
//! step's ASG level by level (solve the frontier, hierarchize, refine),
//! interpolating next-period policies `pnext` through the compressed
//! kernels; then merge into the new policy and iterate to convergence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hddm_telemetry::{Histogram, Registry};

use hddm_asg::{refine_frontier, regular_grid, BoxDomain, RefineConfig, SparseGrid, SurplusNorm};
use hddm_compress::CompressedGrid;
use hddm_gpu::ExecutionBackend;
use hddm_kernels::{CompressedState, KernelKind, PointBlock, Scratch};
use hddm_olg::PolicyOracle;
use hddm_sched::{parallel_for_init, PoolConfig};
use hddm_solver::SolverError;

use crate::disjoint::DisjointRows;
use crate::policy::PolicySet;

/// What the driver needs from an economic model: the state-space shape and
/// a per-point solve. Implemented for [`hddm_olg::OlgModel`] via
/// [`crate::olg_step::OlgStep`], and by toy contraction maps in tests.
pub trait StepModel: Sync {
    /// Continuous state dimensionality `d`.
    fn dim(&self) -> usize;
    /// Coefficients per grid point.
    fn ndofs(&self) -> usize;
    /// Number of discrete states `Ns`.
    fn num_states(&self) -> usize;
    /// The physical box `B` (lower, upper bounds).
    fn bounds(&self) -> (Vec<f64>, Vec<f64>);
    /// The constant initial policy guess `p⁰`.
    fn initial_row(&self) -> Vec<f64>;
    /// Solves the point problem at `(z, x_phys)` with warm start `warm`
    /// (the previous policy at this point), interpolating next-period
    /// policies through `oracle`. Returns the solved dof row.
    fn solve_point_row(
        &self,
        z: usize,
        x_phys: &[f64],
        warm: &[f64],
        oracle: &mut dyn PolicyOracle,
    ) -> Result<Vec<f64>, SolverError>;
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Interpolation kernel for `pnext` evaluations.
    pub kernel: KernelKind,
    /// Which engine evaluates batched `PointBlock` calls (warm-start
    /// frontier evaluation, change measurement, incremental
    /// hierarchization). [`ExecutionBackend::Cpu`] dispatches through
    /// `kernel`; [`ExecutionBackend::Gpu`] routes blocks through the
    /// simulated device (single-point oracle calls inside the per-point
    /// solver stay on the CPU either way).
    pub backend: ExecutionBackend,
    /// Regular sparse-grid level every step starts from (the paper
    /// restarts from level 2).
    pub start_level: u8,
    /// Adaptive refinement threshold ε; `None` keeps the regular
    /// `start_level` grid (the strong-scaling benchmark configuration).
    pub refine_epsilon: Option<f64>,
    /// Maximum refinement level `Lmax` (paper: 6).
    pub max_level: u8,
    /// Surplus norm for the refinement indicator.
    pub refine_norm: SurplusNorm,
    /// Intra-step thread pool.
    pub pool: PoolConfig,
    /// Stop after this many time-iteration steps.
    pub max_steps: usize,
    /// Convergence tolerance on the sup policy change.
    pub tolerance: f64,
    /// Telemetry registry receiving per-phase span timings
    /// (`hddm_solve_*_seconds`); `None` disables phase timing entirely.
    pub telemetry: Option<Registry>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            kernel: KernelKind::Avx2,
            backend: ExecutionBackend::Cpu,
            start_level: 2,
            refine_epsilon: None,
            max_level: 6,
            refine_norm: SurplusNorm::MaxAbs,
            pool: PoolConfig::default(),
            max_steps: 100,
            tolerance: 1e-6,
            telemetry: None,
        }
    }
}

/// Phase-span histograms resolved once per step; instrument names follow the
/// `hddm_solve_<phase>_seconds` scheme documented in the README.
struct PhaseSpans {
    policy_update: Arc<Histogram>,
    hierarchize: Arc<Histogram>,
    refine: Arc<Histogram>,
    compress: Arc<Histogram>,
}

impl PhaseSpans {
    fn resolve(registry: &Registry) -> PhaseSpans {
        PhaseSpans {
            policy_update: registry.histogram("hddm_solve_policy_update_seconds"),
            hierarchize: registry.histogram("hddm_solve_hierarchize_seconds"),
            refine: registry.histogram("hddm_solve_refine_seconds"),
            compress: registry.histogram("hddm_solve_compress_seconds"),
        }
    }
}

/// Runs `f`, recording its wall time into `hist` when spans are enabled.
fn timed<T>(hist: Option<&Arc<Histogram>>, f: impl FnOnce() -> T) -> T {
    match hist {
        Some(hist) => {
            let start = Instant::now();
            let out = f();
            hist.record(start.elapsed().as_secs_f64());
            out
        }
        None => f(),
    }
}

/// Per-step diagnostics (the raw material of Fig. 9).
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step index (0-based).
    pub step: usize,
    /// `‖p − pnext‖_∞` over grid points (savings dofs, relative).
    pub sup_change: f64,
    /// RMS policy change.
    pub l2_change: f64,
    /// Grid points per discrete state after refinement (`M_z`).
    pub points_per_state: Vec<usize>,
    /// New points per refinement level, per state (Fig. 8's level split).
    pub level_points: Vec<Vec<usize>>,
    /// Point solves that fell back after solver failure.
    pub solver_failures: usize,
    /// Wall-clock seconds for the step.
    pub wall_seconds: f64,
}

/// The time-iteration state machine.
pub struct TimeIteration<M: StepModel> {
    /// The economic model being solved.
    pub model: M,
    /// Driver configuration.
    pub config: DriverConfig,
    /// The current policy guess `pnext`.
    pub policy: PolicySet,
    step: usize,
}

/// Builds the step-0 policy: the constant row `p⁰ = initial_row` on the
/// start-level regular grid, one interpolant per discrete state. Pure
/// function of the model and `start_level`, so every rank of a distributed
/// run constructs an identical copy without communication.
pub fn initial_policy<M: StepModel>(model: &M, start_level: u8) -> PolicySet {
    let (lo, hi) = model.bounds();
    let domain = BoxDomain::new(lo, hi);
    let ndofs = model.ndofs();
    let row = model.initial_row();
    assert_eq!(row.len(), ndofs);
    let grid = regular_grid(model.dim(), start_level);
    // A constant function hierarchizes to a single root surplus; build
    // it directly.
    let mut values = vec![0.0; grid.len() * ndofs];
    for chunk in values.chunks_exact_mut(ndofs) {
        chunk.copy_from_slice(&row);
    }
    hddm_asg::hierarchize(&grid, &mut values, ndofs);
    // One compression serves every state: the start-level grid is shared.
    let cg = CompressedGrid::build(&grid);
    let chain_order = cg.reorder_rows(&values, ndofs);
    let states = (0..model.num_states())
        .map(|_| CompressedState::from_parts(cg.clone(), chain_order.clone(), ndofs))
        .collect();
    PolicySet::new(states, domain)
}

impl<M: StepModel> TimeIteration<M> {
    /// Initializes with the constant policy `p⁰ = initial_row` on the
    /// start-level regular grid.
    pub fn new(model: M, config: DriverConfig) -> Self {
        let policy = initial_policy(&model, config.start_level);
        TimeIteration {
            model,
            config,
            policy,
            step: 0,
        }
    }

    /// Rebuilds a driver around an existing policy (the checkpoint-resume
    /// path): no initial-guess construction, the supplied policy *is* the
    /// current `pnext` and `step` continues the original counter.
    pub fn with_policy(model: M, config: DriverConfig, policy: PolicySet, step: usize) -> Self {
        assert_eq!(
            policy.domain.dim(),
            model.dim(),
            "policy/model dim mismatch"
        );
        assert_eq!(
            policy.states.num_states(),
            model.num_states(),
            "policy/model state count mismatch"
        );
        TimeIteration {
            model,
            config,
            policy,
            step,
        }
    }

    /// Number of time-iteration steps executed so far.
    #[inline]
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Executes one time-iteration step (Fig. 2), replacing the policy.
    pub fn step(&mut self) -> StepReport {
        let start = Instant::now();
        let ndofs = self.model.ndofs();
        let dim = self.model.dim();
        let ns = self.model.num_states();
        let domain = self.policy.domain.clone();
        let spans = self.config.telemetry.as_ref().map(PhaseSpans::resolve);
        let spans = spans.as_ref();

        let mut new_states = Vec::with_capacity(ns);
        let mut sup_change = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut change_count = 0usize;
        let mut failures = 0usize;
        let mut level_points: Vec<Vec<usize>> = Vec::new();

        for z in 0..ns {
            let mut grid = regular_grid(dim, self.config.start_level);
            let mut values: Vec<f64> = Vec::new(); // nodal rows, grid order
            let mut frontier: Vec<u32> = (0..grid.len() as u32).collect();
            let mut surpluses: Vec<f64> = Vec::new();
            let mut levels_here: Vec<usize> = Vec::new();
            let mut hier = IncrementalHierarchizer::with_backend(
                self.config.kernel,
                self.config.backend.clone(),
                dim,
                ndofs,
            );

            loop {
                levels_here.push(frontier.len());
                // --- Solve the frontier in parallel against pnext.
                let solved = timed(spans.map(|s| &s.policy_update), || {
                    self.solve_points(z, &grid, &frontier, &domain, &mut failures)
                });
                // --- Measure policy change at these points (vs pnext).
                let (s, q, c) = self.measure_change(z, &grid, &frontier, &solved);
                sup_change = sup_change.max(s);
                sum_sq += q;
                change_count += c;
                values.extend_from_slice(&solved);

                // --- Hierarchize the new rows against the current partial
                // interpolant of *this* step (coarser levels already done);
                // the hierarchizer extends its compressed state in place.
                let new_surpluses = timed(spans.map(|s| &s.hierarchize), || {
                    hier.extend(&grid, &frontier, &solved)
                });
                surpluses.extend_from_slice(&new_surpluses);

                // --- Refine.
                let Some(epsilon) = self.config.refine_epsilon else {
                    break;
                };
                let refine_config = RefineConfig {
                    epsilon,
                    max_level: self.config.max_level,
                    norm: self.config.refine_norm,
                };
                let report = timed(spans.map(|s| &s.refine), || {
                    refine_frontier(&mut grid, &surpluses, ndofs, &frontier, &refine_config)
                });
                if report.new_nodes.is_empty() {
                    break;
                }
                frontier = report.new_nodes;
            }

            if level_points.len() < levels_here.len() {
                level_points.resize(levels_here.len(), vec![0; ns]);
            }
            for (l, &count) in levels_here.iter().enumerate() {
                level_points[l][z] = count;
            }

            let (cg, chain_order) = timed(spans.map(|s| &s.compress), || {
                let cg = CompressedGrid::build(&grid);
                let chain_order = cg.reorder_rows(&surpluses, ndofs);
                (cg, chain_order)
            });
            new_states.push(CompressedState::from_parts(cg, chain_order, ndofs));
        }

        let report = StepReport {
            step: self.step,
            sup_change,
            l2_change: (sum_sq / change_count.max(1) as f64).sqrt(),
            points_per_state: new_states.iter().map(|s| s.grid.nno()).collect(),
            level_points,
            solver_failures: failures,
            wall_seconds: start.elapsed().as_secs_f64(),
        };
        self.policy = PolicySet::new(new_states, domain);
        self.step += 1;
        report
    }

    /// Runs until `‖p − pnext‖_∞ < tolerance` or `max_steps`.
    pub fn run(&mut self) -> Vec<StepReport> {
        let mut reports = Vec::new();
        for _ in 0..self.config.max_steps {
            let report = self.step();
            let done = report.sup_change < self.config.tolerance;
            reports.push(report);
            if done {
                break;
            }
        }
        reports
    }

    /// Solves a set of grid points in parallel, returning their dof rows
    /// in frontier order.
    fn solve_points(
        &self,
        z: usize,
        grid: &SparseGrid,
        frontier: &[u32],
        domain: &BoxDomain,
        failures: &mut usize,
    ) -> Vec<f64> {
        let ndofs = self.model.ndofs();
        let dim = self.model.dim();
        let rows = DisjointRows::zeros(frontier.len(), ndofs);
        let failure_count = AtomicUsize::new(0);
        let model = &self.model;
        let policy = &self.policy;
        let kernel = self.config.kernel;

        // Warm starts — pnext at every frontier point — as ONE batched
        // evaluation through the backend before dispatch, instead of a
        // single-point oracle call inside each task: the whole frontier
        // walks the compressed structure once (bitwise equal per point,
        // so the solves are unchanged).
        let warm_rows = {
            let mut unit = vec![0.0; dim];
            let mut point_rows = Vec::with_capacity(frontier.len() * dim);
            for &p in frontier {
                grid.unit_point_of(p as usize, &mut unit);
                point_rows.extend_from_slice(&unit);
            }
            let block = PointBlock::from_rows(dim, &point_rows);
            let mut scratch = Scratch::default();
            let mut warm = vec![0.0; frontier.len() * ndofs];
            self.config.backend.evaluate_batch(
                kernel,
                policy.states.state(z),
                &block,
                &mut scratch,
                &mut warm,
            );
            warm
        };
        let warm_rows = &warm_rows;

        parallel_for_init(
            frontier.len(),
            &self.config.pool,
            || {
                (
                    policy.oracle(kernel),
                    vec![0.0; dim], // unit point
                    vec![0.0; dim], // physical point
                )
            },
            |(oracle, unit, phys), i| {
                grid.unit_point_of(frontier[i] as usize, unit);
                domain.from_unit(unit, phys);
                // Warm start: pnext at this very point (precomputed).
                let warm = &warm_rows[i * ndofs..(i + 1) * ndofs];
                let row = match model.solve_point_row(z, phys, warm, oracle) {
                    Ok(row) => row,
                    Err(_) => {
                        // Retry from the cold constant guess; fall back to
                        // the warm-start row if the solver fails again.
                        // ORDERING: Relaxed — retry tally summed after
                        // the parallel loop joins; atomicity suffices.
                        failure_count.fetch_add(1, Ordering::Relaxed);
                        let cold = model.initial_row();
                        model
                            .solve_point_row(z, phys, &cold, oracle)
                            .unwrap_or_else(|_| warm.to_vec())
                    }
                };
                rows.write_row(i, &row);
            },
        );
        // ORDERING: Relaxed — `parallel_for` has joined its workers, so
        // this is a single-threaded read-out of the tally.
        *failures += failure_count.load(Ordering::Relaxed);
        rows.into_vec()
    }

    /// Policy-change metrics at the frontier points: sup and squared-sum
    /// of the relative difference between the new rows and pnext. The
    /// frontier is evaluated against pnext as one batched kernel call.
    fn measure_change(
        &self,
        z: usize,
        grid: &SparseGrid,
        frontier: &[u32],
        solved: &[f64],
    ) -> (f64, f64, usize) {
        let ndofs = self.model.ndofs();
        let dim = self.model.dim();
        let mut unit = vec![0.0; dim];
        let mut rows = Vec::with_capacity(frontier.len() * dim);
        for &p in frontier {
            grid.unit_point_of(p as usize, &mut unit);
            rows.extend_from_slice(&unit);
        }
        let block = PointBlock::from_rows(dim, &rows);
        let mut scratch = Scratch::default();
        let mut old = vec![0.0; frontier.len() * ndofs];
        self.config.backend.evaluate_batch(
            self.config.kernel,
            self.policy.states.state(z),
            &block,
            &mut scratch,
            &mut old,
        );
        let mut sup = 0.0f64;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for (new_row, old_row) in solved.chunks_exact(ndofs).zip(old.chunks_exact(ndofs)) {
            for k in 0..ndofs {
                let delta = (new_row[k] - old_row[k]).abs() / (1.0 + old_row[k].abs());
                sup = sup.max(delta);
                sum_sq += delta * delta;
                count += 1;
            }
        }
        (sup, sum_sq, count)
    }
}

/// Incremental hierarchization of one state's grid within one
/// time-iteration step: computes surpluses of each refinement frontier
/// relative to the partial interpolant built so far
/// (`α_p = f(x_p) − u_partial(x_p)`) and **extends** that interpolant in
/// place, so the compressed structure is never rebuilt per level — the
/// per-step compression pipeline runs exactly once, on the finished grid
/// (asserted against [`hddm_compress::compression_builds`] by test).
///
/// Ancestor closure can mix level sums within one refinement batch, and
/// a coarser new node contributes to a finer new node's interpolant — so
/// each batch is processed in ascending-`|ľ|₁` groups, evaluating every
/// group against the partial interpolant as **one batched kernel call**
/// ([`KernelKind::evaluate_compressed_batch`]) and folding it in via
/// [`CompressedState::extend_from_frontier`] before the next (within a
/// group, cross terms vanish at grid points; see `hddm-asg`). Shared by
/// the single-process driver and the distributed step
/// (`crate::distributed`); deterministic, so every rank hierarchizing the
/// same rows gets bitwise identical surpluses.
pub struct IncrementalHierarchizer {
    kernel: KernelKind,
    backend: ExecutionBackend,
    ndofs: usize,
    state: CompressedState,
    scratch: Scratch,
}

impl IncrementalHierarchizer {
    /// A fresh hierarchizer for one `(state, step)` grid construction,
    /// evaluating on the CPU kernels.
    pub fn new(kernel: KernelKind, dim: usize, ndofs: usize) -> Self {
        Self::with_backend(kernel, ExecutionBackend::Cpu, dim, ndofs)
    }

    /// A fresh hierarchizer whose group evaluations dispatch through
    /// `backend` ([`ExecutionBackend::Cpu`] reproduces [`Self::new`]).
    pub fn with_backend(
        kernel: KernelKind,
        backend: ExecutionBackend,
        dim: usize,
        ndofs: usize,
    ) -> Self {
        IncrementalHierarchizer {
            kernel,
            backend,
            ndofs,
            state: CompressedState::empty(dim, ndofs),
            scratch: Scratch::default(),
        }
    }

    /// The partial interpolant built so far (kernel-ready; covers every
    /// frontier folded in to date).
    pub fn state(&self) -> &CompressedState {
        &self.state
    }

    /// Hierarchizes the next frontier batch: returns the new surplus rows
    /// in frontier order and extends the partial interpolant. The first
    /// call must cover the whole start-level grid (a plain
    /// hierarchization); later calls cover refinement frontiers.
    pub fn extend(&mut self, grid: &SparseGrid, frontier: &[u32], solved: &[f64]) -> Vec<f64> {
        let ndofs = self.ndofs;
        assert_eq!(solved.len(), frontier.len() * ndofs, "ragged solved rows");
        if self.state.grid.nno() == 0 {
            // First batch: the frontier is the whole start-level grid.
            debug_assert!(frontier.iter().enumerate().all(|(i, &p)| i == p as usize));
            let mut values = solved.to_vec();
            hddm_asg::hierarchize(grid, &mut values, ndofs);
            self.state.extend_from_frontier(grid, frontier, &values);
            return values;
        }
        let dim = grid.dim();

        // Group frontier positions by level sum, ascending.
        let mut order: Vec<usize> = (0..frontier.len()).collect();
        let level_of = |pos: usize| grid.node(frontier[pos] as usize).level_sum(dim);
        order.sort_by_key(|&pos| level_of(pos));

        let mut unit = vec![0.0; dim];
        let mut out = vec![0.0; frontier.len() * ndofs];
        let mut point_rows: Vec<f64> = Vec::new();
        let mut interp: Vec<f64> = Vec::new();
        let mut group_ids: Vec<u32> = Vec::new();
        let mut group_rows: Vec<f64> = Vec::new();

        let mut at = 0usize;
        while at < order.len() {
            let group_level = level_of(order[at]);
            let group_end = order[at..]
                .iter()
                .position(|&pos| level_of(pos) != group_level)
                .map(|offset| at + offset)
                .unwrap_or(order.len());
            let group = &order[at..group_end];

            // One batched evaluation of the whole group against the
            // interpolant over everything strictly processed so far
            // (rows gathered point-major, transposed to SoA in one pass).
            point_rows.clear();
            for &pos in group {
                grid.unit_point_of(frontier[pos] as usize, &mut unit);
                point_rows.extend_from_slice(&unit);
            }
            let block = PointBlock::from_rows(dim, &point_rows);
            interp.clear();
            interp.resize(group.len() * ndofs, 0.0);
            self.backend.evaluate_batch(
                self.kernel,
                &self.state,
                &block,
                &mut self.scratch,
                &mut interp,
            );

            group_ids.clear();
            group_rows.clear();
            for (g, &pos) in group.iter().enumerate() {
                let row = &solved[pos * ndofs..(pos + 1) * ndofs];
                let ev = &interp[g * ndofs..(g + 1) * ndofs];
                for k in 0..ndofs {
                    out[pos * ndofs + k] = row[k] - ev[k];
                }
                group_ids.push(frontier[pos]);
                group_rows.extend_from_slice(&out[pos * ndofs..(pos + 1) * ndofs]);
            }
            // Fold the group into the partial interpolant (append-only —
            // no recompression, no surplus permutation).
            self.state
                .extend_from_frontier(grid, &group_ids, &group_rows);
            at = group_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A contraction toy model: the solved row is
    /// `0.5·mean_z'(pnext(z', x)) + g(x)` with additive-linear `g`, whose
    /// recursive fixed point is `p*(x) = 2·g(x)` — exactly representable
    /// on the level-2 sparse grid, so the driver must converge to it
    /// geometrically (rate ½).
    struct Contraction {
        dim: usize,
        states: usize,
    }

    impl Contraction {
        fn g(&self, x: &[f64]) -> f64 {
            0.3 + x
                .iter()
                .enumerate()
                .map(|(t, &v)| (t as f64 + 1.0) * 0.1 * v)
                .sum::<f64>()
        }
    }

    impl StepModel for Contraction {
        fn dim(&self) -> usize {
            self.dim
        }
        fn ndofs(&self) -> usize {
            1
        }
        fn num_states(&self) -> usize {
            self.states
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.dim], vec![1.0; self.dim])
        }
        fn initial_row(&self) -> Vec<f64> {
            vec![0.0]
        }
        fn solve_point_row(
            &self,
            _z: usize,
            x: &[f64],
            _warm: &[f64],
            oracle: &mut dyn PolicyOracle,
        ) -> Result<Vec<f64>, SolverError> {
            let mut acc = 0.0;
            let mut out = [0.0];
            for z_next in 0..self.states {
                oracle.eval(z_next, x, &mut out);
                acc += out[0];
            }
            Ok(vec![0.5 * acc / self.states as f64 + self.g(x)])
        }
    }

    #[test]
    fn contraction_converges_to_fixed_point() {
        let model = Contraction { dim: 3, states: 2 };
        let config = DriverConfig {
            start_level: 2,
            max_steps: 60,
            tolerance: 1e-10,
            pool: PoolConfig {
                threads: 2,
                grain: 4,
            },
            ..Default::default()
        };
        let mut ti = TimeIteration::new(model, config);
        let reports = ti.run();
        assert!(
            reports.last().unwrap().sup_change < 1e-10,
            "final change {}",
            reports.last().unwrap().sup_change
        );
        // Geometric decay at rate ~1/2.
        assert!(reports.len() > 5);
        for pair in reports.windows(2).take(20) {
            if pair[0].sup_change > 1e-8 {
                let rate = pair[1].sup_change / pair[0].sup_change;
                assert!(rate < 0.75, "rate {rate}");
            }
        }
        // Fixed point = 2·g at an interior probe.
        let mut oracle = ti.policy.oracle(KernelKind::X86);
        let model = Contraction { dim: 3, states: 2 };
        let probe = [0.25, 0.5, 0.75];
        let mut out = [0.0];
        oracle.eval(0, &probe, &mut out);
        assert!(
            (out[0] - 2.0 * model.g(&probe)).abs() < 1e-7,
            "{} vs {}",
            out[0],
            2.0 * model.g(&probe)
        );
    }

    #[test]
    fn adaptive_refinement_grows_grids_when_needed() {
        let config = DriverConfig {
            start_level: 2,
            refine_epsilon: Some(1e-3),
            max_level: 7,
            max_steps: 1,
            ..Default::default()
        };
        let mut ti = TimeIteration::new(Kinked, config);
        let report = ti.step();
        let level2_size = hddm_asg::regular_grid_size(2, 2) as usize;
        assert!(
            report.points_per_state[0] > level2_size,
            "no refinement happened: {:?}",
            report.points_per_state
        );
        assert!(report.level_points.len() > 1);
    }

    /// Fixed point has a kink → adaptivity adds points (shared by the
    /// refinement and compression-count tests).
    struct Kinked;
    impl StepModel for Kinked {
        fn dim(&self) -> usize {
            2
        }
        fn ndofs(&self) -> usize {
            1
        }
        fn num_states(&self) -> usize {
            1
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn initial_row(&self) -> Vec<f64> {
            vec![0.0]
        }
        fn solve_point_row(
            &self,
            _z: usize,
            x: &[f64],
            _warm: &[f64],
            _oracle: &mut dyn PolicyOracle,
        ) -> Result<Vec<f64>, SolverError> {
            Ok(vec![(x[0] - 0.3).abs() + 0.2 * x[1]])
        }
    }

    #[test]
    #[allow(deprecated)] // thread-local delta assertion needs the shim
    fn compression_runs_once_per_solve_not_once_per_level() {
        // A refining step builds the grid over several levels; the
        // compression pipeline must still run exactly once per state
        // (on the finished grid), not once per level group — the
        // incremental hierarchizer extends its state instead.
        let config = DriverConfig {
            start_level: 2,
            refine_epsilon: Some(1e-3),
            max_level: 6,
            max_steps: 1,
            pool: PoolConfig {
                threads: 1,
                grain: 4,
            },
            ..Default::default()
        };
        let mut ti = TimeIteration::new(Kinked, config);
        let before = hddm_compress::compression_builds();
        let report = ti.step();
        let builds = hddm_compress::compression_builds() - before;
        assert!(
            report.level_points.len() > 1,
            "refinement must produce multiple level groups: {:?}",
            report.level_points
        );
        assert_eq!(builds, 1, "one compression per solve (ns = 1)");
    }

    #[test]
    fn incremental_hierarchizer_matches_full_rebuild() {
        use hddm_asg::{refine_frontier, RefineConfig, SurplusNorm};
        // Grow a grid level by level with a kinked target function; the
        // extended state must interpolate exactly like a from-scratch
        // compression of the final grid + surpluses.
        let dim = 2;
        let ndofs = 2;
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = (x[0] - 0.3).abs() + 0.2 * x[1];
            out[1] = x[0] * x[1] + 0.1;
        };
        let mut grid = regular_grid(dim, 2);
        let mut frontier: Vec<u32> = (0..grid.len() as u32).collect();
        let mut surpluses: Vec<f64> = Vec::new();
        let mut hier = IncrementalHierarchizer::new(KernelKind::Avx2, dim, ndofs);
        let mut unit = vec![0.0; dim];
        for level in 0..4 {
            let mut solved = vec![0.0; frontier.len() * ndofs];
            for (i, &p) in frontier.iter().enumerate() {
                grid.unit_point_of(p as usize, &mut unit);
                f(&unit, &mut solved[i * ndofs..(i + 1) * ndofs]);
            }
            let new = hier.extend(&grid, &frontier, &solved);
            surpluses.extend_from_slice(&new);
            if level == 3 {
                // Last pass: stop before refining again, so every grid
                // node has been folded into the hierarchizer.
                break;
            }
            let report = refine_frontier(
                &mut grid,
                &surpluses,
                ndofs,
                &frontier,
                &RefineConfig {
                    epsilon: 1e-3,
                    max_level: 6,
                    norm: SurplusNorm::MaxAbs,
                },
            );
            if report.new_nodes.is_empty() {
                break;
            }
            frontier = report.new_nodes;
        }
        assert_eq!(hier.state().grid.nno(), grid.len());
        // Reference: full pipeline compression of the final surpluses.
        let rebuilt = CompressedState::new(&grid, &surpluses, ndofs);
        let mut scratch = Scratch::default();
        let mut a = vec![0.0; ndofs];
        let mut b = vec![0.0; ndofs];
        for s in 0..60 {
            let x = [
                ((s * 13 + 5) as f64 * 0.0137) % 1.0,
                ((s * 7 + 11) as f64 * 0.0231) % 1.0,
            ];
            KernelKind::X86.evaluate_compressed(hier.state(), &x, &mut scratch, &mut a);
            KernelKind::X86.evaluate_compressed(&rebuilt, &x, &mut scratch, &mut b);
            for k in 0..ndofs {
                assert!((a[k] - b[k]).abs() < 1e-12, "dof {k} at {x:?}");
            }
        }
        // Exact at every grid point (interpolation property).
        let mut want = vec![0.0; ndofs];
        for i in 0..grid.len() {
            grid.unit_point_of(i, &mut unit);
            f(&unit, &mut want);
            KernelKind::X86.evaluate_compressed(hier.state(), &unit, &mut scratch, &mut a);
            for k in 0..ndofs {
                assert!((a[k] - want[k]).abs() < 1e-10, "grid point {i} dof {k}");
            }
        }
    }

    #[test]
    fn solver_failures_fall_back_gracefully() {
        /// Fails at every point on the first call, succeeds on retry.
        struct Flaky;
        impl StepModel for Flaky {
            fn dim(&self) -> usize {
                1
            }
            fn ndofs(&self) -> usize {
                1
            }
            fn num_states(&self) -> usize {
                1
            }
            fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
                (vec![0.0], vec![1.0])
            }
            fn initial_row(&self) -> Vec<f64> {
                vec![42.0] // the cold guess marks the retry path
            }
            fn solve_point_row(
                &self,
                _z: usize,
                _x: &[f64],
                warm: &[f64],
                _oracle: &mut dyn PolicyOracle,
            ) -> Result<Vec<f64>, SolverError> {
                if warm[0] == 42.0 {
                    Ok(vec![7.0])
                } else {
                    Err(SolverError::MaxIterations { residual: 1.0 })
                }
            }
        }
        let mut ti = TimeIteration::new(
            Flaky,
            DriverConfig {
                start_level: 2,
                max_steps: 1,
                ..Default::default()
            },
        );
        let report = ti.step();
        // First step: warm start comes from the constant 42 policy, so the
        // solves succeed without failures...
        assert_eq!(report.solver_failures, 0);
        let report2 = ti.step();
        // ...second step: warm starts are now 7.0, every point fails once
        // and succeeds on the cold retry (initial_row = 42).
        assert!(report2.solver_failures > 0);
    }
}
