//! # hddm-core — the parallel time-iteration framework
//!
//! The top of the HDDM stack: Algorithm 1 of Kübler et al. (IPDPS 2018)
//! executed with the per-step structure of Fig. 2. Each step rebuilds one
//! adaptive sparse grid per discrete state — solving the frontier of grid
//! points in parallel through the work-stealing scheduler, interpolating
//! next-period policies with the compressed kernels, hierarchizing, and
//! refining — then replaces the policy guess and repeats until the policy
//! stops moving.
//!
//! * [`driver`] — the [`TimeIteration`] state machine, generic over
//!   [`StepModel`] so toy contractions and the full OLG economy run through
//!   the identical code path;
//! * [`policy`] — per-state compressed interpolants + the kernel-backed
//!   policy oracle (domain clamping, unit-cube scaling);
//! * [`olg_step`] — the [`StepModel`] implementation for
//!   [`hddm_olg::OlgModel`];
//! * [`distributed`] — the same step executed over an MPI-like
//!   [`hddm_cluster::Comm`]: per-state groups sized ∝ `M_z`, per-level
//!   frontier partitioning + allgather merge, world-wide policy exchange
//!   (bitwise-equal to the single-process driver, by test);
//! * [`checkpoint`] — versioned save/restart of the solver state between
//!   time steps (the paper's restart-with-smaller-ε protocol);
//! * [`disjoint`] — lock-free disjoint-row writes for parallel point
//!   solves.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod disjoint;
pub mod distributed;
pub mod driver;
pub mod olg_step;
pub mod policy;

pub use checkpoint::{Checkpoint, StateRecord, CHECKPOINT_VERSION};
pub use distributed::{distributed_run, distributed_step};
pub use driver::{
    initial_policy, DriverConfig, IncrementalHierarchizer, StepModel, StepReport, TimeIteration,
};
pub use olg_step::OlgStep;
pub use policy::{AsgOracle, PolicySet};
