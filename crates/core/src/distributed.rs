//! The distributed time-iteration step of Fig. 2, executed over an
//! MPI-like [`Comm`]: `MPI_COMM_WORLD` splits into one group per discrete
//! state, sized proportionally to the previous step's grid-point counts
//! `M_z` (Sec. IV-A); within a group, each refinement level's frontier is
//! partitioned across ranks, solved, merged by an allgather, hierarchized
//! identically everywhere, and refined; after all groups finish, every
//! state's new interpolant is exchanged world-wide so the next step can
//! interpolate on the full `pnext = (p(1), …, p(Ns))`.
//!
//! With fewer ranks than states, ranks multiplex several states
//! sequentially (the paper's small-node-count configuration). With the
//! [`hddm_cluster::SerialComm`] the function degenerates to exactly the
//! single-process [`TimeIteration::step`] — and the test suite pins the
//! two paths to bitwise-equal policies.

use std::time::Instant;

use hddm_asg::{refine_frontier, regular_grid, NodeKey, RefineConfig, SparseGrid};
use hddm_cluster::{multiplex_states, proportional_ranks, Comm};
use hddm_compress::CompressedGrid;
use hddm_kernels::CompressedState;

use crate::driver::{DriverConfig, IncrementalHierarchizer, StepModel, StepReport};
use crate::policy::PolicySet;

/// One state's finished interpolant plus its per-level frontier sizes,
/// ready for the world exchange.
struct BuiltState {
    grid: SparseGrid,
    surpluses: Vec<f64>, // grid order
    levels: Vec<usize>,
}

/// Local accumulators reduced world-wide at the end of the step.
#[derive(Default)]
struct Metrics {
    sup: f64,
    sum_sq: f64,
    count: usize,
    failures: usize,
}

/// Executes one distributed time-iteration step: consumes the (replicated)
/// previous policy and returns the merged new policy plus the step report.
/// Every rank returns identical values.
pub fn distributed_step<M: StepModel, C: Comm>(
    world: &C,
    model: &M,
    policy: &PolicySet,
    config: &DriverConfig,
    step_index: usize,
) -> (PolicySet, StepReport) {
    let start = Instant::now();
    let ns = model.num_states();
    let m = policy.points_per_state();
    let mut metrics = Metrics::default();
    let mut built: Vec<Option<BuiltState>> = (0..ns).map(|_| None).collect();

    if world.size() >= ns {
        // One group per state, sized ∝ M_z (Sec. IV-A).
        let sizes = proportional_ranks(&m, world.size());
        let mut color = ns - 1;
        let mut acc = 0usize;
        for (z, &s) in sizes.iter().enumerate() {
            if world.rank() < acc + s {
                color = z;
                break;
            }
            acc += s;
        }
        let group = world.split(color);
        built[color] = Some(build_state(
            model,
            policy,
            config,
            color,
            Some(&group),
            &mut metrics,
        ));
    } else {
        // Fewer ranks than states: each rank serves its states in turn.
        let plan = multiplex_states(&m, world.size());
        for &z in &plan[world.rank()] {
            built[z] = Some(build_state(
                model,
                policy,
                config,
                z,
                None::<&C>,
                &mut metrics,
            ));
        }
    }

    // --- World exchange: each state's builder (group rank 0 / owning
    // rank) publishes its encoded interpolant; everyone decodes all Ns.
    let mut mine = Vec::new();
    for (z, slot) in built.iter().enumerate() {
        if let Some(state) = slot {
            // In grouped mode every group member built the state
            // identically; only the group's first world rank publishes.
            if world.size() < ns || is_group_leader(world, &m, z) {
                encode_state(z, state, model.ndofs(), &mut mine);
            }
        }
    }
    let gathered = world.allgather(&mine);

    let mut decoded: Vec<Option<BuiltState>> = (0..ns).map(|_| None).collect();
    for flat in &gathered {
        let mut at = 0usize;
        while at < flat.len() {
            let (z, state, next) = decode_state(flat, at, model.dim(), model.ndofs());
            assert!(decoded[z].is_none(), "state {z} published twice");
            decoded[z] = Some(state);
            at = next;
        }
    }

    // --- Reductions for the report.
    let mut maxbuf = [metrics.sup];
    world.allreduce_max(&mut maxbuf);
    let mut sumbuf = [
        metrics.sum_sq,
        metrics.count as f64,
        metrics.failures as f64,
    ];
    world.allreduce_sum(&mut sumbuf);

    // --- Assemble the new policy (identical on every rank).
    let ndofs = model.ndofs();
    let mut new_states = Vec::with_capacity(ns);
    let mut points_per_state = Vec::with_capacity(ns);
    let mut level_points: Vec<Vec<usize>> = Vec::new();
    for (z, slot) in decoded.into_iter().enumerate() {
        let state = slot.unwrap_or_else(|| panic!("state {z} missing from exchange"));
        points_per_state.push(state.grid.len());
        if level_points.len() < state.levels.len() {
            level_points.resize(state.levels.len(), vec![0; ns]);
        }
        for (l, &count) in state.levels.iter().enumerate() {
            level_points[l][z] = count;
        }
        let cg = CompressedGrid::build(&state.grid);
        let chain_order = cg.reorder_rows(&state.surpluses, ndofs);
        new_states.push(CompressedState::from_parts(cg, chain_order, ndofs));
    }

    let report = StepReport {
        step: step_index,
        sup_change: maxbuf[0],
        l2_change: (sumbuf[0] / sumbuf[1].max(1.0)).sqrt(),
        points_per_state,
        level_points,
        solver_failures: sumbuf[2] as usize,
        wall_seconds: start.elapsed().as_secs_f64(),
    };
    (PolicySet::new(new_states, policy.domain.clone()), report)
}

/// Whether this world rank is the first rank of state `z`'s group under
/// the proportional assignment (the rank that publishes the result).
fn is_group_leader<C: Comm>(world: &C, m: &[usize], z: usize) -> bool {
    let sizes = proportional_ranks(m, world.size());
    let first: usize = sizes[..z].iter().sum();
    world.rank() == first
}

/// Builds one state's new interpolant level by level. `group = None` means
/// solo (multiplexed) construction; otherwise the frontier is partitioned
/// round-robin across the group and merged with an allgather per level.
fn build_state<M: StepModel, C: Comm>(
    model: &M,
    policy: &PolicySet,
    config: &DriverConfig,
    z: usize,
    group: Option<&C>,
    metrics: &mut Metrics,
) -> BuiltState {
    let dim = model.dim();
    let ndofs = model.ndofs();
    let domain = &policy.domain;
    let (grank, gsize) = group.map(|g| (g.rank(), g.size())).unwrap_or((0, 1));

    let mut grid = regular_grid(dim, config.start_level);
    let mut frontier: Vec<u32> = (0..grid.len() as u32).collect();
    let mut surpluses: Vec<f64> = Vec::new();
    let mut levels = Vec::new();
    let mut hier = IncrementalHierarchizer::new(config.kernel, dim, ndofs);

    let mut oracle = policy.oracle(config.kernel);
    let mut unit = vec![0.0; dim];
    let mut phys = vec![0.0; dim];
    let mut warm = vec![0.0; ndofs];
    let mut old = vec![0.0; ndofs];

    loop {
        levels.push(frontier.len());

        // --- Solve my share of the frontier (every gsize-th point).
        let mut flat = Vec::new();
        for (i, &p) in frontier.iter().enumerate() {
            if i % gsize != grank {
                continue;
            }
            grid.unit_point_of(p as usize, &mut unit);
            domain.from_unit(&unit, &mut phys);
            oracle.eval_unit(z, &unit, &mut warm);
            let row = match model.solve_point_row(z, &phys, &warm, &mut oracle) {
                Ok(row) => row,
                Err(_) => {
                    metrics.failures += 1;
                    let cold = model.initial_row();
                    model
                        .solve_point_row(z, &phys, &cold, &mut oracle)
                        .unwrap_or_else(|_| warm.clone())
                }
            };
            // --- Measure the policy change at my points only; the world
            // reduction combines the shares.
            oracle.eval_unit(z, &unit, &mut old);
            for k in 0..ndofs {
                let delta = (row[k] - old[k]).abs() / (1.0 + old[k].abs());
                metrics.sup = metrics.sup.max(delta);
                metrics.sum_sq += delta * delta;
                metrics.count += 1;
            }
            flat.push(i as f64);
            flat.extend_from_slice(&row);
        }

        // --- Merge the level: allgather (pos, row) pairs within the group.
        let mut solved = vec![0.0; frontier.len() * ndofs];
        let mut seen = vec![false; frontier.len()];
        let contributions = match group {
            Some(g) => g.allgather(&flat),
            None => vec![flat],
        };
        for contribution in &contributions {
            let stride = 1 + ndofs;
            assert_eq!(contribution.len() % stride, 0, "ragged merge payload");
            for rec in contribution.chunks_exact(stride) {
                let i = rec[0] as usize;
                solved[i * ndofs..(i + 1) * ndofs].copy_from_slice(&rec[1..]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "merge missed frontier points");

        // --- Hierarchize (deterministic, replicated in the group; the
        // hierarchizer extends its compressed state — no per-level
        // recompression).
        let new_surpluses = hier.extend(&grid, &frontier, &solved);
        surpluses.extend_from_slice(&new_surpluses);

        // --- Refine (same surpluses everywhere ⇒ same refinement).
        let Some(epsilon) = config.refine_epsilon else {
            break;
        };
        let refine_config = RefineConfig {
            epsilon,
            max_level: config.max_level,
            norm: config.refine_norm,
        };
        let report = refine_frontier(&mut grid, &surpluses, ndofs, &frontier, &refine_config);
        if report.new_nodes.is_empty() {
            break;
        }
        frontier = report.new_nodes;
    }

    BuiltState {
        grid,
        surpluses,
        levels,
    }
}

/// Appends a state's encoding to `out`:
/// `[z, nlevels, levels…, nno, (active_count, (dim, level, index)…)…,
///   surpluses…]` — all integers exact in f64.
fn encode_state(z: usize, state: &BuiltState, ndofs: usize, out: &mut Vec<f64>) {
    out.push(z as f64);
    out.push(state.levels.len() as f64);
    out.extend(state.levels.iter().map(|&l| l as f64));
    out.push(state.grid.len() as f64);
    for node in state.grid.nodes() {
        out.push(node.active_count() as f64);
        for c in node.active() {
            out.push(c.dim as f64);
            out.push(c.level as f64);
            out.push(c.index as f64);
        }
    }
    debug_assert_eq!(state.surpluses.len(), state.grid.len() * ndofs);
    out.extend_from_slice(&state.surpluses);
}

/// Decodes one state starting at `flat[at]`; returns `(z, state, next_at)`.
fn decode_state(flat: &[f64], at: usize, dim: usize, ndofs: usize) -> (usize, BuiltState, usize) {
    let mut at = at;
    let mut take = || {
        let v = flat[at];
        at += 1;
        v
    };
    let z = take() as usize;
    let nlevels = take() as usize;
    let levels: Vec<usize> = (0..nlevels).map(|_| take() as usize).collect();
    let nno = take() as usize;
    let mut grid = SparseGrid::new(dim);
    for _ in 0..nno {
        let actives = take() as usize;
        let coords: Vec<hddm_asg::ActiveCoord> = (0..actives)
            .map(|_| hddm_asg::ActiveCoord {
                dim: take() as u16,
                level: take() as u8,
                index: take() as u32,
            })
            .collect();
        let (_, fresh) = grid.insert(NodeKey::from_coords(coords));
        debug_assert!(fresh, "duplicate node in encoded state");
    }
    let surpluses = flat[at..at + nno * ndofs].to_vec();
    at += nno * ndofs;
    (
        z,
        BuiltState {
            grid,
            surpluses,
            levels,
        },
        at,
    )
}

/// Runs `max_steps` distributed steps from the deterministic initial
/// policy, stopping early at `tolerance` (same semantics as
/// [`TimeIteration::run`](crate::driver::TimeIteration::run)). Returns the
/// final policy and per-step reports; identical on every rank.
pub fn distributed_run<M: StepModel, C: Comm>(
    world: &C,
    model: &M,
    config: &DriverConfig,
) -> (PolicySet, Vec<StepReport>) {
    let mut policy = crate::driver::initial_policy(model, config.start_level);
    let mut reports = Vec::new();
    for step in 0..config.max_steps {
        let (next, report) = distributed_step(world, model, &policy, config, step);
        policy = next;
        let done = report.sup_change < config.tolerance;
        reports.push(report);
        world.barrier();
        if done {
            break;
        }
    }
    (policy, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TimeIteration;
    use crate::olg_step::OlgStep;
    use hddm_cluster::{SerialComm, ThreadComm};
    use hddm_kernels::KernelKind;
    use hddm_olg::{Calibration, OlgModel, PolicyOracle};
    use hddm_sched::PoolConfig;

    fn config(max_steps: usize) -> DriverConfig {
        DriverConfig {
            kernel: KernelKind::X86,
            start_level: 2,
            max_steps,
            tolerance: 0.0,
            pool: PoolConfig {
                threads: 1,
                grain: 4,
            },
            ..Default::default()
        }
    }

    fn probe(policy: &PolicySet, ns: usize, x: &[f64], ndofs: usize) -> Vec<Vec<f64>> {
        let mut oracle = policy.oracle(KernelKind::X86);
        (0..ns)
            .map(|z| {
                let mut row = vec![0.0; ndofs];
                oracle.eval(z, x, &mut row);
                row
            })
            .collect()
    }

    fn serial_reference(steps: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let x = model.steady.state_vector();
        let mut ti = TimeIteration::new(OlgStep::new(model), config(steps));
        ti.run();
        (probe(&ti.policy, 2, &x, 8), x)
    }

    #[test]
    fn serial_comm_matches_single_process_driver_bitwise() {
        let (want, x) = serial_reference(3);
        let model = OlgStep::new(OlgModel::new(Calibration::small(5, 3, 2, 0.03)));
        let (policy, reports) = distributed_run(&SerialComm, &model, &config(3));
        assert_eq!(reports.len(), 3);
        assert_eq!(probe(&policy, 2, &x, 8), want);
    }

    #[test]
    fn grouped_ranks_match_single_process_driver_bitwise() {
        // 4 ranks over 2 states: groups of 2, cooperative frontier solves.
        let (want, x) = serial_reference(2);
        let results = ThreadComm::launch(4, |world| {
            let model = OlgStep::new(OlgModel::new(Calibration::small(5, 3, 2, 0.03)));
            let (policy, reports) = distributed_run(&world, &model, &config(2));
            (probe(&policy, 2, &x, 8), reports.len())
        });
        for (got, steps) in &results {
            assert_eq!(*steps, 2);
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn multiplexed_single_rank_matches_driver() {
        // 1 rank, 2 states: the multiplex path.
        let (want, x) = serial_reference(2);
        let results = ThreadComm::launch(1, |world| {
            let model = OlgStep::new(OlgModel::new(Calibration::small(5, 3, 2, 0.03)));
            let (policy, _) = distributed_run(&world, &model, &config(2));
            probe(&policy, 2, &x, 8)
        });
        assert_eq!(results[0], want);
    }

    #[test]
    fn adaptive_refinement_is_consistent_across_ranks() {
        // With refinement on, every rank must converge to identical grids
        // (sizes reported in the step report) and identical policies.
        let mut cfg = config(2);
        cfg.refine_epsilon = Some(5e-3);
        cfg.max_level = 3;
        let results = ThreadComm::launch(3, |world| {
            let model = OlgStep::new(OlgModel::new(Calibration::small(4, 3, 2, 0.05)));
            let (policy, reports) = distributed_run(&world, &model, &cfg);
            let x = OlgModel::new(Calibration::small(4, 3, 2, 0.05))
                .steady
                .state_vector();
            (
                reports.last().unwrap().points_per_state.clone(),
                probe(&policy, 2, &x, 6),
            )
        });
        let (points0, probe0) = &results[0];
        assert!(points0
            .iter()
            .any(|&p| p > hddm_asg::regular_grid_size(3, 2) as usize));
        for (points, probed) in &results[1..] {
            assert_eq!(points, points0);
            assert_eq!(probed, probe0);
        }
    }

    #[test]
    fn step_report_metrics_match_serial() {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let mut ti = TimeIteration::new(OlgStep::new(model), config(1));
        let serial_report = ti.step();

        let results = ThreadComm::launch(2, |world| {
            let model = OlgStep::new(OlgModel::new(Calibration::small(5, 3, 2, 0.03)));
            let (_, reports) = distributed_run(&world, &model, &config(1));
            reports[0].clone()
        });
        for report in &results {
            assert!((report.sup_change - serial_report.sup_change).abs() < 1e-12);
            assert!((report.l2_change - serial_report.l2_change).abs() < 1e-12);
            assert_eq!(report.points_per_state, serial_report.points_per_state);
            assert_eq!(report.solver_failures, serial_report.solver_failures);
        }
    }
}
