//! A write-disjoint view over a row-major matrix, letting the
//! work-stealing pool write solved dof rows from many threads without
//! locks. Safety rests on the scheduler's exactly-once contract (each
//! index is dispatched to exactly one task — tested in `hddm-sched`).

use std::cell::UnsafeCell;

/// Row-major `rows × width` matrix accepting concurrent writes to
/// *distinct* rows.
pub struct DisjointRows {
    data: UnsafeCell<Vec<f64>>,
    rows: usize,
    width: usize,
}

// SAFETY: concurrent access is restricted to disjoint rows by the caller
// contract of `write_row` (each row index written by at most one thread).
unsafe impl Sync for DisjointRows {}

impl DisjointRows {
    /// Zero-initialized matrix.
    pub fn zeros(rows: usize, width: usize) -> Self {
        DisjointRows {
            data: UnsafeCell::new(vec![0.0; rows * width]),
            rows,
            width,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Writes row `i`.
    ///
    /// # Safety contract (checked in debug builds)
    /// Each row must be written by at most one thread at a time; rows are
    /// naturally disjoint, so exactly-once index dispatch satisfies this.
    pub fn write_row(&self, i: usize, row: &[f64]) {
        assert_eq!(row.len(), self.width);
        assert!(i < self.rows);
        // SAFETY: rows are disjoint slices; the scheduler dispatches each
        // index to exactly one task.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr().add(i * self.width);
            std::ptr::copy_nonoverlapping(row.as_ptr(), base, self.width);
        }
    }

    /// Consumes the matrix, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_sched::{parallel_for, PoolConfig};

    #[test]
    fn concurrent_disjoint_writes() {
        let rows = 500;
        let width = 7;
        let matrix = DisjointRows::zeros(rows, width);
        parallel_for(
            rows,
            &PoolConfig {
                threads: 4,
                grain: 3,
            },
            |i| {
                let row: Vec<f64> = (0..width).map(|k| (i * width + k) as f64).collect();
                matrix.write_row(i, &row);
            },
        );
        let data = matrix.into_vec();
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    #[should_panic]
    fn wrong_width_is_rejected() {
        let matrix = DisjointRows::zeros(2, 3);
        matrix.write_row(0, &[1.0, 2.0]);
    }
}
