//! Glue between the OLG economy and the time-iteration driver.

use hddm_olg::{OlgModel, PointScratch, PolicyOracle};
use hddm_solver::{NewtonOptions, SolverError};

use crate::driver::StepModel;

/// The OLG model wired into the driver, with its per-point Newton policy.
pub struct OlgStep {
    /// The economy.
    pub model: OlgModel,
    /// Per-point solver options.
    pub newton: NewtonOptions,
}

impl OlgStep {
    /// Wraps a model with default Newton options.
    pub fn new(model: OlgModel) -> Self {
        OlgStep {
            model,
            newton: NewtonOptions::default(),
        }
    }
}

impl StepModel for OlgStep {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn ndofs(&self) -> usize {
        self.model.ndofs()
    }

    fn num_states(&self) -> usize {
        self.model.num_states()
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (self.model.lower.clone(), self.model.upper.clone())
    }

    fn initial_row(&self) -> Vec<f64> {
        // The steady-state policies/values — the paper restarts iterations
        // from coarse solutions; step 0 restarts from the steady state.
        self.model.steady.dof_row()
    }

    fn solve_point_row(
        &self,
        z: usize,
        x_phys: &[f64],
        warm: &[f64],
        oracle: &mut dyn PolicyOracle,
    ) -> Result<Vec<f64>, SolverError> {
        let mut scratch = PointScratch::default();
        let solution =
            self.model
                .solve_point(z, x_phys, warm, oracle, &mut scratch, &self.newton)?;
        Ok(solution.dof_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, TimeIteration};
    use hddm_kernels::KernelKind;
    use hddm_olg::Calibration;
    use hddm_sched::PoolConfig;

    fn driver_config(max_steps: usize) -> DriverConfig {
        DriverConfig {
            kernel: KernelKind::Avx2,
            start_level: 2,
            refine_epsilon: None,
            max_steps,
            tolerance: 1e-7,
            pool: PoolConfig {
                threads: 2,
                grain: 2,
            },
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_olg_converges_to_steady_state() {
        // With one discrete state, the recursive equilibrium is the
        // analytic steady state; time iteration must converge onto it.
        let model = OlgModel::new(Calibration::deterministic(6, 4));
        let steady_savings = model.steady.savings.clone();
        let x_bar = model.steady.state_vector();
        let mut ti = TimeIteration::new(OlgStep::new(model), driver_config(60));
        let reports = ti.run();
        let last = reports.last().unwrap();
        assert!(
            last.sup_change < 1e-7,
            "no convergence: {} after {} steps",
            last.sup_change,
            reports.len()
        );
        assert_eq!(last.solver_failures, 0);

        // The converged policy at the steady point reproduces steady
        // savings.
        let mut oracle = ti.policy.oracle(KernelKind::X86);
        let mut row = vec![0.0; 10];
        use hddm_olg::PolicyOracle as _;
        oracle.eval(0, &x_bar, &mut row);
        for (a, want) in steady_savings.iter().enumerate() {
            assert!(
                (row[a] - want).abs() < 1e-4 * (1.0 + want.abs()),
                "savings {a}: {} vs {}",
                row[a],
                want
            );
        }
    }

    #[test]
    fn policy_change_decays_monotonically_ish() {
        let model = OlgModel::new(Calibration::deterministic(5, 3));
        let mut ti = TimeIteration::new(OlgStep::new(model), driver_config(25));
        let reports = ti.run();
        assert!(reports.len() >= 5);
        // Time iteration is (at best) linearly convergent: demand decay by
        // a factor over 4-step windows rather than strict monotonicity.
        let changes: Vec<f64> = reports.iter().map(|r| r.sup_change).collect();
        for window in changes.windows(5).take(4) {
            assert!(window[4] < window[0], "no decay across window: {window:?}");
        }
    }

    #[test]
    fn stochastic_olg_step_runs_and_contracts() {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.04));
        let mut ti = TimeIteration::new(OlgStep::new(model), driver_config(12));
        let reports = ti.run();
        let first = reports.first().unwrap().sup_change;
        let last = reports.last().unwrap().sup_change;
        assert!(
            last < first * 0.5,
            "insufficient contraction: {first} -> {last}"
        );
        // All states carry the same regular grid here.
        let points = &reports.last().unwrap().points_per_state;
        assert!(points.iter().all(|&p| p == points[0]));
    }
}
