//! Checkpoint / restart of a time-iteration run.
//!
//! The paper's production runs are staged: Sec. V-C restarts the level-4
//! benchmark "from a sparse grid of level 2", and footnote 12 describes
//! the ε-continuation protocol — iterate at a fixed refinement threshold
//! until the error stalls, write the solution out, restart with a smaller
//! ε. This module provides that restart surface: the complete solver state
//! between two time steps is the policy set (one compressed interpolant
//! per discrete state, chain-ordered surpluses) plus the step counter, and
//! that is exactly what a [`Checkpoint`] captures.
//!
//! The on-disk format is versioned JSON of plain arrays — deliberately
//! decoupled from the in-memory layout of `CompressedGrid` so old
//! checkpoints survive refactors. `serde_json` is built with its
//! `float_roundtrip` feature (see the workspace manifest) so `f64`
//! surpluses survive the file exactly and a resumed run continues
//! **bit-identically** — without that feature the default fast float
//! parser is allowed to be off by one ulp, which the round-trip test
//! below would catch.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use hddm_asg::BoxDomain;
use hddm_compress::{CompressedGrid, XpsEntry};
use hddm_kernels::CompressedState;

use crate::driver::{DriverConfig, StepModel, TimeIteration};
use crate::policy::PolicySet;

/// Current on-disk format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One discrete state's interpolant, flattened to plain arrays.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StateRecord {
    /// Unique elements as `(dimension, ł, í)` triples; entry 0 is the
    /// sentinel `(0, 0, 0)`.
    pub xps: Vec<(u32, u16, u16)>,
    /// Chain matrix, row-major `nno × nfreq`.
    pub chains: Vec<u32>,
    /// Chain-position → grid-order permutation.
    pub order: Vec<u32>,
    /// Chain stride.
    pub nfreq: usize,
    /// Surpluses in chain order, row-major `nno × ndofs`.
    pub surplus: Vec<f64>,
}

impl StateRecord {
    /// Flattens one compressed interpolant to the plain-array form —
    /// shared by checkpoints and the scenario engine's policy-surface
    /// cache.
    pub fn capture(state: &CompressedState) -> StateRecord {
        StateRecord {
            xps: state
                .grid
                .xps()
                .iter()
                .map(|e| (e.index, e.l, e.i))
                .collect(),
            chains: state.grid.chains().to_vec(),
            order: state.grid.order().to_vec(),
            nfreq: state.grid.nfreq(),
            surplus: state.surplus.clone(),
        }
    }

    /// Checks the structural invariants [`StateRecord::restore`] relies
    /// on, without panicking — the guard that lets records arriving from
    /// untrusted storage (the persistent policy-surface cache) be skipped
    /// with a warning instead of aborting the process. Mirrors the
    /// assertions in [`CompressedGrid::from_raw_parts`] plus the surplus
    /// length check.
    pub fn validate(&self, dim: usize, ndofs: usize) -> Result<(), String> {
        if dim < 1 || ndofs < 1 {
            return Err(format!("dim {dim} / ndofs {ndofs} must be positive"));
        }
        if self.nfreq < 1 {
            return Err("nfreq must be positive".into());
        }
        match self.xps.first() {
            Some(&(0, 0, 0)) => {}
            other => return Err(format!("xps[0] must be the sentinel, got {other:?}")),
        }
        if !self.chains.len().is_multiple_of(self.nfreq) {
            return Err(format!(
                "chains length {} not a multiple of nfreq {}",
                self.chains.len(),
                self.nfreq
            ));
        }
        let nno = self.chains.len() / self.nfreq;
        if self.order.len() != nno {
            return Err(format!(
                "order length {} does not match nno {nno}",
                self.order.len()
            ));
        }
        let mut seen = vec![false; nno];
        for &o in &self.order {
            if (o as usize) >= nno || std::mem::replace(&mut seen[o as usize], true) {
                return Err("order is not a permutation".into());
            }
        }
        for &c in &self.chains {
            if (c as usize) >= self.xps.len() {
                return Err(format!("chain entry {c} out of xps range"));
            }
        }
        for &(index, l, _) in &self.xps[1..] {
            if (index as usize) >= dim || l < 2 {
                return Err(format!("invalid xps entry ({index}, {l}, _)"));
            }
        }
        if self.surplus.len() != nno * ndofs {
            return Err(format!(
                "surplus length {} does not match nno {nno} × ndofs {ndofs}",
                self.surplus.len()
            ));
        }
        Ok(())
    }

    /// Rebuilds the compressed interpolant. Panics on structural
    /// corruption (the validation lives in
    /// [`CompressedGrid::from_raw_parts`]); records from untrusted
    /// storage should be checked with [`StateRecord::validate`] first.
    pub fn restore(&self, dim: usize, ndofs: usize) -> CompressedState {
        let xps = self
            .xps
            .iter()
            .map(|&(index, l, i)| XpsEntry { index, l, i })
            .collect();
        let cg = CompressedGrid::from_raw_parts(
            dim,
            self.nfreq,
            xps,
            self.chains.clone(),
            self.order.clone(),
        );
        assert_eq!(
            self.surplus.len(),
            cg.nno() * ndofs,
            "surplus length mismatch in state record"
        );
        CompressedState::from_parts(cg, self.surplus.clone(), ndofs)
    }
}

/// A complete, versioned snapshot of the solver state between time steps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Time-iteration steps already executed.
    pub step: usize,
    /// Continuous dimensionality `d`.
    pub dim: usize,
    /// Coefficients per grid point.
    pub ndofs: usize,
    /// Domain box lower bounds.
    pub domain_lo: Vec<f64>,
    /// Domain box upper bounds.
    pub domain_hi: Vec<f64>,
    /// Per-discrete-state interpolants.
    pub states: Vec<StateRecord>,
}

impl Checkpoint {
    /// Captures the current solver state of a driver.
    pub fn capture<M: StepModel>(ti: &TimeIteration<M>) -> Checkpoint {
        let domain = &ti.policy.domain;
        let states = (0..ti.policy.states.num_states())
            .map(|z| StateRecord::capture(ti.policy.states.state(z)))
            .collect();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            step: ti.step_index(),
            dim: ti.model.dim(),
            ndofs: ti.model.ndofs(),
            domain_lo: domain.lo().to_vec(),
            domain_hi: domain.hi().to_vec(),
            states,
        }
    }

    /// Rebuilds the policy set. Panics on structural corruption (the
    /// validation lives in [`CompressedGrid::from_raw_parts`]).
    pub fn restore_policy(&self) -> PolicySet {
        let domain = BoxDomain::new(self.domain_lo.clone(), self.domain_hi.clone());
        let states = self
            .states
            .iter()
            .map(|r| r.restore(self.dim, self.ndofs))
            .collect();
        PolicySet::new(states, domain)
    }

    /// Serializes to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Loads and version-checks a checkpoint file.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Checkpoint> {
        let json = fs::read_to_string(path)?;
        let ck: Checkpoint = serde_json::from_str(&json).map_err(io::Error::other)?;
        if ck.version != CHECKPOINT_VERSION {
            return Err(io::Error::other(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                ck.version
            )));
        }
        Ok(ck)
    }
}

impl<M: StepModel> TimeIteration<M> {
    /// Resumes a run from a checkpoint: the policy set and step counter
    /// are restored, the model and config are supplied fresh (they are
    /// code + calibration, not solver state). Panics if the model shape
    /// does not match the checkpoint.
    pub fn resume(model: M, config: DriverConfig, checkpoint: &Checkpoint) -> Self {
        assert_eq!(model.dim(), checkpoint.dim, "model dimension mismatch");
        assert_eq!(model.ndofs(), checkpoint.ndofs, "model ndofs mismatch");
        assert_eq!(
            model.num_states(),
            checkpoint.states.len(),
            "discrete state count mismatch"
        );
        let policy = checkpoint.restore_policy();
        TimeIteration::with_policy(model, config, policy, checkpoint.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverConfig;
    use crate::olg_step::OlgStep;
    use hddm_kernels::KernelKind;
    use hddm_olg::{Calibration, OlgModel, PolicyOracle};
    use hddm_sched::PoolConfig;

    fn config(max_steps: usize) -> DriverConfig {
        DriverConfig {
            kernel: KernelKind::X86,
            start_level: 2,
            max_steps,
            tolerance: 0.0,
            pool: PoolConfig {
                threads: 1,
                grain: 4,
            },
            ..Default::default()
        }
    }

    fn probe(ti: &TimeIteration<OlgStep>, x: &[f64], ndofs: usize) -> Vec<Vec<f64>> {
        let mut oracle = ti.policy.oracle(KernelKind::X86);
        (0..ti.model.num_states())
            .map(|z| {
                let mut row = vec![0.0; ndofs];
                oracle.eval(z, x, &mut row);
                row
            })
            .collect()
    }

    #[test]
    fn capture_restore_roundtrip_is_bitwise() {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let x = model.steady.state_vector();
        let mut ti = TimeIteration::new(OlgStep::new(model), config(3));
        ti.run();
        let ck = Checkpoint::capture(&ti);
        let restored = ck.restore_policy();
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        let mut oa = ti.policy.oracle(KernelKind::X86);
        let mut ob = restored.oracle(KernelKind::X86);
        for z in 0..2 {
            oa.eval(z, &x, &mut a);
            ob.eval(z, &x, &mut b);
            assert_eq!(a, b, "state {z}");
        }
    }

    #[test]
    fn file_roundtrip_resumes_bit_identically() {
        // 4 straight steps vs 2 steps + save/load + 2 steps: the resumed
        // run must continue exactly where the uninterrupted one goes.
        let make_model = || OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let x = make_model().steady.state_vector();

        let mut straight = TimeIteration::new(OlgStep::new(make_model()), config(4));
        straight.run();
        let want = probe(&straight, &x, 8);

        let mut first = TimeIteration::new(OlgStep::new(make_model()), config(2));
        first.run();
        let dir = std::env::temp_dir().join(format!("hddm_checkpoint_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        Checkpoint::capture(&first).save(&path).unwrap();

        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.step, 2);
        let mut resumed = TimeIteration::resume(OlgStep::new(make_model()), config(2), &loaded);
        resumed.run();
        assert_eq!(resumed.step_index(), 4);
        let got = probe(&resumed, &x, 8);
        assert_eq!(got, want, "resumed run diverged from straight run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_record_validate_catches_structural_corruption() {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let ndofs = model.ndofs();
        let dim = model.dim();
        let ti = TimeIteration::new(OlgStep::new(model), config(1));
        let good = StateRecord::capture(ti.policy.states.state(0));
        assert_eq!(good.validate(dim, ndofs), Ok(()));

        let mut bad = good.clone();
        bad.surplus.pop(); // truncated payload
        assert!(bad.validate(dim, ndofs).unwrap_err().contains("surplus"));

        let mut bad = good.clone();
        bad.xps[0] = (1, 2, 3); // missing sentinel
        assert!(bad.validate(dim, ndofs).unwrap_err().contains("sentinel"));

        let mut bad = good.clone();
        bad.order[0] = u32::MAX; // not a permutation
        assert!(bad
            .validate(dim, ndofs)
            .unwrap_err()
            .contains("permutation"));

        let mut bad = good.clone();
        bad.chains[0] = u32::MAX; // dangling chain reference
        assert!(bad.validate(dim, ndofs).unwrap_err().contains("xps range"));

        // The record itself is fine but the claimed shape is not.
        assert!(good.validate(dim + 7, ndofs).is_err() || good.validate(dim, ndofs + 1).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let model = OlgModel::new(Calibration::deterministic(4, 3));
        let ti = TimeIteration::new(OlgStep::new(model), config(0));
        let mut ck = Checkpoint::capture(&ti);
        ck.version = 99;
        let dir = std::env::temp_dir().join(format!("hddm_checkpoint_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.json");
        // Write the bad version manually (save would stamp the right one
        // only if we let it — it serializes the struct as-is).
        std::fs::write(&path, serde_json::to_string(&ck).unwrap()).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_model() {
        let model = OlgModel::new(Calibration::small(5, 3, 2, 0.03));
        let ti = TimeIteration::new(OlgStep::new(model), config(0));
        let ck = Checkpoint::capture(&ti);
        let other = OlgModel::new(Calibration::small(6, 4, 2, 0.03));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TimeIteration::resume(OlgStep::new(other), config(1), &ck)
        }));
        assert!(result.is_err(), "dimension mismatch must panic");
    }
}
