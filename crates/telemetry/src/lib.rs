//! # hddm-telemetry — lock-free metrics core
//!
//! The workspace's telemetry substrate: every subsystem that used to keep
//! its own counter island (`ServiceStats` atomics in `hddm-serve`,
//! `CacheStats` in `hddm-scenarios`, the `compression_builds` thread-local
//! in `hddm-compress`, percentile math private to `serve-bench`) now
//! records through the instruments defined here, so one registry, one
//! naming scheme, and one export path cover solve + serve.
//!
//! * [`Counter`] / [`Gauge`] — relaxed-ordering atomics; `inc`/`add`/`set`
//!   are single `fetch_add`/`store` instructions, safe on every hot path;
//! * [`Histogram`] — a fixed-bucket log-linear latency histogram
//!   (8 sub-buckets per octave over `2^-30 s ≈ 1 ns` … `2^12 s`, ≤ 12.5 %
//!   relative bucket width). Recording is wait-free (`fetch_add` on one
//!   bucket); quantiles are nearest-rank over the cumulative bucket
//!   counts — the same methodology `serve-bench` applies to its sorted
//!   sample vectors (see [`nearest_rank`]). [`HistogramShard`] is the
//!   contention-free per-thread variant: plain integers, merged into a
//!   shared histogram with [`Histogram::merge_shard`];
//! * [`SpanTimer`] — a scoped guard that records wall time into a
//!   histogram on drop; phase timing for solve
//!   (hierarchize/refine/policy-update/compress), serve
//!   (exact-hit/warm-hint/queue-wait/batch-solve) and cache
//!   (restore/deposit/evict) all use it;
//! * [`Registry`] — named instruments with static label sets,
//!   deterministic (sorted) iteration order, collect hooks for computed
//!   gauges, and two exporters: a deterministic JSON [`Snapshot`] and a
//!   Prometheus-style text exposition
//!   ([`Snapshot::text_exposition`]).
//!
//! No dependencies beyond `std` and the workspace serde shim (used only
//! by the snapshot serializer, never on a record path).
//!
//! ```
//! use hddm_telemetry::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("hddm_demo_requests_total").inc();
//! {
//!     let _span = registry.span("hddm_demo_phase_seconds");
//!     // ... timed work ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters[0].value, 1);
//! assert_eq!(snap.histograms[0].count, 1);
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![warn(missing_docs)]

mod instrument;
mod registry;
mod snapshot;

pub use instrument::{Counter, Gauge, Histogram, HistogramShard, SpanTimer, BUCKETS};
pub use registry::{Labels, Registry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};

/// Nearest-rank percentile of an ascending-sorted sample vector.
///
/// `q` is the quantile in `(0, 1]` (e.g. `0.99` for p99). The nearest-rank
/// definition picks `sorted[ceil(q · n) - 1]` — the exact methodology the
/// `serve-bench` latency report has used since it landed, now shared with
/// the runtime [`Histogram`] so bench and runtime percentiles can never
/// drift. Returns `0.0` for an empty slice.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::nearest_rank;

    #[test]
    fn nearest_rank_matches_definition() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50.0);
        assert_eq!(nearest_rank(&v, 0.99), 99.0);
        assert_eq!(nearest_rank(&v, 0.999), 100.0);
        assert_eq!(nearest_rank(&v, 1.0), 100.0);
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
        assert_eq!(nearest_rank(&[7.0], 0.5), 7.0);
    }
}
