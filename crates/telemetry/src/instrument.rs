//! The lock-free instruments: counters, gauges, log-linear histograms
//! (shared-atomic and per-thread shard variants), and scoped span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Smallest bucketed exponent: values below `2^-30 s` (≈ 0.93 ns) land in
/// the underflow bucket.
const MIN_EXP: i64 = -30;
/// Largest bucketed exponent: values at or above `2^12 s` (≈ 68 min) land
/// in the overflow bucket.
const MAX_EXP: i64 = 12;
/// Sub-buckets per octave (power of two: the sub-bucket is read straight
/// off the top three mantissa bits, no `log2` on the record path).
const SUBS: i64 = 8;

/// Total bucket count of [`Histogram`] / [`HistogramShard`]: one
/// underflow bucket, one overflow bucket, and `SUBS` linear sub-buckets
/// for every octave in `[2^-30, 2^12)`.
pub const BUCKETS: usize = ((MAX_EXP - MIN_EXP) * SUBS) as usize + 2;

/// Maps a duration in seconds to its bucket index.
///
/// Log-linear: the octave comes from the IEEE-754 exponent field, the
/// sub-bucket from the top three mantissa bits — a handful of integer ops,
/// no floating-point transcendentals. Zero, negative, and NaN inputs fall
/// into the underflow bucket.
#[inline]
fn bucket_index(seconds: f64) -> usize {
    if seconds.is_nan() || seconds <= 0.0 {
        return 0;
    }
    let bits = seconds.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let sub = ((bits >> 49) & 0x7) as i64;
    let idx = (exp - MIN_EXP) * SUBS + sub + 1;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Upper bound (in seconds) of bucket `idx` — the representative value
/// quantile queries report, so reported quantiles never understate.
fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        return 2f64.powi(MIN_EXP as i32);
    }
    if idx >= BUCKETS - 1 {
        return f64::INFINITY;
    }
    let i = (idx - 1) as i64;
    let exp = MIN_EXP + i / SUBS;
    let sub = i % SUBS;
    2f64.powi(exp as i32) * (1.0 + (sub + 1) as f64 / SUBS as f64)
}

/// A monotone event counter on a relaxed atomic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        // ORDERING: Relaxed — independent event tally; nothing is
        // published through this write and readers need only totals.
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — independent tally update, no ordering
        // dependency on surrounding memory.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — scrapes tolerate a slightly stale value;
        // monotonicity per writer is all exposition needs.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins (or running-maximum) gauge on a relaxed atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // ORDERING: Relaxed — last-value-wins gauge; no reader infers
        // anything about other memory from it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (running peak).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        // ORDERING: Relaxed — the RMW itself is atomic, which is all a
        // running peak needs; order against other memory is irrelevant.
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` (e.g. resources acquired).
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — independent tally update, no ordering
        // dependency on surrounding memory.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (e.g. resources released).
    #[inline]
    pub fn sub(&self, n: u64) {
        // ORDERING: Relaxed — independent tally update, mirror of `add`.
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — scrapes tolerate a slightly stale value;
        // monotonicity per writer is all exposition needs.
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-linear latency histogram with wait-free recording.
///
/// Buckets span `2^-30 s` … `2^12 s` with [`SUBS`] linear sub-buckets per
/// octave, so the relative width of any bucket is at most
/// [`Histogram::MAX_RELATIVE_ERROR`] (12.5 %); quantiles report the
/// bucket's upper bound, so they overshoot the exact nearest-rank value by
/// at most that factor and never undershoot it. Recording touches four
/// relaxed atomics (bucket, count, sum, max) — safe on the exact-hit
/// serving path.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    /// Maximum observed value, stored as f64 bits (order-preserving for
    /// non-negative floats, so `fetch_max` on the bits is a float max).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Worst-case relative error of a reported quantile: the widest
    /// bucket's relative width, `1 / SUBS`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation (in seconds).
    #[inline]
    pub fn record(&self, seconds: f64) {
        let idx = bucket_index(seconds);
        // ORDERING: Relaxed — each field is an independent tally; a
        // scrape may see count ahead of sum by an in-flight record, which
        // exposition tolerates by design (no cross-field invariant).
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — see above; same in-flight-record slack.
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = if seconds.is_nan() || seconds <= 0.0 {
            0
        } else {
            (seconds * 1e9).round() as u64
        };
        // ORDERING: Relaxed — see above; same in-flight-record slack.
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_bits
            // ORDERING: Relaxed — atomic RMW suffices for a running max.
            .fetch_max(seconds.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Folds a per-thread shard into this histogram.
    pub fn merge_shard(&self, shard: &HistogramShard) {
        for (i, &n) in shard.buckets.iter().enumerate() {
            if n > 0 {
                // ORDERING: Relaxed — tally merge, same slack as
                // `record`: no cross-field invariant for readers.
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        // ORDERING: Relaxed — see above; fields merge independently.
        self.count.fetch_add(shard.count, Ordering::Relaxed);
        // ORDERING: Relaxed — see above; fields merge independently.
        self.sum_nanos.fetch_add(shard.sum_nanos, Ordering::Relaxed);
        self.max_bits
            // ORDERING: Relaxed — atomic RMW suffices for a running max.
            .fetch_max(shard.max.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — scrape read; staleness by an in-flight
        // record is acceptable, see `record`.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        // ORDERING: Relaxed — scrape read, same slack as `count`.
        self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Largest observation, in seconds (0 when empty).
    pub fn max_seconds(&self) -> f64 {
        // ORDERING: Relaxed — scrape read, same slack as `count`.
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile `q ∈ (0, 1]` over the cumulative bucket
    /// counts, reporting the matched bucket's upper bound (the overflow
    /// bucket reports the exact observed maximum). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        self.percentiles(&[q])[0]
    }

    /// [`Histogram::percentile`] for several quantiles over one coherent
    /// read of the bucket array.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<f64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // ORDERING: Relaxed — the bucket array is sampled bucket by
            // bucket; quantiles are statistics over a scrape-consistent
            // snapshot, not an exact point-in-time state.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        qs.iter()
            .map(|&q| {
                if total == 0 {
                    return 0.0;
                }
                let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
                let mut seen = 0u64;
                for (i, &n) in counts.iter().enumerate() {
                    seen += n;
                    if seen >= rank {
                        return if i >= BUCKETS - 1 {
                            self.max_seconds()
                        } else {
                            bucket_upper(i)
                        };
                    }
                }
                self.max_seconds()
            })
            .collect()
    }
}

/// A plain-integer, single-thread histogram shard with the same buckets
/// as [`Histogram`]. Record into a thread-local shard with zero atomics,
/// then fold it into the shared histogram once with
/// [`Histogram::merge_shard`].
#[derive(Debug, Clone)]
pub struct HistogramShard {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u64,
    max: f64,
}

impl Default for HistogramShard {
    fn default() -> HistogramShard {
        HistogramShard {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            max: 0.0,
        }
    }
}

impl HistogramShard {
    /// An empty shard.
    pub fn new() -> HistogramShard {
        HistogramShard::default()
    }

    /// Records one observation (in seconds).
    #[inline]
    pub fn record(&mut self, seconds: f64) {
        self.buckets[bucket_index(seconds)] += 1;
        self.count += 1;
        if !(seconds.is_nan() || seconds <= 0.0) {
            self.sum_nanos += (seconds * 1e9).round() as u64;
            if seconds > self.max {
                self.max = seconds;
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A scoped phase timer: records the guard's lifetime into a histogram
/// when dropped.
///
/// ```
/// use std::sync::Arc;
/// use hddm_telemetry::{Histogram, SpanTimer};
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::start(hist.clone());
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[must_use = "a SpanTimer records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now; the elapsed wall time is recorded into `hist`
    /// on drop.
    pub fn start(hist: Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }

    /// Ends the span now (identical to dropping it).
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        let mut v = 2f64.powi(-34);
        while v < 2f64.powi(14) {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            last = idx;
            v *= 1.01;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_brackets_every_value() {
        for &v in &[1e-9, 3.7e-6, 1e-3, 0.25, 1.0, 17.3, 4000.0] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            if idx > 0 {
                let lower = bucket_upper(idx - 1);
                assert!(lower <= v, "lower {lower} > value {v}");
                assert!(
                    upper / lower - 1.0 <= Histogram::MAX_RELATIVE_ERROR + 1e-12,
                    "bucket {idx} wider than the guarantee"
                );
            }
        }
    }

    #[test]
    fn histogram_basic_stats() {
        let h = Histogram::new();
        for v in [0.001, 0.002, 0.004, 0.008] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum_seconds() - 0.015).abs() < 1e-9);
        assert_eq!(h.max_seconds(), 0.008);
        let p50 = h.percentile(0.5);
        assert!((0.002..=0.002 * (1.0 + Histogram::MAX_RELATIVE_ERROR)).contains(&p50));
        // Overflow bucket reports the true max.
        h.record(1e9);
        assert_eq!(h.percentile(1.0), 1e9);
    }

    #[test]
    fn gauge_ops() {
        let g = Gauge::new();
        g.set(5);
        g.fetch_max(3);
        assert_eq!(g.get(), 5);
        g.fetch_max(9);
        assert_eq!(g.get(), 9);
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 10);
    }
}
