//! The instrument registry: named counters/gauges/histograms with static
//! label sets, deterministic iteration order, and collect hooks.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::instrument::{Counter, Gauge, Histogram, SpanTimer};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};

/// A static label set: `&[("path", "exact"), ...]`. Labels are `'static`
/// by design — instrument identities are decided at compile time, so the
/// registry key needs no allocation and lookups are cheap slice compares.
pub type Labels = &'static [(&'static str, &'static str)];

const NO_LABELS: Labels = &[];

type Key = (&'static str, Labels);

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Inner {
    /// `BTreeMap` keyed by `(name, labels)` — label slices compare by
    /// content, so iteration (and therefore every export) is
    /// deterministic regardless of registration order.
    instruments: Mutex<BTreeMap<Key, Instrument>>,
    /// Closures run at the start of [`Registry::snapshot`], used to
    /// refresh computed gauges (e.g. cache entry counts) that have no
    /// natural write site.
    hooks: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

/// A registry of named instruments. Cloning is cheap (shared handle);
/// subsystems that need isolated counts (one service, one cache) hold
/// their own registry, while process-wide counters use
/// [`Registry::global`].
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.inner.instruments.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} instruments)")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry (e.g. the `hddm-compress` build
    /// counter, which predates any service or cache instance).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_register<T, F, G>(
        &self,
        name: &'static str,
        labels: Labels,
        make: F,
        pick: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Instrument,
        G: FnOnce(&Instrument) -> Option<Arc<T>>,
    {
        let mut map = self.inner.instruments.lock().expect("registry poisoned");
        let entry = map.entry((name, labels)).or_insert_with(make);
        let picked = pick(entry);
        let kind = entry.kind();
        // The kind-mismatch panic fires with the registry unlocked:
        // poisoning the global instrument map would cascade the one
        // buggy registration into a panic in every later metrics call.
        drop(map);
        match picked {
            Some(arc) => arc,
            None => {
                panic!("telemetry instrument {name:?} {labels:?} already registered as a {kind}")
            }
        }
    }

    /// Gets or registers an unlabelled counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counter_with(name, NO_LABELS)
    }

    /// Gets or registers a counter with a static label set.
    pub fn counter_with(&self, name: &'static str, labels: Labels) -> Arc<Counter> {
        self.get_or_register(
            name,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers an unlabelled gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, NO_LABELS)
    }

    /// Gets or registers a gauge with a static label set.
    pub fn gauge_with(&self, name: &'static str, labels: Labels) -> Arc<Gauge> {
        self.get_or_register(
            name,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers an unlabelled histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, NO_LABELS)
    }

    /// Gets or registers a histogram with a static label set.
    pub fn histogram_with(&self, name: &'static str, labels: Labels) -> Arc<Histogram> {
        self.get_or_register(
            name,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Starts a scoped span recording into the named histogram on drop.
    pub fn span(&self, name: &'static str) -> SpanTimer {
        SpanTimer::start(self.histogram(name))
    }

    /// [`Registry::span`] with a static label set.
    pub fn span_with(&self, name: &'static str, labels: Labels) -> SpanTimer {
        SpanTimer::start(self.histogram_with(name, labels))
    }

    /// Registers a collect hook, run at the start of every
    /// [`Registry::snapshot`] — the place to refresh computed gauges
    /// (entry counts, byte totals, queue depths) that have no natural
    /// increment site. Hooks must not call back into `snapshot`.
    pub fn on_collect(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.inner
            .hooks
            .lock()
            .expect("registry poisoned")
            .push(Arc::new(hook));
    }

    /// Runs the collect hooks, then samples every instrument in
    /// deterministic `(name, labels)` order.
    pub fn snapshot(&self) -> Snapshot {
        let hooks: Vec<Arc<dyn Fn() + Send + Sync>> =
            self.inner.hooks.lock().expect("registry poisoned").clone();
        for hook in hooks {
            hook();
        }
        let map = self.inner.instruments.lock().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for (&(name, labels), instrument) in map.iter() {
            let labels: Vec<(String, String)> = labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect();
            match instrument {
                Instrument::Counter(c) => snap.counters.push(CounterSample {
                    name: name.to_string(),
                    labels,
                    value: c.get(),
                }),
                Instrument::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.to_string(),
                    labels,
                    value: g.get(),
                }),
                Instrument::Histogram(h) => {
                    let qs = h.percentiles(&[0.50, 0.99, 0.999]);
                    snap.histograms.push(HistogramSample {
                        name: name.to_string(),
                        labels,
                        count: h.count(),
                        sum_seconds: h.sum_seconds(),
                        max_seconds: h.max_seconds(),
                        p50: qs[0],
                        p99: qs[1],
                        p999: qs[2],
                    });
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("zzz_total").inc();
        r.counter_with("aaa_total", &[("path", "warm")]).inc();
        r.counter_with("aaa_total", &[("path", "exact")]).inc();
        let s = r.snapshot();
        let names: Vec<_> = s
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.labels.clone()))
            .collect();
        assert_eq!(names[0].0, "aaa_total");
        assert_eq!(names[0].1, vec![("path".to_string(), "exact".to_string())]);
        assert_eq!(names[1].1, vec![("path".to_string(), "warm".to_string())]);
        assert_eq!(names[2].0, "zzz_total");
    }

    #[test]
    fn collect_hooks_refresh_computed_gauges() {
        let r = Registry::new();
        let g = r.gauge("depth");
        let src = Arc::new(std::sync::atomic::AtomicU64::new(7));
        let src2 = src.clone();
        let g2 = g.clone();
        r.on_collect(move || g2.set(src2.load(std::sync::atomic::Ordering::Relaxed)));
        assert_eq!(r.snapshot().gauges[0].value, 7);
        src.store(11, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(r.snapshot().gauges[0].value, 11);
    }
}
