//! The point-in-time export format: a deterministic JSON snapshot and a
//! Prometheus-style text exposition.

use serde::{Deserialize, Serialize};

/// One counter reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Instrument name (`hddm_<area>_<what>_total`).
    pub name: String,
    /// Label set, `(key, value)` pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Instrument name (`hddm_<area>_<what>`).
    pub name: String,
    /// Label set, `(key, value)` pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// One histogram reading: count/sum/max plus the nearest-rank quantiles
/// the serving benches report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Instrument name (`hddm_<area>_<phase>_seconds`).
    pub name: String,
    /// Label set, `(key, value)` pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of observations, seconds.
    pub sum_seconds: f64,
    /// Largest observation, seconds.
    pub max_seconds: f64,
    /// Nearest-rank p50, seconds (bucket upper bound).
    pub p50: f64,
    /// Nearest-rank p99, seconds (bucket upper bound).
    pub p99: f64,
    /// Nearest-rank p999, seconds (bucket upper bound).
    pub p999: f64,
}

/// A point-in-time reading of every instrument in a [`Registry`], in
/// deterministic `(name, labels)` order.
///
/// [`Registry`]: crate::Registry
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

fn labels_match(labels: &[(String, String)], want: &[(&str, &str)]) -> bool {
    labels.len() == want.len()
        && labels
            .iter()
            .zip(want)
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

impl Snapshot {
    /// Serializes to compact JSON (deterministic: instrument order is the
    /// registry's sorted order, field order is fixed by the struct).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// The value of the unlabelled counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_with(name, &[])
    }

    /// The value of counter `name` with exactly the labels `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
            .map(|c| c.value)
    }

    /// The value of the unlabelled gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// The sample of the unlabelled histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels.is_empty())
    }

    /// Renders the Prometheus-style text exposition: counters and gauges
    /// as single samples, histograms as summaries (`quantile` labels plus
    /// `_sum` / `_count` / `_max` series).
    pub fn text_exposition(&self) -> String {
        let mut out = String::new();
        let mut last_type_line: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if last_type_line.as_deref() != Some(line.as_str()) {
                out.push_str(&line);
                last_type_line = Some(line);
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            out.push_str(&series(&c.name, &c.labels, None));
            out.push_str(&format!(" {}\n", c.value));
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            out.push_str(&series(&g.name, &g.labels, None));
            out.push_str(&format!(" {}\n", g.value));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "summary");
            for (q, v) in [("0.5", h.p50), ("0.99", h.p99), ("0.999", h.p999)] {
                out.push_str(&series(&h.name, &h.labels, Some(("quantile", q))));
                out.push_str(&format!(" {v}\n"));
            }
            out.push_str(&series(&format!("{}_sum", h.name), &h.labels, None));
            out.push_str(&format!(" {}\n", h.sum_seconds));
            out.push_str(&series(&format!("{}_count", h.name), &h.labels, None));
            out.push_str(&format!(" {}\n", h.count));
            out.push_str(&series(&format!("{}_max", h.name), &h.labels, None));
            out.push_str(&format!(" {}\n", h.max_seconds));
        }
        out
    }
}

/// Renders `name{k="v",...}` (no braces when the label set is empty).
fn series(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut s = String::from(name);
    let mut pairs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push((k, v));
    }
    if !pairs.is_empty() {
        s.push('{');
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{k}=\"{v}\""));
        }
        s.push('}');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("hddm_t_requests_total", &[("path", "exact")])
            .add(3);
        r.gauge("hddm_t_queue_depth").set(5);
        let h = r.histogram("hddm_t_wait_seconds");
        h.record(0.001);
        h.record(0.002);
        r
    }

    #[test]
    fn json_roundtrip_is_lossless_and_deterministic() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        // Re-snapshotting an unchanged registry yields identical text.
        assert_eq!(json, sample_registry().snapshot().to_json());
        assert_eq!(
            back.counter_with("hddm_t_requests_total", &[("path", "exact")]),
            Some(3)
        );
        assert_eq!(back.gauge("hddm_t_queue_depth"), Some(5));
        assert_eq!(back.histogram("hddm_t_wait_seconds").unwrap().count, 2);
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample_registry().snapshot().text_exposition();
        assert!(text.contains("# TYPE hddm_t_requests_total counter"));
        assert!(text.contains("hddm_t_requests_total{path=\"exact\"} 3"));
        assert!(text.contains("# TYPE hddm_t_queue_depth gauge"));
        assert!(text.contains("hddm_t_queue_depth 5"));
        assert!(text.contains("# TYPE hddm_t_wait_seconds summary"));
        assert!(text.contains("hddm_t_wait_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("hddm_t_wait_seconds_count 2"));
        // One TYPE line per instrument name.
        assert_eq!(text.matches("# TYPE hddm_t_wait_seconds ").count(), 1);
    }
}
