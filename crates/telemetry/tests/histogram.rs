//! Histogram correctness: seeded property test against a sorted-vector
//! nearest-rank reference, and lost-sample-free concurrent recording.

use std::sync::Arc;
use std::thread;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_telemetry::{nearest_rank, Histogram, HistogramShard};

/// Log-uniform sample in [1e-8 s, 100 s] — spans 33 octaves of the
/// bucket range, exercising many sub-buckets per case.
fn sample(rng: &mut ChaCha8Rng) -> f64 {
    let lg = rng.gen::<f64>() * (100f64.log2() - 1e-8f64.log2()) + 1e-8f64.log2();
    lg.exp2()
}

/// Property: merged per-thread shards report the same p50/p99/p999 as the
/// sorted-vector nearest-rank reference, within one bucket's relative
/// error (the histogram reports the bucket's upper bound, so it may
/// overshoot by at most `MAX_RELATIVE_ERROR` and never undershoot).
#[test]
fn merged_shards_match_sorted_reference_within_one_bucket() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e1e_7e1e);
    for case in 0..20 {
        let n = 100 + (case * 517) % 4000;
        let shards = 1 + case % 5;
        let mut values = Vec::with_capacity(n);
        let mut shard_vec: Vec<HistogramShard> =
            (0..shards).map(|_| HistogramShard::new()).collect();
        for i in 0..n {
            let v = sample(&mut rng);
            shard_vec[i % shards].record(v);
            values.push(v);
        }
        let hist = Histogram::new();
        for shard in &shard_vec {
            hist.merge_shard(shard);
        }
        assert_eq!(hist.count(), n as u64, "case {case}: lost samples in merge");

        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.50, 0.99, 0.999] {
            let exact = nearest_rank(&values, q);
            let approx = hist.percentile(q);
            assert!(
                approx >= exact * (1.0 - 1e-12),
                "case {case} q={q}: histogram {approx} undershoots exact {exact}"
            );
            assert!(
                approx <= exact * (1.0 + Histogram::MAX_RELATIVE_ERROR + 1e-12),
                "case {case} q={q}: histogram {approx} overshoots exact {exact} \
                 by more than one bucket"
            );
        }
    }
}

/// Concurrency: N threads recording into the shared atomic histogram lose
/// no samples, and the result is identical to the same samples folded
/// through per-thread shards.
#[test]
fn concurrent_recording_loses_no_samples() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50_000;

    let shared = Arc::new(Histogram::new());
    let merged = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = shared.clone();
            thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(t as u64);
                let mut shard = HistogramShard::new();
                for _ in 0..PER_THREAD {
                    let v = sample(&mut rng);
                    shared.record(v);
                    shard.record(v);
                }
                shard
            })
        })
        .collect();
    for h in handles {
        merged.merge_shard(&h.join().unwrap());
    }

    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(shared.count(), total, "atomic path lost samples");
    assert_eq!(merged.count(), total, "shard path lost samples");
    // Same samples, same buckets: every quantile agrees exactly.
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(shared.percentile(q), merged.percentile(q), "q={q}");
    }
    assert_eq!(shared.max_seconds(), merged.max_seconds());
    assert!((shared.sum_seconds() - merged.sum_seconds()).abs() < 1e-6);
}
