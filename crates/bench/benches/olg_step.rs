//! Criterion benchmark of a full OLG time-iteration step at growing model
//! sizes — the end-to-end cost the cluster distributes in Figs. 7/8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hddm_core::{DriverConfig, OlgStep, TimeIteration};
use hddm_kernels::KernelKind;
use hddm_olg::{Calibration, OlgModel};
use hddm_sched::PoolConfig;

fn bench_olg_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("olg-time-step");
    group.sample_size(10);
    for (lifespan, states) in [(4usize, 2usize), (6, 2), (8, 4)] {
        let label = format!("A{lifespan}-Ns{states}");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let model = OlgModel::new(Calibration::small(
                        lifespan,
                        (lifespan * 3) / 4,
                        states,
                        0.03,
                    ));
                    TimeIteration::new(
                        OlgStep::new(model),
                        DriverConfig {
                            kernel: KernelKind::Avx2,
                            start_level: 2,
                            max_steps: 1,
                            pool: PoolConfig {
                                threads: 1,
                                grain: 4,
                            },
                            ..Default::default()
                        },
                    )
                },
                |mut ti| ti.step(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_olg_step);
criterion_main!(benches);
