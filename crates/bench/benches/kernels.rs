//! Criterion benchmarks of the interpolation kernels (the statistical
//! companion to the `table2` report binary). Grid sizes are scaled so one
//! `cargo bench` pass stays in minutes; the full Table-II grids run via
//! the binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hddm_asg::regular_grid;
use hddm_bench::{random_points, synthetic_surpluses};
use hddm_gpu::{CudaInterpolator, Device};
use hddm_kernels::{gold, hashtab, CompressedState, DenseState, HashState, KernelKind, Scratch};

fn bench_kernels(c: &mut Criterion) {
    let ndofs = 118;
    for (label, dim, level) in [("d59-L3-7k", 59usize, 3u8), ("d16-L4", 16, 4)] {
        let grid = regular_grid(dim, level);
        let surplus = synthetic_surpluses(&grid, ndofs, 7);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        let xs = random_points(dim, 64, 11);
        let mut out = vec![0.0; ndofs];
        let mut scratch = Scratch::default();

        let mut group = c.benchmark_group(format!("interpolate/{label}"));
        group.throughput(Throughput::Elements(grid.len() as u64));

        let mut it = xs.chunks_exact(dim).cycle();
        group.bench_function(BenchmarkId::from_parameter("gold"), |b| {
            b.iter(|| gold::interpolate(&dense, it.next().unwrap(), &mut out))
        });
        for kind in KernelKind::COMPRESSED {
            let mut it = xs.chunks_exact(dim).cycle();
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
                b.iter(|| {
                    kind.evaluate_compressed(
                        &compressed,
                        it.next().unwrap(),
                        &mut scratch,
                        &mut out,
                    )
                })
            });
        }
        let cuda = CudaInterpolator::new(Device::p100(), &compressed).unwrap();
        let mut it = xs.chunks_exact(dim).cycle();
        group.bench_function(BenchmarkId::from_parameter("cuda-hostsim"), |b| {
            b.iter(|| cuda.interpolate(it.next().unwrap(), &mut out))
        });
        // The hash-table incumbent (Sec. IV-B's other storage scheme).
        let hashed = HashState::new(&grid, &surplus, ndofs);
        let mut it = xs.chunks_exact(dim).cycle();
        group.bench_function(BenchmarkId::from_parameter("hash-table"), |b| {
            b.iter(|| hashtab::interpolate(&hashed, it.next().unwrap(), &mut out))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
