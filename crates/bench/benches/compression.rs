//! Criterion benchmarks of the compression pipeline itself: build cost of
//! the Sec. IV-B data structure and the surplus reordering, versus dense
//! matrix export.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hddm_asg::{regular_grid, DenseIndexMatrix};
use hddm_bench::synthetic_surpluses;
use hddm_compress::CompressedGrid;

fn bench_compression(c: &mut Criterion) {
    for (label, dim, level) in [("d59-L3", 59usize, 3u8), ("d12-L4", 12, 4)] {
        let grid = regular_grid(dim, level);
        let surplus = synthetic_surpluses(&grid, 8, 3);

        let mut group = c.benchmark_group(format!("compress/{label}"));
        group.bench_function(BenchmarkId::from_parameter("pipeline"), |b| {
            b.iter(|| CompressedGrid::build(&grid))
        });
        group.bench_function(BenchmarkId::from_parameter("dense-export"), |b| {
            b.iter(|| DenseIndexMatrix::from_grid(&grid))
        });
        let cg = CompressedGrid::build(&grid);
        group.bench_function(BenchmarkId::from_parameter("surplus-reorder"), |b| {
            b.iter(|| cg.reorder_rows(&surplus, 8))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compression
}
criterion_main!(benches);
