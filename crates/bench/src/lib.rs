//! Shared helpers for the benchmark harness: grid construction with
//! synthetic surpluses, deterministic random evaluation points, timing
//! utilities, and the OLG point-solve calibration used by the Fig. 7/8
//! models.

#![warn(missing_docs)]

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hddm_asg::{regular_grid, SparseGrid};
use hddm_kernels::{CompressedState, DenseState};

/// The paper's per-point coefficient count (`2·59`).
pub const NDOFS: usize = 118;

/// Builds the Table-I grid of a given level in `d = 59` dimensions.
pub fn paper_grid(level: u8) -> SparseGrid {
    regular_grid(59, level)
}

/// Synthetic surpluses: deterministic pseudo-random values with the decay
/// profile of a smooth function (`|α| ~ 2^{−2·excess}`), so kernel timing
/// sees realistic zero/non-zero chain behaviour.
pub fn synthetic_surpluses(grid: &SparseGrid, ndofs: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dim = grid.dim();
    let mut out = Vec::with_capacity(grid.len() * ndofs);
    for node in grid.nodes() {
        let excess = node.level_sum(dim) - dim as u32;
        let scale = 0.25f64.powi(excess as i32);
        for _ in 0..ndofs {
            out.push(scale * (rng.gen::<f64>() - 0.5));
        }
    }
    out
}

/// Deterministic uniform evaluation points in the unit cube (`n × dim`).
pub fn random_points(dim: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n * dim).map(|_| rng.gen::<f64>()).collect()
}

/// A ready-to-run kernel test case (both data formats of Table II).
pub struct KernelCase {
    /// Case name ("7k" / "300k").
    pub name: &'static str,
    /// The grid.
    pub grid: SparseGrid,
    /// Dense-format state (gold kernel).
    pub dense: DenseState,
    /// Compressed-format state (all other kernels).
    pub compressed: CompressedState,
}

impl KernelCase {
    /// Builds one of the Table-I cases.
    pub fn build(name: &'static str, level: u8, ndofs: usize) -> KernelCase {
        let grid = paper_grid(level);
        let surplus = synthetic_surpluses(&grid, ndofs, 0xA5A5 + level as u64);
        let dense = DenseState::new(&grid, surplus.clone(), ndofs);
        let compressed = CompressedState::new(&grid, &surplus, ndofs);
        KernelCase {
            name,
            grid,
            dense,
            compressed,
        }
    }
}

/// Times `f` over `reps` calls and returns average seconds per call.
pub fn time_avg<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// Measures the single-thread per-point OLG solve time on the *headline*
/// 59-dimensional model against a level-`level` policy grid — the one
/// calibration input of the Fig. 7/8 machine models.
pub fn calibrate_point_seconds(sample_points: usize, level: u8) -> f64 {
    use hddm_core::{DriverConfig, OlgStep, TimeIteration};
    use hddm_kernels::KernelKind;
    use hddm_olg::{Calibration, OlgModel, PolicyOracle};
    use hddm_sched::PoolConfig;

    let model = OlgModel::new(Calibration::headline());
    let step = OlgStep::new(model);
    let ti = TimeIteration::new(
        step,
        DriverConfig {
            kernel: KernelKind::Avx2,
            start_level: level,
            pool: PoolConfig {
                threads: 1,
                grain: 1,
            },
            ..Default::default()
        },
    );
    let domain = ti.policy.domain.clone();
    let grid = regular_grid(59, level);
    let n = sample_points.min(grid.len());
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let mut scratch = hddm_olg::PointScratch::default();
    let mut unit = vec![0.0; 59];
    let mut phys = vec![0.0; 59];
    let mut warm = vec![0.0; NDOFS];
    let step = OlgStep::new(OlgModel::new(Calibration::headline()));

    let start = Instant::now();
    let mut solved = 0usize;
    for p in 0..n {
        grid.unit_point_of(p * grid.len() / n, &mut unit);
        domain.from_unit(&unit, &mut phys);
        oracle.eval(p % 16, &phys, &mut warm);
        if step
            .model
            .solve_point(
                p % 16,
                &phys,
                &warm,
                &mut oracle,
                &mut scratch,
                &step.newton,
            )
            .is_ok()
        {
            solved += 1;
        }
    }
    start.elapsed().as_secs_f64() / solved.max(1) as f64
}
