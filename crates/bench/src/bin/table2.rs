//! Regenerates **Table II** (kernel runtimes) and **Fig. 6** (normalized
//! speedups): average execution time of each interpolation kernel over
//! randomly sampled points, on the "7k" and "300k" grids with
//! `ndofs = 118`.
//!
//! ```text
//! cargo run -p hddm-bench --release --bin table2 [points-per-case]
//! ```
//!
//! The `cuda` row reports both the host-simulated execution (correctness
//! path) and the roofline-modeled P100 time that stands in for the paper's
//! measured device (this machine has no GPU — see DESIGN.md).

use hddm_bench::{random_points, time_avg, KernelCase, NDOFS};
use hddm_gpu::{CudaInterpolator, Device};
use hddm_kernels::{gold, vector, KernelKind, Scratch};

fn main() {
    let points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    println!("Table II — interpolation kernel performance (ndofs = {NDOFS}, avg over {points} random points)");
    println!(
        "host AVX support: avx={} avx2+fma={} avx512f={}",
        vector::VectorIsa::Avx.native(),
        vector::VectorIsa::Avx2.native(),
        vector::VectorIsa::Avx512.native()
    );
    println!();

    for (name, level, reps) in [("7k", 3u8, points), ("300k", 4u8, points)] {
        println!("building \"{name}\" case (level {level})...");
        let case = KernelCase::build(name, level, NDOFS);
        let xs = random_points(59, reps, 0xBEEF);
        let mut out = vec![0.0; NDOFS];
        let mut scratch = Scratch::default();

        let mut rows: Vec<(String, f64)> = Vec::new();

        // gold — dense scalar baseline.
        let mut iter = xs.chunks_exact(59).cycle();
        let gold_time = time_avg(reps, || {
            gold::interpolate(&case.dense, iter.next().unwrap(), &mut out);
        });
        rows.push(("gold".into(), gold_time));

        // compressed kernels.
        for kind in KernelKind::COMPRESSED {
            let mut iter = xs.chunks_exact(59).cycle();
            let t = time_avg(reps, || {
                kind.evaluate_compressed(
                    &case.compressed,
                    iter.next().unwrap(),
                    &mut scratch,
                    &mut out,
                );
            });
            rows.push((kind.name().into(), t));
        }

        // avx512 with intra-kernel threading (the paper's full variant).
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads > 1 {
            let mut iter = xs.chunks_exact(59).cycle();
            let t = time_avg(reps.min(200), || {
                vector::interpolate_avx512_mt(
                    &case.compressed,
                    iter.next().unwrap(),
                    threads,
                    &mut out,
                );
            });
            rows.push((format!("avx512 ({threads}t)"), t));
        }

        // cuda — host-simulated execution + modeled P100 time.
        let cuda = CudaInterpolator::new(Device::p100(), &case.compressed).expect("fits P100");
        let mut modeled = 0.0;
        let mut iter = xs.chunks_exact(59).cycle();
        let sim_time = time_avg(reps.min(200), || {
            modeled = cuda
                .interpolate(iter.next().unwrap(), &mut out)
                .modeled_seconds;
        });
        rows.push(("cuda (host-sim)".into(), sim_time));
        rows.push(("cuda (P100 model)".into(), modeled));

        println!(
            "\n  \"{name}\" test ({} points, {} xps/state):",
            case.grid.len(),
            case.compressed.grid.xps().len()
        );
        println!("  {:<18} {:>12} {:>10}", "version", "time [sec]", "vs gold");
        for (kernel, t) in &rows {
            println!("  {:<18} {:>12.6} {:>9.2}x", kernel, t, gold_time / t);
        }
    }

    println!();
    println!("Paper (Table II / Fig. 6) reference shape: x86/avx/avx2 ≈ 4.4x/4.1x over gold;");
    println!("avx512 20.8x (7k) / 3.6x (300k) with intra-kernel threads; cuda 68.6x / 6.7x.");
}
