//! Scenario-serving demo: replay a mixed request trace (exact hits /
//! warm near-misses / cold misses) through the [`ScenarioService`]
//! facade from concurrent client threads and report per-class
//! hit/warm/cold latencies.
//!
//! ```text
//! # Warm the persistent cache first, then replay against it:
//! cargo run --release -p hddm-bench --bin scenarios -- --demo --cache-dir /tmp/hddm-cache
//! cargo run --release -p hddm-bench --bin serve -- --cache-dir /tmp/hddm-cache \
//!     --hits 16 --warm 6 --cold 2 --clients 4 --expect-hits-zero-solve
//! ```
//!
//! Exits non-zero if any request errors, any solved scenario fails to
//! converge, or — with `--expect-hits-zero-solve` — any hit-class
//! request was not served as a zero-step exact cache hit (the CI smoke
//! contract for the serving front-end).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hddm_scenarios::{CacheKind, ExecutorConfig, Knob, ScenarioSet};
use hddm_serve::{ScenarioRequest, ScenarioResponse, ScenarioService, ServeConfig};

struct Args {
    cache_dir: Option<String>,
    lifespan: usize,
    work_years: usize,
    hits: usize,
    warm: usize,
    cold: usize,
    clients: usize,
    workers: usize,
    max_batch: usize,
    linger_ms: u64,
    queue_capacity: usize,
    expect_hits_zero_solve: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cache_dir: None,
        lifespan: 5,
        work_years: 3,
        hits: 16,
        warm: 4,
        cold: 2,
        clients: 4,
        workers: 2,
        max_batch: 8,
        linger_ms: 2,
        queue_capacity: 256,
        expect_hits_zero_solve: false,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        macro_rules! parse {
            ($field:ident, $name:literal) => {
                args.$field = value($name)?
                    .parse()
                    .map_err(|e| format!("{}: {e}", $name))?
            };
        }
        match flag.as_str() {
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--lifespan" => parse!(lifespan, "--lifespan"),
            "--work-years" => parse!(work_years, "--work-years"),
            "--hits" => parse!(hits, "--hits"),
            "--warm" => parse!(warm, "--warm"),
            "--cold" => parse!(cold, "--cold"),
            "--clients" => parse!(clients, "--clients"),
            "--workers" => parse!(workers, "--workers"),
            "--max-batch" => parse!(max_batch, "--max-batch"),
            "--linger-ms" => parse!(linger_ms, "--linger-ms"),
            "--queue-capacity" => parse!(queue_capacity, "--queue-capacity"),
            "--expect-hits-zero-solve" => args.expect_hits_zero_solve = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be ≥ 1".into());
    }
    Ok(args)
}

/// Which answer a trace entry is engineered to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceClass {
    /// A demo-sweep scenario, expected to be cached (when the cache was
    /// pre-warmed by the `scenarios` CLI over the same directory).
    Hit,
    /// A small in-radius jitter of a demo scenario: a warm near-miss.
    WarmMiss,
    /// A far box reform: a cold miss.
    ColdMiss,
}

impl TraceClass {
    fn label(self) -> &'static str {
        match self {
            TraceClass::Hit => "hit",
            TraceClass::WarmMiss => "warm-miss",
            TraceClass::ColdMiss => "cold-miss",
        }
    }
}

/// Builds the labeled request trace off the demo sweep.
fn build_trace(args: &Args) -> Result<Vec<(TraceClass, ScenarioRequest)>, String> {
    let demo = ScenarioSet::demo(args.lifespan, args.work_years)?;
    let mut trace = Vec::new();
    for i in 0..args.hits {
        let scenario = demo.scenarios[i % demo.len()].clone();
        trace.push((TraceClass::Hit, ScenarioRequest::new(scenario)));
    }
    for i in 0..args.warm {
        let mut scenario = demo.scenarios[i % demo.len()].clone();
        // Within the warm radius of its source, but a distinct hash.
        let beta = scenario.calibration.beta + 0.0004 * (1 + i / demo.len()) as f64;
        Knob::Beta.apply(&mut scenario, beta)?;
        scenario.name = format!("{}/warm{i}", scenario.name);
        trace.push((TraceClass::WarmMiss, ScenarioRequest::new(scenario)));
    }
    for i in 0..args.cold {
        let mut scenario = demo.scenarios[i % demo.len()].clone();
        // A box reform far outside the warm radius (steady state is
        // unaffected, so the solve stays well-posed).
        Knob::CapitalSpan.apply(&mut scenario, 0.45 + 0.02 * (i / demo.len()) as f64)?;
        scenario.name = format!("{}/cold{i}", scenario.name);
        trace.push((TraceClass::ColdMiss, ScenarioRequest::new(scenario)));
    }
    Ok(trace)
}

fn latency_line(class: &str, latencies: &mut [f64]) -> String {
    if latencies.is_empty() {
        return format!("  {class:<10} 0 requests");
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let n = latencies.len();
    let mean = latencies.iter().sum::<f64>() / n as f64;
    format!(
        "  {class:<10} {n:>3} requests: min {:>8.3} ms, mean {:>8.3} ms, max {:>8.3} ms",
        latencies[0] * 1e3,
        mean * 1e3,
        latencies[n - 1] * 1e3
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match build_trace(&args) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let config = ServeConfig {
        executor: ExecutorConfig {
            threads: 1, // solves are batched; concurrency comes from the dispatchers
            cache_dir: args.cache_dir.as_ref().map(std::path::PathBuf::from),
            ..ExecutorConfig::serial()
        },
        max_batch: args.max_batch,
        queue_capacity: args.queue_capacity,
        linger: Duration::from_millis(args.linger_ms),
        workers: args.workers,
    };
    let service = match ScenarioService::open(config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "Serving trace: {} hit / {} warm-miss / {} cold-miss requests over {} client thread(s), \
         {} dispatcher(s), micro-batch ≤ {}, linger {} ms{}",
        args.hits,
        args.warm,
        args.cold,
        args.clients,
        args.workers,
        args.max_batch,
        args.linger_ms,
        match &args.cache_dir {
            Some(dir) => format!(", cache dir {dir}"),
            None => ", in-memory cache".into(),
        }
    );

    // Round-robin the trace across client threads; each client submits
    // its slice and blocks per request (`call`), so distinct clients
    // exercise the concurrent admission path.
    let results: Vec<Vec<(TraceClass, Result<ScenarioResponse, hddm_serve::ServeError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|client| {
                    let service = Arc::clone(&service);
                    let slice: Vec<_> = trace
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % args.clients == client)
                        .map(|(_, (class, request))| (*class, request.clone()))
                        .collect();
                    scope.spawn(move || {
                        slice
                            .into_iter()
                            .map(|(class, request)| (class, service.call(request)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    let mut failures = 0usize;
    let mut hit_violations = 0usize;
    let mut non_converged = 0usize;
    let mut latencies: Vec<(TraceClass, Vec<f64>)> = vec![
        (TraceClass::Hit, Vec::new()),
        (TraceClass::WarmMiss, Vec::new()),
        (TraceClass::ColdMiss, Vec::new()),
    ];
    let mut served = [0usize; 3]; // exact / warm / cold as actually served

    for (class, result) in results.into_iter().flatten() {
        match result {
            Ok(response) => {
                latencies
                    .iter_mut()
                    .find(|(c, _)| *c == class)
                    .expect("class bucket")
                    .1
                    .push(response.total_seconds);
                match response.kind() {
                    CacheKind::Exact => served[0] += 1,
                    CacheKind::Warm => served[1] += 1,
                    CacheKind::Cold => served[2] += 1,
                }
                if response.report.steps > 0 && !response.report.converged {
                    eprintln!("serve: NON-CONVERGED: {:?}", response.report.name);
                    non_converged += 1;
                }
                if args.expect_hits_zero_solve
                    && class == TraceClass::Hit
                    && (response.kind() != CacheKind::Exact || response.report.steps != 0)
                {
                    eprintln!(
                        "serve: hit request {:?} was served {} with {} step(s), \
                         expected a zero-step exact hit",
                        response.report.name,
                        response.kind(),
                        response.report.steps
                    );
                    hit_violations += 1;
                }
            }
            Err(e) => {
                eprintln!("serve: request failed ({}): {e}", class.label());
                failures += 1;
            }
        }
    }

    println!("\nlatency by trace class:");
    for (class, lat) in &mut latencies {
        println!("{}", latency_line(class.label(), lat));
    }
    println!(
        "\nserved: {} exact / {} warm / {} cold",
        served[0], served[1], served[2]
    );
    let stats = service.cache().stats();
    println!(
        "cache: {} in memory, {} on disk ({} bytes), {} disk restore(s), \
         peak {} concurrent restore(s), {} lock poisoning(s)",
        stats.entries,
        stats.persisted_entries,
        stats.persisted_bytes,
        stats.disk_hits,
        stats.concurrent_restores_peak,
        stats.lock_poisonings
    );
    if let Some(path) = &args.metrics_out {
        let snapshot = service.registry().snapshot();
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("serve: write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if failures > 0 || non_converged > 0 {
        eprintln!("serve: {failures} failed request(s), {non_converged} non-converged solve(s)");
        return ExitCode::FAILURE;
    }
    if hit_violations > 0 {
        eprintln!(
            "serve: --expect-hits-zero-solve violated by {hit_violations} hit request(s) \
             (was the cache warmed with the same demo sweep?)"
        );
        return ExitCode::FAILURE;
    }
    if args.expect_hits_zero_solve {
        println!(
            "serving contract holds: all {} hit requests were zero-step exact hits, \
             all misses converged",
            args.hits
        );
    }
    ExitCode::SUCCESS
}
