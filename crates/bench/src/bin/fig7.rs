//! Regenerates **Fig. 7** (single-node wall times for the OLG first two
//! refinement levels: 16·119 = 1,904 points, 112,336 unknowns).
//!
//! ```text
//! cargo run -p hddm-bench --release --bin fig7 [calibration-points]
//! ```
//!
//! Step 1 *measures* the real per-point solve time of the 59-dimensional
//! OLG system on this host (single thread, AVX2 kernels, level-2 policy
//! grids — the exact workload of the figure). Step 2 applies the node
//! models of the two Cray systems (see `hddm-cluster::nodesim` and
//! DESIGN.md) to produce the figure's bars.

use hddm_bench::calibrate_point_seconds;
use hddm_cluster::fig7_variants;

fn main() {
    let sample: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    const POINTS: usize = 16 * 119; // 1,904
    println!("Fig. 7 — single-node performance, OLG levels 1–2");
    println!("instance: {POINTS} points, {} variables", POINTS * 59);
    println!();
    println!("calibrating: solving {sample} real 59-dim OLG points (single thread)...");
    let t_point = calibrate_point_seconds(sample, 2);
    println!(
        "measured per-point solve: {:.4} s  (this host, 1 thread)",
        t_point
    );
    let host_serial = t_point * POINTS as f64;
    println!(
        "=> full instance on this host, 1 thread: {:.0} s (paper's Xeon: 2,243 s)",
        host_serial
    );
    println!();

    println!(
        "{:<44} {:>12} {:>9}",
        "configuration", "wall [sec]", "speedup"
    );
    let variants = fig7_variants();
    let reference = variants[0].wall_time(POINTS, t_point);
    for v in &variants {
        let t = v.wall_time(POINTS, t_point);
        println!("{:<44} {:>12.1} {:>8.1}x", v.name, t, reference / t);
    }
    println!();
    println!("Paper reference shape: 12-thread+GPU Piz Daint node = 25x one CPU thread;");
    println!("KNL node = 96x one KNL thread; Piz Daint node ≈ 2x Grand Tave node.");
}
