//! Regenerates **Table I** (interpolation test cases) and the grid-growth
//! numbers of Sec. V / footnote 12.
//!
//! ```text
//! cargo run -p hddm-bench --release --bin table1
//! ```

use hddm_asg::{level_increment_size, regular_grid_size};
use hddm_bench::paper_grid;
use hddm_compress::CompressedGrid;

fn main() {
    println!("Table I — interpolation test cases (d = 59, 16 states)");
    println!(
        "{:<8} {:>4} {:>10} {:>6} {:>8} {:>11}",
        "test", "d", "nno", "level", "#states", "xps/state"
    );
    for (name, level) in [("\"7k\"", 3u8), ("\"300k\"", 4u8)] {
        let grid = paper_grid(level);
        let cg = CompressedGrid::build(&grid);
        println!(
            "{:<8} {:>4} {:>10} {:>6} {:>8} {:>11}",
            name,
            grid.dim(),
            grid.len(),
            level,
            16,
            cg.xps().len()
        );
        let stats = cg.stats();
        println!(
            "         zeros in Xi: {:.1}%  nfreq: {}  compressed: {:.2} MB  dense: {:.2} MB ({:.1}x smaller)",
            stats.zero_fraction * 100.0,
            cg.nfreq(),
            stats.compressed_bytes as f64 / 1e6,
            stats.dense_bytes as f64 / 1e6,
            stats.dense_bytes as f64 / stats.compressed_bytes as f64,
        );
    }

    println!();
    println!("Sparse grid growth for d = 59 (paper footnote 12):");
    println!("{:>5} {:>15} {:>15}", "L", "points", "new points");
    for level in 2..=6u8 {
        println!(
            "{:>5} {:>15} {:>15}",
            level,
            regular_grid_size(59, level),
            level_increment_size(59, level)
        );
    }
    println!();
    println!(
        "Sanity: 16 x 281,077 x 59 = {} unknowns (paper: 265,336,688)",
        16u64 * 281_077 * 59
    );
}
