//! Regenerates **Fig. 8** (strong scaling on "Piz Daint", 1 → 4,096
//! nodes): a single time step of the 59-dimensional OLG model on a
//! non-adaptive level-4 grid restarted from level 2 — 16·281,077 =
//! 4,497,232 points and 265,336,688 unknowns.
//!
//! ```text
//! cargo run -p hddm-bench --release --bin fig8 [calibration-points]
//! ```
//!
//! The per-point solve cost is *measured* on this host (real 59-dim OLG
//! solves); the node sweep replays the paper's distribution logic (groups
//! ∝ M_z, per-level barrier + merge) in the discrete-event simulator of
//! `hddm-cluster::sim` (this host has one core; see DESIGN.md).

use hddm_bench::calibrate_point_seconds;
use hddm_cluster::{strong_scaling_sweep, ClusterModel, LevelWork};

fn main() {
    let sample: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    println!("Fig. 8 — strong scaling, level-4 OLG step restarted from level 2");
    println!("workload: 16 x 281,077 = 4,497,232 points; 265,336,688 unknowns");
    println!();
    println!("calibrating: solving {sample} real 59-dim OLG points (single thread)...");
    let t_host = calibrate_point_seconds(sample, 2);
    println!(
        "measured per-point solve on this host: {:.4} s (Newton)",
        t_host
    );

    // The simulated node is a 2017 Cray XC50 node running Ipopt, not this
    // host: anchor its per-point cost to the paper's own single-node
    // reference (20,471 s for the full step on 12 threads + P100).
    let total_points = 4_497_232f64;
    let threads = 12.0;
    let node_speedup = 2.1;
    let t_point = 20_471.0 * threads * node_speedup / total_points;
    println!(
        "paper-anchored per-point solve on a Piz Daint node: {:.4} s ({}x this host)",
        t_point,
        (t_point / t_host).round()
    );

    let model = ClusterModel::piz_daint(t_point);
    let levels = vec![
        LevelWork {
            points_per_state: vec![119; 16],
        },
        LevelWork {
            points_per_state: vec![6_962; 16],
        },
        LevelWork {
            points_per_state: vec![273_996; 16],
        },
    ];
    let nodes = [1usize, 4, 16, 64, 256, 1024, 4096];
    let sweep = strong_scaling_sweep(&model, &levels, &nodes);
    let t1 = sweep[0].1.total;
    let t1_l3 = sweep[0].1.per_level[1];
    let t1_l4 = sweep[0].1.per_level[2];

    println!("single-node step time: {:.0} s (paper: 20,471 s)", t1);
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "nodes", "level3 norm", "level4 norm", "total norm", "ideal", "eff"
    );
    for (n, timing) in &sweep {
        let ideal = 1.0 / *n as f64;
        let total_norm = timing.total / t1;
        println!(
            "{:>6} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.1e} {:>7.0}%",
            n,
            timing.per_level[1] / t1_l3,
            timing.per_level[2] / t1_l4,
            total_norm,
            ideal,
            100.0 * ideal / total_norm
        );
    }
    println!();
    println!("Paper reference shape: near-ideal scaling through 1,024 nodes, ≈70%");
    println!("efficiency at 4,096; level 3 (6,962 pts/state) saturates before level 4");
    println!("(273,996 pts/state) because points-per-thread drops below one.");
}
