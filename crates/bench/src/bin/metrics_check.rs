//! CI validator for telemetry snapshots written by `--metrics-out`:
//! parses the JSON, checks the required instrument names for the
//! requested surface (`--sweep` for solve/cache metrics, `--serve` for
//! the serving front-end, `--gpu` for the device backend), and enforces
//! the admission identity
//!
//! ```text
//! submitted == exact_hits + enqueued_groups + coalesced_waiters
//!              + rejected_queue_full
//! ```
//!
//! (sheds happen after admission — a shed waiter was first enqueued or
//! coalesced — so they do not appear on the right-hand side).
//!
//! ```text
//! cargo run --release -p hddm-bench --bin metrics-check -- \
//!     metrics.json --serve [--print]
//! ```

use std::process::ExitCode;

use hddm_gpu::backend::metric;
use hddm_telemetry::Snapshot;

const SWEEP_COUNTERS: &[&str] = &[
    "hddm_cache_exact_hits_total",
    "hddm_cache_warm_hits_total",
    "hddm_cache_misses_total",
    "hddm_cache_disk_hits_total",
];
const SWEEP_GAUGES: &[&str] = &[
    "hddm_cache_entries",
    "hddm_cache_persisted_entries",
    "hddm_cache_persisted_bytes",
    "hddm_cache_evictions",
    "hddm_cache_skipped",
    "hddm_cache_lock_poisonings",
    "hddm_cache_concurrent_restores_peak",
];
const SWEEP_HISTOGRAMS: &[&str] = &[
    "hddm_solve_policy_update_seconds",
    "hddm_solve_hierarchize_seconds",
    "hddm_solve_compress_seconds",
    "hddm_solve_scenario_seconds",
    "hddm_cache_deposit_seconds",
];
const SERVE_COUNTERS: &[&str] = &[
    "hddm_serve_submitted_total",
    "hddm_serve_exact_hits_total",
    "hddm_serve_enqueued_groups_total",
    "hddm_serve_coalesced_waiters_total",
    "hddm_serve_rejected_queue_full_total",
    "hddm_serve_shed_waiters_total",
    "hddm_serve_shed_groups_total",
    "hddm_serve_dispatched_batches_total",
    "hddm_serve_dispatched_groups_total",
];
const SERVE_GAUGES: &[&str] = &["hddm_serve_queue_depth", "hddm_serve_queue_depth_peak"];
const SERVE_HISTOGRAMS: &[&str] = &[
    "hddm_serve_exact_hit_seconds",
    "hddm_serve_warm_hint_seconds",
    "hddm_serve_queue_wait_seconds",
    "hddm_serve_batch_solve_seconds",
];
// Shared with the emitter (`hddm_gpu::backend::metric`) so the required
// list cannot drift from what the engine actually registers.
const GPU_COUNTERS: &[&str] = &[
    metric::LAUNCHES,
    metric::UPLOADS,
    metric::POOL_HITS,
    metric::POOL_EVICTIONS,
];
const GPU_GAUGES: &[&str] = &[metric::OCCUPANCY, metric::POOL_RESIDENT_BYTES];
const GPU_HISTOGRAMS: &[&str] = &[metric::UPLOAD_SECONDS, metric::KERNEL_SECONDS];

struct Args {
    path: String,
    sweep: bool,
    serve: bool,
    gpu: bool,
    print: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut sweep = false;
    let mut serve = false;
    let mut gpu = false;
    let mut print = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--sweep" => sweep = true,
            "--serve" => serve = true,
            "--gpu" => gpu = true,
            "--print" => print = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("exactly one snapshot path expected".into());
                }
            }
        }
    }
    Ok(Args {
        path: path
            .ok_or("usage: metrics-check <snapshot.json> [--sweep] [--serve] [--gpu] [--print]")?,
        sweep,
        serve,
        gpu,
        print,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("metrics-check: all checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("metrics-check: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let raw =
        std::fs::read_to_string(&args.path).map_err(|e| format!("read {}: {e}", args.path))?;
    let snapshot = Snapshot::from_json(&raw)
        .map_err(|e| format!("{} is not a valid snapshot: {e}", args.path))?;
    // Well-formedness: the snapshot must round-trip bit-identically
    // through the JSON exporter, and must not be empty.
    if snapshot.counters.is_empty() && snapshot.gauges.is_empty() && snapshot.histograms.is_empty()
    {
        return Err("snapshot holds no instruments".into());
    }
    let reencoded = Snapshot::from_json(&snapshot.to_json())
        .map_err(|e| format!("snapshot does not round-trip: {e}"))?;
    if reencoded != snapshot {
        return Err("snapshot JSON round trip is not identity".into());
    }

    let mut missing: Vec<&str> = Vec::new();
    let mut require = |names: &'static [&'static str], kind: &str| {
        for &name in names {
            let found = match kind {
                "counter" => snapshot.counter(name).is_some(),
                "gauge" => snapshot.gauge(name).is_some(),
                _ => snapshot.histogram(name).is_some(),
            };
            if !found {
                missing.push(name);
            }
        }
    };
    if args.sweep {
        require(SWEEP_COUNTERS, "counter");
        require(SWEEP_GAUGES, "gauge");
        require(SWEEP_HISTOGRAMS, "histogram");
    }
    if args.serve {
        require(SERVE_COUNTERS, "counter");
        require(SERVE_GAUGES, "gauge");
        require(SERVE_HISTOGRAMS, "histogram");
    }
    if args.gpu {
        require(GPU_COUNTERS, "counter");
        require(GPU_GAUGES, "gauge");
        require(GPU_HISTOGRAMS, "histogram");
    }
    if !missing.is_empty() {
        return Err(format!("missing instruments: {missing:?}"));
    }

    if args.serve {
        let c = |name: &str| snapshot.counter(name).unwrap_or(0);
        let submitted = c("hddm_serve_submitted_total");
        let accounted = c("hddm_serve_exact_hits_total")
            + c("hddm_serve_enqueued_groups_total")
            + c("hddm_serve_coalesced_waiters_total")
            + c("hddm_serve_rejected_queue_full_total");
        if submitted != accounted {
            return Err(format!(
                "admission identity violated: submitted {submitted} != exact + enqueued \
                 + coalesced + rejected = {accounted}"
            ));
        }
        println!(
            "metrics-check: admission identity holds ({submitted} submitted == {accounted} \
             accounted)"
        );
    }

    if args.gpu {
        let c = |name: &str| snapshot.counter(name).unwrap_or(0);
        // Every evicted surface was first uploaded, so evictions can
        // never outrun uploads; and a launch implies its surface went
        // through the pool (upload or hit).
        let uploads = c(metric::UPLOADS);
        let evictions = c(metric::POOL_EVICTIONS);
        if evictions > uploads {
            return Err(format!(
                "gpu pool identity violated: {evictions} evictions > {uploads} uploads"
            ));
        }
        let launches = c(metric::LAUNCHES);
        let residency = uploads + c(metric::POOL_HITS);
        if launches > 0 && residency == 0 {
            return Err(format!(
                "gpu pool identity violated: {launches} launches with no residency events"
            ));
        }
        println!(
            "metrics-check: gpu identities hold ({launches} launches, {uploads} uploads, \
             {evictions} evictions)"
        );
    }

    if args.print {
        print!("{}", snapshot.text_exposition());
    }
    println!(
        "metrics-check: {} counters, {} gauges, {} histograms in {}",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        args.path
    );
    Ok(())
}
