//! Open-loop serving load bench: replay a mixed hit/warm/cold request
//! trace against the [`ScenarioService`] at a configured arrival rate
//! and report tail latency per decision path, sustained throughput,
//! queue telemetry, and the binary-vs-JSON record restore comparison —
//! all written to a machine-readable `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p hddm-bench --bin serve-bench -- \
//!     [--smoke] [--cache-dir DIR] [--rate 200] [--clients 4] \
//!     [--out BENCH_serve.json] [--expect-exact-p99-ms 50] \
//!     [--expect-record-speedup 1.0]
//! ```
//!
//! **Methodology.** The bench is *open-loop*: request `i` of the trace
//! is scheduled at `t_i = i / rate` from the replay start, regardless of
//! whether earlier requests completed — arrival pressure does not adapt
//! to service latency, so queueing delay shows up in the tail instead of
//! silently throttling the offered load. Client threads submit
//! non-blocking (`ScenarioService::submit`) at their scheduled instants
//! and collect tickets; latency is the service-measured
//! submission-to-fulfillment time (`ScenarioResponse::total_seconds`),
//! immune to when the client happens to observe the ticket. Percentiles
//! are bucketed by the *served* decision path (exact hit / warm-started
//! solve / cold solve), not the intended trace class.
//!
//! With `--cache-dir` the warm phase persists the demo sweep to disk and
//! the service is opened over a **fresh** cache handle, so exact hits
//! exercise the record-restore path at least once per surface.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use hddm_scenarios::{
    fingerprint, persist, run_set, scenario_hash, CacheKind, ExecutorConfig, Knob, Lookup,
    Scenario, ScenarioSet, ShapeKey, SurfaceCache,
};
use hddm_serve::{ScenarioRequest, ScenarioService, ServeConfig, ServeError};
use hddm_telemetry::nearest_rank;

struct Args {
    smoke: bool,
    cache_dir: Option<String>,
    out: String,
    metrics_out: Option<String>,
    lifespan: usize,
    work_years: usize,
    hits: usize,
    warm: usize,
    cold: usize,
    rate: f64,
    clients: usize,
    workers: usize,
    max_batch: usize,
    linger_ms: u64,
    queue_capacity: usize,
    deadline_ms: Option<u64>,
    expect_exact_p99_ms: Option<f64>,
    expect_record_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        cache_dir: None,
        out: "BENCH_serve.json".into(),
        metrics_out: None,
        lifespan: 5,
        work_years: 3,
        hits: 0, // 0 → mode default, resolved below
        warm: 0,
        cold: 0,
        rate: 0.0,
        clients: 4,
        workers: 2,
        max_batch: 8,
        linger_ms: 2,
        queue_capacity: 256,
        deadline_ms: None,
        expect_exact_p99_ms: None,
        expect_record_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        macro_rules! parse {
            ($field:ident, $name:literal) => {
                args.$field = value($name)?
                    .parse()
                    .map_err(|e| format!("{}: {e}", $name))?
            };
        }
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--out" => args.out = value("--out")?,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--lifespan" => parse!(lifespan, "--lifespan"),
            "--work-years" => parse!(work_years, "--work-years"),
            "--hits" => parse!(hits, "--hits"),
            "--warm" => parse!(warm, "--warm"),
            "--cold" => parse!(cold, "--cold"),
            "--rate" => parse!(rate, "--rate"),
            "--clients" => parse!(clients, "--clients"),
            "--workers" => parse!(workers, "--workers"),
            "--max-batch" => parse!(max_batch, "--max-batch"),
            "--linger-ms" => parse!(linger_ms, "--linger-ms"),
            "--queue-capacity" => parse!(queue_capacity, "--queue-capacity"),
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--expect-exact-p99-ms" => {
                args.expect_exact_p99_ms = Some(
                    value("--expect-exact-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--expect-exact-p99-ms: {e}"))?,
                )
            }
            "--expect-record-speedup" => {
                args.expect_record_speedup = Some(
                    value("--expect-record-speedup")?
                        .parse()
                        .map_err(|e| format!("--expect-record-speedup: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // Mode defaults (overridable per flag above).
    if args.hits == 0 {
        args.hits = if args.smoke { 32 } else { 128 };
    }
    if args.warm == 0 {
        args.warm = if args.smoke { 4 } else { 8 };
    }
    if args.cold == 0 {
        args.cold = if args.smoke { 2 } else { 4 };
    }
    if args.rate <= 0.0 {
        args.rate = if args.smoke { 200.0 } else { 400.0 };
    }
    if args.clients == 0 {
        return Err("--clients must be ≥ 1".into());
    }
    Ok(args)
}

/// The intended class of a trace entry (hits are verified post-hoc
/// against the served kind).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceClass {
    Hit,
    WarmMiss,
    ColdMiss,
}

/// Builds the labeled trace off the demo sweep, interleaved so misses
/// are spread through the hit stream (a burst of solves at the end would
/// understate queueing pressure on the hits).
fn build_trace(
    args: &Args,
    demo: &ScenarioSet,
) -> Result<Vec<(TraceClass, ScenarioRequest)>, String> {
    let mut hits = Vec::new();
    for i in 0..args.hits {
        let scenario = demo.scenarios[i % demo.len()].clone();
        hits.push((TraceClass::Hit, request(args, scenario)));
    }
    let mut misses = Vec::new();
    for i in 0..args.warm {
        let mut scenario = demo.scenarios[i % demo.len()].clone();
        // Within the warm radius of its source, but a distinct hash.
        let beta = scenario.calibration.beta + 0.0004 * (1 + i / demo.len()) as f64;
        Knob::Beta.apply(&mut scenario, beta)?;
        scenario.name = format!("{}/warm{i}", scenario.name);
        misses.push((TraceClass::WarmMiss, request(args, scenario)));
    }
    for i in 0..args.cold {
        let mut scenario = demo.scenarios[i % demo.len()].clone();
        // A box reform far outside the warm radius (steady state is
        // unaffected, so the solve stays well-posed).
        Knob::CapitalSpan.apply(&mut scenario, 0.45 + 0.02 * (i / demo.len()) as f64)?;
        scenario.name = format!("{}/cold{i}", scenario.name);
        misses.push((TraceClass::ColdMiss, request(args, scenario)));
    }
    // Deterministic interleave: one miss after every `stride` hits.
    let mut trace = Vec::with_capacity(hits.len() + misses.len());
    let stride = (hits.len() / misses.len().max(1)).max(1);
    let mut misses = misses.into_iter();
    for (i, hit) in hits.into_iter().enumerate() {
        trace.push(hit);
        if (i + 1) % stride == 0 {
            if let Some(miss) = misses.next() {
                trace.push(miss);
            }
        }
    }
    trace.extend(misses);
    Ok(trace)
}

fn request(args: &Args, scenario: Scenario) -> ScenarioRequest {
    let request = ScenarioRequest::new(scenario);
    match args.deadline_ms {
        Some(ms) => request.with_deadline(Duration::from_millis(ms)),
        None => request,
    }
}

/// One decision path's latency summary. Latencies in milliseconds;
/// percentiles over the served requests of that path (nearest-rank,
/// `ceil(q·n)`-th order statistic).
#[derive(Serialize)]
struct LatencyRow {
    path: &'static str,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

fn latency_row(path: &'static str, latencies: &mut [f64]) -> LatencyRow {
    latencies.sort_by(|a, b| a.total_cmp(b));
    let n = latencies.len();
    let to_ms = 1e3;
    LatencyRow {
        path,
        requests: n,
        p50_ms: nearest_rank(latencies, 0.50) * to_ms,
        p99_ms: nearest_rank(latencies, 0.99) * to_ms,
        p999_ms: nearest_rank(latencies, 0.999) * to_ms,
        mean_ms: if n == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / n as f64 * to_ms
        },
        max_ms: latencies.last().copied().unwrap_or(0.0) * to_ms,
    }
}

#[derive(Serialize)]
struct ConfigOut {
    rate_rps: f64,
    clients: usize,
    workers: usize,
    max_batch: usize,
    linger_ms: u64,
    queue_capacity: usize,
    deadline_ms: MaybeU64,
    hits: usize,
    warm: usize,
    cold: usize,
    persistent_cache: bool,
}

/// `Option<u64>` serialized as the number or `null`.
struct MaybeU64(Option<u64>);

impl Serialize for MaybeU64 {
    fn serialize_json(&self, out: &mut String) {
        match self.0 {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

#[derive(Serialize)]
struct WarmPhase {
    scenarios: usize,
    seconds: f64,
}

#[derive(Serialize)]
struct Throughput {
    offered_rps: f64,
    sustained_rps: f64,
    replay_seconds: f64,
    served: usize,
    errors: usize,
}

#[derive(Serialize)]
struct ServiceOut {
    submitted: u64,
    exact_hits: u64,
    enqueued_groups: u64,
    coalesced_waiters: u64,
    rejected_queue_full: u64,
    shed_waiters: u64,
    shed_groups: u64,
    dispatched_batches: u64,
    dispatched_groups: u64,
    queue_depth_peak: u64,
}

/// Binary vs legacy-JSON record format, measured on the warm phase's
/// persisted surfaces: payload size and decode (restore) time.
#[derive(Serialize)]
struct RecordFormat {
    records: usize,
    json_bytes: usize,
    binary_bytes: usize,
    /// `binary_bytes / json_bytes` — below 1.0 means the binary format
    /// is smaller on disk.
    bytes_ratio: f64,
    json_decode_seconds: f64,
    binary_decode_seconds: f64,
    /// `json_decode / binary_decode` — above 1.0 means binary records
    /// restore faster.
    decode_speedup: f64,
    /// Whether every surface decoded from both formats evaluated
    /// bitwise-identically (surplus payloads compared bit-for-bit).
    roundtrip_bitwise: bool,
}

#[derive(Serialize)]
struct Report {
    mode: &'static str,
    host_threads: usize,
    config: ConfigOut,
    warm_phase: WarmPhase,
    latency: Vec<LatencyRow>,
    throughput: Throughput,
    service: ServiceOut,
    record_format: RecordFormat,
    /// Full registry snapshot at end of replay: serve admission counters,
    /// cache traffic, span histograms for every serving + solve phase.
    metrics: hddm_telemetry::Snapshot,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("serve-bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let demo = ScenarioSet::demo(args.lifespan, args.work_years)?;
    let trace = build_trace(&args, &demo)?;

    // ---- Warm phase: solve the demo sweep into the cache the service
    // will serve hits from. With --cache-dir the surfaces are persisted
    // and the service gets a FRESH handle over the directory, so hits
    // pay (and measure) the record-restore path.
    let warm_cache = match &args.cache_dir {
        Some(dir) => SurfaceCache::open(dir).map_err(|e| format!("--cache-dir: {e}"))?,
        None => SurfaceCache::default(),
    };
    let warm_start = Instant::now();
    let warm_report = run_set(&demo, &warm_cache, &ExecutorConfig::serial())
        .map_err(|e| format!("warm phase failed: {e}"))?;
    if !warm_report.all_converged() {
        return Err("warm phase produced non-converged surfaces".into());
    }
    let warm_phase = WarmPhase {
        scenarios: demo.len(),
        seconds: warm_start.elapsed().as_secs_f64(),
    };

    // ---- Record-format comparison on the freshly solved surfaces.
    let record_format = bench_record_format(&warm_cache, &demo, args.smoke)?;

    let serve_cache = match &args.cache_dir {
        Some(dir) => SurfaceCache::open(dir).map_err(|e| format!("--cache-dir: {e}"))?,
        None => warm_cache.clone(),
    };

    let service = Arc::new(ScenarioService::new(
        serve_cache,
        ServeConfig {
            executor: ExecutorConfig {
                threads: 1,      // solves are batched; concurrency comes from the dispatchers
                cache_dir: None, // the service already holds the cache handle
                ..ExecutorConfig::serial()
            },
            max_batch: args.max_batch,
            queue_capacity: args.queue_capacity,
            linger: Duration::from_millis(args.linger_ms),
            workers: args.workers,
        },
    ));

    println!(
        "serve-bench: mode={} trace={} ({} hit / {} warm / {} cold) rate={:.0} req/s \
         clients={} workers={} max_batch={} linger={}ms cache={}",
        if args.smoke { "smoke" } else { "full" },
        trace.len(),
        args.hits,
        args.warm,
        args.cold,
        args.rate,
        args.clients,
        args.workers,
        args.max_batch,
        args.linger_ms,
        match &args.cache_dir {
            Some(dir) => dir.as_str(),
            None => "in-memory",
        }
    );

    // ---- Open-loop replay: request i is due at start + i/rate,
    // round-robined across client threads.
    let interval = Duration::from_secs_f64(1.0 / args.rate);
    let replay_start = Instant::now() + Duration::from_millis(10); // let clients spawn
    let outcomes: Vec<(TraceClass, Result<hddm_serve::ScenarioResponse, ServeError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|client| {
                    let service = Arc::clone(&service);
                    let slice: Vec<_> = trace
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % args.clients == client)
                        .map(|(i, (class, request))| (i, *class, request.clone()))
                        .collect();
                    scope.spawn(move || {
                        // Submit at the scheduled instants, collect
                        // tickets, then wait — submission never blocks
                        // on a solve, so arrivals stay on schedule.
                        let mut pending = Vec::with_capacity(slice.len());
                        for (i, class, request) in slice {
                            let due = replay_start + interval * i as u32;
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            pending.push((class, service.submit(request)));
                        }
                        pending
                            .into_iter()
                            .map(|(class, submitted)| match submitted {
                                Ok(ticket) => (class, ticket.wait()),
                                Err(e) => (class, Err(e)),
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
    let replay_seconds = (Instant::now() - replay_start).as_secs_f64();

    // ---- Classify by the decision path actually served.
    let mut exact = Vec::new();
    let mut warm = Vec::new();
    let mut cold = Vec::new();
    let mut errors = 0usize;
    let mut hit_misses = 0usize;
    for (class, outcome) in outcomes {
        match outcome {
            Ok(response) => {
                if response.report.steps > 0 && !response.report.converged {
                    return Err(format!("non-converged solve: {:?}", response.report.name));
                }
                if class == TraceClass::Hit && response.kind() != CacheKind::Exact {
                    hit_misses += 1;
                }
                match response.kind() {
                    CacheKind::Exact => exact.push(response.total_seconds),
                    CacheKind::Warm => warm.push(response.total_seconds),
                    CacheKind::Cold => cold.push(response.total_seconds),
                }
            }
            Err(e) => {
                eprintln!("serve-bench: request error: {e}");
                errors += 1;
            }
        }
    }
    let served = exact.len() + warm.len() + cold.len();
    let stats = service.stats();
    let metrics = service.registry().snapshot();
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }

    let latency = vec![
        latency_row("exact-hit", &mut exact),
        latency_row("warm-miss", &mut warm),
        latency_row("cold-miss", &mut cold),
    ];
    for row in &latency {
        println!(
            "  {:<10} {:>4} served: p50 {:>9.3} ms  p99 {:>9.3} ms  p99.9 {:>9.3} ms  \
             max {:>9.3} ms",
            row.path, row.requests, row.p50_ms, row.p99_ms, row.p999_ms, row.max_ms
        );
    }
    println!(
        "  throughput: offered {:.0} req/s, sustained {:.1} req/s over {:.2}s \
         ({} served, {} errors)",
        args.rate,
        served as f64 / replay_seconds.max(1e-12),
        replay_seconds,
        served,
        errors
    );
    println!(
        "  queue: peak depth {}, {} coalesced, {} shed waiter(s), {} shed group(s), \
         {} rejected",
        stats.queue_depth_peak,
        stats.coalesced_waiters,
        stats.shed_waiters,
        stats.shed_groups,
        stats.rejected_queue_full
    );
    println!(
        "  records: binary {} B vs JSON {} B ({:.2}x smaller), decode {:.1}x faster, \
         bitwise={}",
        record_format.binary_bytes,
        record_format.json_bytes,
        1.0 / record_format.bytes_ratio.max(1e-12),
        record_format.decode_speedup,
        record_format.roundtrip_bitwise
    );

    let report = Report {
        mode: if args.smoke { "smoke" } else { "full" },
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        config: ConfigOut {
            rate_rps: args.rate,
            clients: args.clients,
            workers: args.workers,
            max_batch: args.max_batch,
            linger_ms: args.linger_ms,
            queue_capacity: args.queue_capacity,
            deadline_ms: MaybeU64(args.deadline_ms),
            hits: args.hits,
            warm: args.warm,
            cold: args.cold,
            persistent_cache: args.cache_dir.is_some(),
        },
        warm_phase,
        latency,
        throughput: Throughput {
            offered_rps: args.rate,
            sustained_rps: served as f64 / replay_seconds.max(1e-12),
            replay_seconds,
            served,
            errors,
        },
        service: ServiceOut {
            submitted: stats.submitted,
            exact_hits: stats.exact_hits,
            enqueued_groups: stats.enqueued_groups,
            coalesced_waiters: stats.coalesced_waiters,
            rejected_queue_full: stats.rejected_queue_full,
            shed_waiters: stats.shed_waiters,
            shed_groups: stats.shed_groups,
            dispatched_batches: stats.dispatched_batches,
            dispatched_groups: stats.dispatched_groups,
            queue_depth_peak: stats.queue_depth_peak,
        },
        record_format,
        metrics,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    println!("wrote {}", args.out);

    // ---- Gates.
    let mut failed = false;
    // Errors are always fatal unless they are deadline sheds the caller
    // asked for with --deadline-ms.
    if errors > 0 && args.deadline_ms.is_none() {
        eprintln!("FAIL: {errors} request error(s)");
        failed = true;
    }
    if hit_misses > 0 {
        eprintln!(
            "FAIL: {hit_misses} hit-class request(s) were not served as exact hits \
             (was the warm phase over the same cache?)"
        );
        failed = true;
    }
    if let Some(floor_ms) = args.expect_exact_p99_ms {
        let row = &report.latency[0];
        if row.requests == 0 {
            eprintln!("FAIL: --expect-exact-p99-ms set but no exact hits were served");
            failed = true;
        } else if row.p99_ms > floor_ms {
            eprintln!(
                "FAIL: exact-hit p99 {:.3} ms above the {floor_ms} ms ceiling",
                row.p99_ms
            );
            failed = true;
        }
    }
    if !report.record_format.roundtrip_bitwise {
        eprintln!("FAIL: binary/JSON record round trip is not bitwise identical");
        failed = true;
    }
    if let Some(floor) = args.expect_record_speedup {
        if report.record_format.decode_speedup < floor {
            eprintln!(
                "FAIL: binary record decode speedup {:.2}x below the {floor}x floor",
                report.record_format.decode_speedup
            );
            failed = true;
        }
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    println!("serve-bench: all gates passed");
    Ok(ExitCode::SUCCESS)
}

/// Encodes every demo surface in both record formats and times decode
/// (the latency-critical restore direction), verifying bitwise equality
/// of the decoded surplus payloads.
fn bench_record_format(
    cache: &SurfaceCache,
    demo: &ScenarioSet,
    smoke: bool,
) -> Result<RecordFormat, String> {
    let mut surfaces = Vec::new();
    for scenario in &demo.scenarios {
        let hash = scenario_hash(scenario);
        match cache.lookup(hash, ShapeKey::of(scenario), &fingerprint(scenario), false) {
            Lookup::Exact(surface) => surfaces.push(surface),
            _ => return Err(format!("warm phase did not cache {:?}", scenario.name)),
        }
    }
    let encoded: Vec<Vec<u8>> = surfaces.iter().map(|s| persist::encode_record(s)).collect();
    let jsons: Vec<String> = surfaces
        .iter()
        .map(|s| persist::legacy_record_json(s))
        .collect();
    let binary_bytes: usize = encoded.iter().map(Vec::len).sum();
    let json_bytes: usize = jsons.iter().map(String::len).sum();

    // Bitwise check once, outside the timed loops.
    let mut roundtrip_bitwise = true;
    for (surface, (bin, json)) in surfaces.iter().zip(encoded.iter().zip(&jsons)) {
        let from_bin = persist::decode_record(bin).map_err(|e| format!("binary decode: {e}"))?;
        let from_json =
            persist::decode_legacy_record_json(json).map_err(|e| format!("json decode: {e}"))?;
        for decoded in [&from_bin, &from_json] {
            let same = decoded.records.len() == surface.records.len()
                && decoded.records.iter().zip(&surface.records).all(|(a, b)| {
                    a.surplus.len() == b.surplus.len()
                        && a.surplus
                            .iter()
                            .zip(&b.surplus)
                            .all(|(x, y)| x.to_bits() == y.to_bits())
                });
            roundtrip_bitwise &= same;
        }
    }

    // Best-of-rounds decode timing, both formats interleaved so clock
    // noise hits them alike.
    let reps = if smoke { 8 } else { 40 };
    let rounds = if smoke { 3 } else { 5 };
    let mut json_seconds = f64::INFINITY;
    let mut binary_seconds = f64::INFINITY;
    for round in 0..rounds + 1 {
        let start = Instant::now();
        for _ in 0..reps {
            for bin in &encoded {
                persist::decode_record(bin).map_err(|e| format!("binary decode: {e}"))?;
            }
        }
        let bin_elapsed = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..reps {
            for json in &jsons {
                persist::decode_legacy_record_json(json)
                    .map_err(|e| format!("json decode: {e}"))?;
            }
        }
        let json_elapsed = start.elapsed().as_secs_f64();
        if round == 0 {
            continue; // warm-up
        }
        binary_seconds = binary_seconds.min(bin_elapsed);
        json_seconds = json_seconds.min(json_elapsed);
    }

    Ok(RecordFormat {
        records: surfaces.len(),
        json_bytes,
        binary_bytes,
        bytes_ratio: binary_bytes as f64 / json_bytes.max(1) as f64,
        json_decode_seconds: json_seconds,
        binary_decode_seconds: binary_seconds,
        decode_speedup: json_seconds / binary_seconds.max(1e-12),
        roundtrip_bitwise,
    })
}
