//! Regenerates **Fig. 9** (convergence of the time-iteration algorithm):
//! L2 and L∞ error as a function of compute time (left panel) and of
//! iteration step (right panel), with the paper's ε-continuation schedule
//! (iterate at fixed ε until the error stalls, then shrink ε and restart,
//! letting the ASGs grow).
//!
//! ```text
//! cargo run -p hddm-bench --release --bin fig9 [lifespan] [states]
//! ```
//!
//! The economy is the paper's model scaled to laptop size (default
//! `A = 6`, `Ns = 4`; the paper's `A = 60`, `Ns = 16` instance needed
//! 4,096 Cray nodes — see DESIGN.md). The code path is identical.

use hddm_core::{DriverConfig, OlgStep, TimeIteration};
use hddm_kernels::KernelKind;
use hddm_olg::{Calibration, OlgModel};
use hddm_sched::PoolConfig;

fn main() {
    let lifespan: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let states: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let work_years = (lifespan * 3) / 4;

    println!(
        "Fig. 9 — time-iteration convergence (A = {lifespan}, d = {}, Ns = {states})",
        lifespan - 1
    );

    let model = OlgModel::new(Calibration::small(lifespan, work_years, states, 0.04));
    let mut config = DriverConfig {
        kernel: KernelKind::Avx2,
        start_level: 2,
        refine_epsilon: Some(3e-2),
        max_level: 4,
        max_steps: 1,
        tolerance: 0.0,
        pool: PoolConfig {
            threads: 1,
            grain: 4,
        },
        ..Default::default()
    };
    let mut ti = TimeIteration::new(OlgStep::new(model), config.clone());

    // ε-continuation schedule (paper footnote 12): iterate, then restart
    // with a decreased ε, which "slightly adds points to the grid and
    // therefore further lowers the error".
    let schedule = [3e-2, 1e-2, 3e-3];
    let mut cumulative_seconds = 0.0;
    println!();
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>14} {:>16}",
        "iter", "epsilon", "Linf", "L2", "node-seconds", "points/state"
    );
    let mut iter = 0usize;
    for &epsilon in &schedule {
        config.refine_epsilon = Some(epsilon);
        ti.config = config.clone();
        let mut last_sup = f64::INFINITY;
        for _ in 0..12 {
            let report = ti.step();
            cumulative_seconds += report.wall_seconds;
            iter += 1;
            let min_pts = report.points_per_state.iter().min().unwrap();
            let max_pts = report.points_per_state.iter().max().unwrap();
            println!(
                "{:>5} {:>9.0e} {:>12.3e} {:>12.3e} {:>14.2} {:>9}..{:<7}",
                iter,
                epsilon,
                report.sup_change,
                report.l2_change,
                cumulative_seconds,
                min_pts,
                max_pts
            );
            // Stalled at this ε? Move to the next refinement threshold.
            if report.sup_change > 0.98 * last_sup || report.sup_change < 1e-3 * epsilon {
                break;
            }
            last_sup = report.sup_change;
        }
    }

    let spread = ti.policy.points_per_state();
    println!();
    println!(
        "final ASG sizes per state: min {} / max {} (paper at its final ε: 69,026–76,645,\navg 73,874 per state at A = 60 scale)",
        spread.iter().min().unwrap(),
        spread.iter().max().unwrap()
    );

    // Solution quality in the paper's termination metric: "the average
    // error dropped below the satisfactory level of 0.1 percent".
    use rand::SeedableRng;
    let mut oracle = ti.policy.oracle(KernelKind::Avx2);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let path = hddm_olg::euler_errors_on_path(&ti.model.model, &mut oracle, 200, 20, &mut rng);
    let boxed = hddm_olg::euler_errors_on_box(&ti.model.model, &mut oracle, 500, &mut rng);
    println!();
    println!("Euler-equation errors of the converged policy (consumption units):");
    println!(
        "  simulated path (200 periods): mean 10^{:.2}  max 10^{:.2}",
        path.mean_log10, path.max_log10
    );
    println!(
        "  uniform box (500 draws):      mean 10^{:.2}  max 10^{:.2}",
        boxed.mean_log10, boxed.max_log10
    );
    println!(
        "paper's termination criterion: average error below 0.1% (10^-3); path mean {}",
        if path.mean_error < 1e-3 {
            "PASSES"
        } else {
            "does not pass yet"
        }
    );
}
