//! Scenario-engine demo: run a batched multi-calibration sweep through
//! the heterogeneous fleet scheduler with the compressed policy-surface
//! cache, and demonstrate the cache-assisted warm-start win against a
//! cold solve of the same scenario.
//!
//! ```text
//! cargo run --release -p hddm-bench --bin scenarios -- --demo
//! cargo run --release -p hddm-bench --bin scenarios -- --demo \
//!     --lifespan 6 --work-years 4 --mc 8 --threads 4 --json sweep.json
//! # Persistent cache: the second run restores every surface from disk
//! # and performs zero time-iteration steps.
//! cargo run --release -p hddm-bench --bin scenarios -- --demo --cache-dir /tmp/hddm-cache
//! cargo run --release -p hddm-bench --bin scenarios -- --demo --cache-dir /tmp/hddm-cache \
//!     --expect-all-exact
//! ```
//!
//! Exits non-zero if any scenario fails to converge, or — with
//! `--expect-all-exact` — if any scenario was not served as a zero-step
//! exact cache hit (the CI smoke contract for the persistent cache).
//!
//! `--backend gpu` routes every scenario's driver through the batched
//! GPU backend (one shared device pool and engine across the sweep,
//! registered on the cache's telemetry registry — `--metrics-out`
//! snapshots then carry the `hddm_gpu_*` instruments).

use std::process::ExitCode;

use hddm_cluster::{mixed_fleet, Assignment};
use hddm_gpu::{ExecutionBackend, GpuEngine};
use hddm_scenarios::{
    run_set, run_single, CacheKind, EvictionPolicy, ExecutorConfig, Knob, ScenarioSet, SurfaceCache,
};

struct Args {
    lifespan: usize,
    work_years: usize,
    monte_carlo: usize,
    threads: usize,
    json: Option<String>,
    cache_dir: Option<String>,
    cache_max_entries: Option<usize>,
    cache_max_bytes: Option<u64>,
    expect_all_exact: bool,
    metrics_out: Option<String>,
    gpu: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lifespan: 5,
        work_years: 3,
        monte_carlo: 0,
        threads: 1,
        json: None,
        cache_dir: None,
        cache_max_entries: None,
        cache_max_bytes: None,
        expect_all_exact: false,
        metrics_out: None,
        gpu: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--demo" => {} // the default (and only) workload
            "--lifespan" => {
                args.lifespan = value("--lifespan")?
                    .parse()
                    .map_err(|e| format!("--lifespan: {e}"))?
            }
            "--work-years" => {
                args.work_years = value("--work-years")?
                    .parse()
                    .map_err(|e| format!("--work-years: {e}"))?
            }
            "--mc" => {
                args.monte_carlo = value("--mc")?.parse().map_err(|e| format!("--mc: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--cache-max-entries" => {
                args.cache_max_entries = Some(
                    value("--cache-max-entries")?
                        .parse()
                        .map_err(|e| format!("--cache-max-entries: {e}"))?,
                )
            }
            "--cache-max-bytes" => {
                args.cache_max_bytes = Some(
                    value("--cache-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-max-bytes: {e}"))?,
                )
            }
            "--expect-all-exact" => args.expect_all_exact = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--backend" => match value("--backend")?.as_str() {
                "cpu" => args.gpu = false,
                "gpu" => args.gpu = true,
                other => return Err(format!("--backend takes cpu or gpu, not {other:?}")),
            },
            other => return Err(format!("unknown flag {other:?} (try --demo)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("scenarios: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The demo sweep: a 4×4 β×δ grid, optionally extended with seeded
    // Monte-Carlo draws around the grid's base point.
    let mut set = match ScenarioSet::demo(args.lifespan, args.work_years) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("scenarios: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.monte_carlo > 0 {
        let extra = ScenarioSet::monte_carlo(
            &set.scenarios[0],
            args.monte_carlo,
            0xD1CE,
            &[(Knob::Beta, 0.004), (Knob::ProductivityScale, 0.01)],
        )
        .expect("monte carlo jitter is admissible");
        set.scenarios.extend(extra.scenarios);
    }

    let mut config = ExecutorConfig {
        fleet: mixed_fleet(2, 2),
        assignment: Assignment::WorkStealing { chunk: 1 },
        threads: args.threads,
        cache_dir: args.cache_dir.as_ref().map(std::path::PathBuf::from),
        cache_eviction: EvictionPolicy {
            max_entries: args.cache_max_entries,
            max_bytes: args.cache_max_bytes,
        },
        ..ExecutorConfig::serial()
    };
    let cache = match config.open_cache() {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("scenarios: failed to open cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.gpu {
        // One engine (device + surface pool) shared by every scenario,
        // instrumented on the same registry the sweep snapshots.
        config.backend = ExecutionBackend::Gpu(GpuEngine::with_registry(cache.registry()));
    }

    println!(
        "Scenario sweep: {} scenarios (lifespan {}, work years {}), fleet 2x daint + 2x tave, {} host thread(s)\n",
        set.len(),
        args.lifespan,
        args.work_years,
        args.threads
    );
    if let Some(dir) = &args.cache_dir {
        let stats = cache.stats();
        println!(
            "persistent cache at {dir}: {} surface(s) indexed, {} byte(s)\n",
            stats.persisted_entries, stats.persisted_bytes
        );
    }
    let report = match run_set(&set, &cache, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("scenarios: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "  {:<28} {:>5} {:>6} {:>10} {:>7} {:>9}  worker",
        "scenario", "cache", "steps", "sup change", "points", "wall [ms]"
    );
    for s in &report.scenarios {
        println!(
            "  {:<28} {:>5} {:>6} {:>10.2e} {:>7} {:>9.2}  {}",
            s.name.trim_start_matches("demo/"),
            s.cache,
            s.steps,
            s.final_sup_change,
            s.grid_points,
            s.wall_seconds * 1e3,
            s.worker
        );
    }

    println!(
        "\nfleet: planned makespan {:.3} s (imbalance {:.3}, idle {:.1}%), replayed {:.3e} s (imbalance {:.3})",
        report.planned.schedule.makespan,
        report.planned.imbalance,
        100.0 * report.planned.schedule.idle_fraction,
        report.replayed.schedule.makespan,
        report.replayed.imbalance,
    );
    println!(
        "cache: {} cold / {} warm / {} exact; total wall {:.3} s",
        report.cold_solves, report.warm_starts, report.exact_hits, report.total_wall_seconds
    );
    if args.cache_dir.is_some() {
        let s = &report.cache_stats;
        println!(
            "persistent cache: {} surface(s) on disk ({} bytes), {} disk hit(s), \
             {} miss(es), {} eviction(s), {} skipped artifact(s)",
            s.persisted_entries, s.persisted_bytes, s.disk_hits, s.misses, s.evictions, s.skipped
        );
    }

    // Warm-start demonstration: re-solve one warm-started scenario cold.
    if let Some(warm) = report.scenarios.iter().find(|s| s.cache == CacheKind::Warm) {
        let scenario = set
            .scenarios
            .iter()
            .find(|s| s.name == warm.name)
            .expect("warm scenario is in the set");
        match run_single(scenario, &SurfaceCache::default(), &config) {
            Ok(cold) if warm.steps < cold.steps => println!(
                "warm-start win: {:?} solved in {} steps warm vs {} steps cold",
                warm.name, warm.steps, cold.steps
            ),
            Ok(cold) => println!(
                "warm start of {:?}: {} steps vs {} cold (no win this draw; \
                 concurrent sweeps pick timing-dependent warm sources)",
                warm.name, warm.steps, cold.steps
            ),
            Err(e) => eprintln!("cold re-solve failed: {e}"),
        }
    }

    if let Some(path) = &args.metrics_out {
        // The sweep routed its solves through the cache's registry, so
        // the snapshot carries both cache traffic and driver phase spans.
        let snapshot = cache.registry().snapshot();
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("scenarios: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics snapshot written to {path}");
    }

    if let Some(path) = &args.json {
        if let Err(e) = report.save(path) {
            eprintln!("scenarios: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }

    if args.expect_all_exact {
        let solved: Vec<&str> = report
            .scenarios
            .iter()
            .filter(|s| s.cache != CacheKind::Exact || s.steps != 0)
            .map(|s| s.name.as_str())
            .collect();
        if !solved.is_empty() {
            eprintln!(
                "scenarios: --expect-all-exact violated: {} of {} scenarios were \
                 not zero-step exact cache hits: {solved:?}",
                solved.len(),
                report.scenarios.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "persistent-cache contract holds: all {} scenarios served as zero-step \
             exact hits",
            report.scenarios.len()
        );
    }

    if !report.all_converged() {
        let failed: Vec<&str> = report
            .scenarios
            .iter()
            .filter(|s| !s.converged)
            .map(|s| s.name.as_str())
            .collect();
        eprintln!("scenarios: NON-CONVERGED: {failed:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
