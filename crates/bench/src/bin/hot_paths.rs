//! Hot-path microbenchmarks: single-point vs **batched** interpolation
//! and the rebuild-per-level vs **incremental** surplus path — the two
//! optimizations of the batched interpolation engine — written to a
//! machine-readable `BENCH_hotpaths.json` that seeds the repo's bench
//! trajectory.
//!
//! ```text
//! cargo run --release -p hddm-bench --bin hot-paths -- \
//!     [--smoke] [--out BENCH_hotpaths.json] [--expect-speedup 2.0] \
//!     [--expect-gpu-speedup 2.0] [--threads N]
//! ```
//!
//! `--smoke` shrinks repetitions (and drops the 300k case) so CI finishes
//! in seconds; `--expect-speedup X` exits non-zero unless every batched
//! interpolation measurement at `npts ≥ 64` reaches `X ×` the
//! single-point points/sec — the acceptance gate on the batch engine.
//! `--expect-gpu-speedup X` applies the same `npts ≥ 64` floor to the
//! GPU rows: modeled device points/sec (`hddm_gpu::interpolate_block`,
//! P100 roofline, launch latency and PCIe included) over the measured
//! single-point host points/sec. `--threads N` overrides the detected
//! parallelism for the threaded batch rows, so the mt kernel is
//! exercised (and recorded, rather than `"skipped"`) even on hosts that
//! report a single core.

use std::time::Instant;

use serde::Serialize;

use hddm_asg::{refine_frontier, regular_grid, RefineConfig, SparseGrid, SurplusNorm};
use hddm_bench::{random_points, synthetic_surpluses, NDOFS};
use hddm_compress::{builds_total, CompressedGrid};
use hddm_core::IncrementalHierarchizer;
use hddm_gpu::{interpolate_block, Device, LaunchOptions};
use hddm_kernels::{batch, CompressedState, KernelKind, PointBlock, Scratch, VectorIsa};

/// The threaded-batch measurement of a row. `Skipped` (serialized as the
/// string `"skipped"`) means the measurement did not run — single-thread
/// host, or a block too small to split — and can never be mistaken for a
/// measured 0 pts/s.
enum MtThroughput {
    Skipped,
    Measured(f64),
}

impl Serialize for MtThroughput {
    fn serialize_json(&self, out: &mut String) {
        match self {
            MtThroughput::Skipped => serde::write_json_string("skipped", out),
            MtThroughput::Measured(pps) => pps.serialize_json(out),
        }
    }
}

/// One interpolation measurement: the same `npts` points evaluated
/// one-at-a-time and as one block.
#[derive(Serialize)]
struct InterpolationRow {
    case: String,
    grid_points: usize,
    ndofs: usize,
    kernel: &'static str,
    npts: usize,
    /// Points per second through the single-point kernel.
    single_pps: f64,
    /// Points per second through `interpolate_batch`.
    batch_pps: f64,
    /// Points per second through the threaded batch kernel, or
    /// `"skipped"` when the host or block cannot exercise it.
    batch_mt_pps: MtThroughput,
    /// `batch_pps / single_pps`.
    speedup: f64,
    /// Modeled device points per second through the GPU backend
    /// (`interpolate_block` on the P100 device model: launch latency +
    /// PCIe point/result transfers + roofline kernel time per 64-point
    /// chunk; surface upload excluded — the pool's one-time cost).
    gpu_pps: f64,
    /// Simulated kernel launches for the block (one per 64-point chunk).
    gpu_launches: usize,
    /// Achieved occupancy of the launches, in `[0, 1]`.
    gpu_occupancy: f64,
    /// `gpu_pps / single_pps` — modeled device vs measured host.
    gpu_speedup: f64,
}

/// The incremental-surplus measurement: one adaptive grid construction,
/// hierarchized level by level.
#[derive(Serialize)]
struct IncrementalRow {
    dim: usize,
    ndofs: usize,
    levels: usize,
    grid_points: usize,
    /// Seconds with the old algorithm: recompress + reorder + evaluate
    /// point-by-point per level group.
    rebuild_seconds: f64,
    /// Seconds through `IncrementalHierarchizer` (extend + batch).
    incremental_seconds: f64,
    speedup: f64,
    /// Compression-pipeline runs each variant performed (the incremental
    /// path must not compress at all during construction).
    compressions_rebuild: usize,
    compressions_incremental: usize,
}

#[derive(Serialize)]
struct Host {
    avx: bool,
    avx2_fma: bool,
    avx512f: bool,
    threads: usize,
}

#[derive(Serialize)]
struct Report {
    mode: &'static str,
    host: Host,
    interpolation: Vec<InterpolationRow>,
    incremental: IncrementalRow,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpaths.json".into());
    let expect_speedup: Option<f64> = flag_value(&args, "--expect-speedup")
        .map(|v| v.parse().expect("--expect-speedup takes a number"));
    let expect_gpu_speedup: Option<f64> = flag_value(&args, "--expect-gpu-speedup")
        .map(|v| v.parse().expect("--expect-gpu-speedup takes a number"));

    let threads = match flag_value(&args, "--threads") {
        Some(v) => {
            let n: usize = v.parse().expect("--threads takes a count ≥ 1");
            assert!(n >= 1, "--threads takes a count ≥ 1");
            n
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let host = Host {
        avx: VectorIsa::Avx.native(),
        avx2_fma: VectorIsa::Avx2.native(),
        avx512f: VectorIsa::Avx512.native(),
        threads,
    };
    println!(
        "hot-paths: mode={} avx={} avx2+fma={} avx512f={} threads={}",
        if smoke { "smoke" } else { "full" },
        host.avx,
        host.avx2_fma,
        host.avx512f,
        host.threads
    );

    let mut interpolation = Vec::new();
    let cases: &[(&str, u8)] = if smoke {
        &[("7k", 3)]
    } else {
        &[("7k", 3), ("300k", 4)]
    };
    let block_sizes: &[usize] = if smoke {
        &[1, 2, 3, 7, 64]
    } else {
        &[1, 2, 3, 7, 64, 256]
    };
    for &(name, level) in cases {
        let grid = regular_grid(59, level);
        let surplus = synthetic_surpluses(&grid, NDOFS, 7);
        let state = CompressedState::new(&grid, &surplus, NDOFS);
        println!("case {name}: {} grid points", grid.len());
        for &npts in block_sizes {
            let row = bench_interpolation(name, &state, npts, smoke, threads);
            println!(
                "  npts={:4}  single {:>12.0} pts/s  batch {:>12.0} pts/s  speedup {:.2}x  \
                 gpu {:>12.0} pts/s ({} launches, occ {:.2}) gpu-speedup {:.2}x",
                npts,
                row.single_pps,
                row.batch_pps,
                row.speedup,
                row.gpu_pps,
                row.gpu_launches,
                row.gpu_occupancy,
                row.gpu_speedup
            );
            interpolation.push(row);
        }
    }

    let incremental = bench_incremental(smoke);
    println!(
        "incremental surpluses: {} points over {} levels — rebuild {:.3}s \
         ({} compressions) vs incremental {:.3}s ({} compressions), speedup {:.2}x",
        incremental.grid_points,
        incremental.levels,
        incremental.rebuild_seconds,
        incremental.compressions_rebuild,
        incremental.incremental_seconds,
        incremental.compressions_incremental,
        incremental.speedup
    );

    let report = Report {
        mode: if smoke { "smoke" } else { "full" },
        host,
        interpolation,
        incremental,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if let Some(floor) = expect_speedup {
        let mut failed = false;
        for row in &report.interpolation {
            if row.npts >= 64 && row.speedup < floor {
                eprintln!(
                    "FAIL: {} npts={} speedup {:.2}x below the {floor}x floor",
                    row.case, row.npts, row.speedup
                );
                failed = true;
            }
            // The threaded kernel must clear the same floor wherever it
            // was actually measured (threads > 1 and a splittable block)
            // — a silent mt regression must not hide behind the
            // single-threaded gate.
            if let MtThroughput::Measured(mt_pps) = row.batch_mt_pps {
                let mt_speedup = mt_pps / row.single_pps.max(1e-12);
                if row.npts >= 64 && mt_speedup < floor {
                    eprintln!(
                        "FAIL: {} npts={} mt speedup {:.2}x below the {floor}x floor",
                        row.case, row.npts, mt_speedup
                    );
                    failed = true;
                }
            }
            // Below the dispatch crossover the batch entry point routes
            // through the single-point kernel, so small blocks must
            // never regress (0.95 leaves room for timer noise around a
            // true ratio of 1.0). The crossover is grid-size-aware: on
            // ≥ 100k-node grids blocks of 2 also route single-point.
            if row.npts < batch::batch_crossover(row.grid_points) && row.speedup < 0.95 {
                eprintln!(
                    "FAIL: {} npts={} speedup {:.2}x — small blocks must not \
                     regress through the batch entry point",
                    row.case, row.npts, row.speedup
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("all gated measurements clear the {floor}x floor");
    }

    if let Some(floor) = expect_gpu_speedup {
        let mut failed = false;
        for row in &report.interpolation {
            if row.npts >= 64 && row.gpu_speedup < floor {
                eprintln!(
                    "FAIL: {} npts={} gpu speedup {:.2}x below the {floor}x floor",
                    row.case, row.npts, row.gpu_speedup
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("all gpu rows at npts >= 64 clear the {floor}x floor");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} takes a value"))
            .clone()
    })
}

/// Times `npts` evaluations through the single-point kernel and through
/// one batched call, repeated until the slower side accumulates enough
/// wall clock to trust the ratio.
fn bench_interpolation(
    case: &str,
    state: &CompressedState,
    npts: usize,
    smoke: bool,
    threads: usize,
) -> InterpolationRow {
    let kernel = KernelKind::Avx2; // the driver default; lane-fallback off x86
    let dim = state.grid.dim();
    let ndofs = state.ndofs;
    let rows = random_points(dim, npts, 0xB10C + npts as u64);
    let block = PointBlock::from_rows(dim, &rows);
    let reps = if smoke { 4 } else { 16 };
    let rounds = if smoke { 4 } else { 6 };

    let mut scratch = Scratch::default();
    let mut out_single = vec![0.0; ndofs];
    let mut out_batch = vec![0.0; npts * ndofs];

    // Interleave the two measurements and keep each side's best round:
    // frequency scaling and scheduler noise hit both sides alike instead
    // of whichever happened to run first.
    let mut single_seconds = f64::INFINITY;
    let mut batch_seconds = f64::INFINITY;
    let mut mt_seconds = f64::INFINITY;
    let measure_mt = npts >= hddm_kernels::BATCH_CHUNK * 2 && threads > 1;
    for round in 0..rounds + 1 {
        let start = Instant::now();
        for _ in 0..reps {
            for p in 0..npts {
                kernel.evaluate_compressed(
                    state,
                    &rows[p * dim..(p + 1) * dim],
                    &mut scratch,
                    &mut out_single,
                );
            }
        }
        let single = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..reps {
            kernel.evaluate_compressed_batch(state, &block, &mut scratch, &mut out_batch);
        }
        let batch = start.elapsed().as_secs_f64();
        if round == 0 {
            // Sanity, while `out_batch` still holds the same-kernel
            // batch result (the mt rounds below overwrite it with the
            // AVX-512-path output, which is a *different* kernel and
            // only tolerance-equal to AVX2): the batch must reproduce
            // the single-point values exactly.
            assert_eq!(
                &out_batch[(npts - 1) * ndofs..],
                &out_single[..],
                "batch/single mismatch on the last point"
            );
            continue; // warm-up round: caches, page faults, scratch sizing
        }
        single_seconds = single_seconds.min(single);
        batch_seconds = batch_seconds.min(batch);
        if measure_mt {
            let start = Instant::now();
            for _ in 0..reps {
                batch::interpolate_batch_avx512_mt(state, &block, threads, &mut out_batch);
            }
            mt_seconds = mt_seconds.min(start.elapsed().as_secs_f64());
        }
    }

    // The GPU row is modeled, not measured: the device model's cost
    // report is deterministic, so one evaluation suffices. The values it
    // produces must match the scalar batch path bitwise (the golden
    // suite's contract, re-checked here on the bench grids).
    let device = Device::p100();
    let options = LaunchOptions::default();
    let mut out_gpu = vec![0.0; npts * ndofs];
    let timing = interpolate_block(&device, &options, state, &block, &mut scratch, &mut out_gpu)
        .expect("bench grids launch cleanly on the P100 model");
    batch::interpolate_batch(state, &block, &mut scratch, &mut out_batch);
    assert_eq!(out_gpu, out_batch, "gpu/scalar-batch mismatch");

    let total = (reps * npts) as f64;
    InterpolationRow {
        case: case.into(),
        grid_points: state.grid.nno(),
        ndofs,
        kernel: kernel.name(),
        npts,
        single_pps: total / single_seconds.max(1e-12),
        batch_pps: total / batch_seconds.max(1e-12),
        batch_mt_pps: if measure_mt {
            MtThroughput::Measured(total / mt_seconds.max(1e-12))
        } else {
            MtThroughput::Skipped
        },
        speedup: single_seconds / batch_seconds.max(1e-12),
        gpu_pps: npts as f64 / timing.modeled_seconds.max(1e-12),
        gpu_launches: timing.launches,
        gpu_occupancy: timing.occupancy,
        gpu_speedup: (npts as f64 / timing.modeled_seconds.max(1e-12))
            / (total / single_seconds.max(1e-12)).max(1e-12),
    }
}

/// Builds one adaptive grid level by level on a kinked target function
/// and hierarchizes it twice: with the pre-batch algorithm (recompress
/// the partial grid per level group) and with the incremental
/// hierarchizer. Both produce the same interpolant (≤ 1e-12 by the core
/// test suite); here only time and compression counts are compared.
fn bench_incremental(smoke: bool) -> IncrementalRow {
    let dim = if smoke { 6 } else { 8 };
    let ndofs = if smoke { 32 } else { 64 };
    let max_level = if smoke { 5 } else { 6 };
    let f = |x: &[f64], out: &mut [f64]| {
        for (k, o) in out.iter_mut().enumerate() {
            *o = (x[0] - 0.3).abs() * (k as f64 * 0.1 + 1.0)
                + ((x[1] - 0.6) * 8.0).tanh() * 0.5
                + x.iter().skip(2).map(|v| v * v).sum::<f64>();
        }
    };
    let config = RefineConfig {
        epsilon: if smoke { 5e-4 } else { 2e-4 },
        max_level,
        norm: SurplusNorm::MaxAbs,
    };

    // Pass 1: discover the level-by-level construction (grid + frontiers
    // + solved values), so both hierarchization variants replay the
    // identical workload.
    let mut grid = regular_grid(dim, 2);
    let mut frontier: Vec<u32> = (0..grid.len() as u32).collect();
    let mut frontiers: Vec<Vec<u32>> = Vec::new();
    let mut solved_batches: Vec<Vec<f64>> = Vec::new();
    let mut surpluses: Vec<f64> = Vec::new();
    {
        let mut hier = IncrementalHierarchizer::new(KernelKind::Avx2, dim, ndofs);
        let mut unit = vec![0.0; dim];
        loop {
            let mut solved = vec![0.0; frontier.len() * ndofs];
            for (i, &p) in frontier.iter().enumerate() {
                grid.unit_point_of(p as usize, &mut unit);
                f(&unit, &mut solved[i * ndofs..(i + 1) * ndofs]);
            }
            let new = hier.extend(&grid, &frontier, &solved);
            surpluses.extend_from_slice(&new);
            frontiers.push(frontier.clone());
            solved_batches.push(solved);
            let report = refine_frontier(&mut grid, &surpluses, ndofs, &frontier, &config);
            if report.new_nodes.is_empty() {
                break;
            }
            frontier = report.new_nodes;
        }
    }

    // The first frontier must be hierarchized against the start-level
    // grid (its dense ids are a prefix of the final grid's).
    let start_grid = regular_grid(dim, 2);

    // Pass 2: time the old rebuild-per-group algorithm.
    let before_rebuild = builds_total();
    let start = Instant::now();
    let rebuilt = hierarchize_with_rebuilds(&start_grid, &grid, &frontiers, &solved_batches, ndofs);
    let rebuild_seconds = start.elapsed().as_secs_f64();
    let compressions_rebuild = builds_total() - before_rebuild;

    // Pass 3: time the incremental hierarchizer on the same workload.
    let before_inc = builds_total();
    let start = Instant::now();
    let mut hier = IncrementalHierarchizer::new(KernelKind::Avx2, dim, ndofs);
    let mut incremental: Vec<f64> = Vec::new();
    for (level, (frontier, solved)) in frontiers.iter().zip(&solved_batches).enumerate() {
        let g = if level == 0 { &start_grid } else { &grid };
        let new = hier.extend(g, frontier, solved);
        incremental.extend_from_slice(&new);
    }
    let incremental_seconds = start.elapsed().as_secs_f64();
    let compressions_incremental = builds_total() - before_inc;

    // Sanity: same surpluses to golden tolerance.
    for (a, b) in rebuilt.iter().zip(&incremental) {
        assert!((a - b).abs() < 1e-10, "rebuild/incremental mismatch");
    }

    IncrementalRow {
        dim,
        ndofs,
        levels: frontiers.len(),
        grid_points: grid.len(),
        rebuild_seconds,
        incremental_seconds,
        speedup: rebuild_seconds / incremental_seconds.max(1e-12),
        compressions_rebuild: compressions_rebuild as usize,
        compressions_incremental: compressions_incremental as usize,
    }
}

/// The pre-batch `incremental_surpluses` algorithm, reproduced verbatim
/// for comparison: per ascending-level-sum group, rebuild the partial
/// grid's compression, reorder the partial surpluses, and evaluate each
/// group point through the single-point kernel.
fn hierarchize_with_rebuilds(
    start_grid: &SparseGrid,
    grid: &SparseGrid,
    frontiers: &[Vec<u32>],
    solved_batches: &[Vec<f64>],
    ndofs: usize,
) -> Vec<f64> {
    let dim = grid.dim();
    let kernel = KernelKind::Avx2;
    let mut all: Vec<f64> = Vec::new();
    let mut partial_grid = SparseGrid::new(dim);
    let mut partial_surplus: Vec<f64> = Vec::new();
    let mut scratch = Scratch::default();
    let mut unit = vec![0.0; dim];
    let mut interp = vec![0.0; ndofs];

    for (frontier, solved) in frontiers.iter().zip(solved_batches) {
        if partial_surplus.is_empty() {
            let mut values = solved.clone();
            hddm_asg::hierarchize(start_grid, &mut values, ndofs);
            all.extend_from_slice(&values);
            for &p in frontier {
                partial_grid.insert(grid.node(p as usize).clone());
            }
            partial_surplus.extend_from_slice(&values);
            continue;
        }
        let mut order: Vec<usize> = (0..frontier.len()).collect();
        let level_of = |pos: usize| grid.node(frontier[pos] as usize).level_sum(dim);
        order.sort_by_key(|&pos| level_of(pos));
        let mut out = vec![0.0; frontier.len() * ndofs];
        let mut at = 0usize;
        while at < order.len() {
            let group_level = level_of(order[at]);
            let group_end = order[at..]
                .iter()
                .position(|&pos| level_of(pos) != group_level)
                .map(|offset| at + offset)
                .unwrap_or(order.len());
            let cg = CompressedGrid::build(&partial_grid);
            let state = CompressedState::from_parts(
                cg.clone(),
                cg.reorder_rows(&partial_surplus, ndofs),
                ndofs,
            );
            for &pos in &order[at..group_end] {
                let p = frontier[pos] as usize;
                grid.unit_point_of(p, &mut unit);
                kernel.evaluate_compressed(&state, &unit, &mut scratch, &mut interp);
                for k in 0..ndofs {
                    out[pos * ndofs + k] = solved[pos * ndofs + k] - interp[k];
                }
            }
            for &pos in &order[at..group_end] {
                let p = frontier[pos] as usize;
                partial_grid.insert(grid.node(p).clone());
                partial_surplus.extend_from_slice(&out[pos * ndofs..(pos + 1) * ndofs]);
            }
            at = group_end;
        }
        all.extend_from_slice(&out);
    }
    all
}
