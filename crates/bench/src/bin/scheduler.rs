//! Ablation of the paper's third contribution: the "hybrid cluster
//! oriented work-preempting scheduler ... which evenly distributes the
//! time iteration workload onto available CPU cores and accelerators".
//!
//! Part 1 simulates a mixed "Piz Daint"(CPU+GPU) + "Grand Tave"(KNL)
//! fleet under three assignment policies and sweeps the stealing chunk
//! size. Part 2 runs the *real* work-stealing pool (`hddm-sched`) on this
//! host with straggler-shaped task costs and reports the balance it
//! achieves against a static split.
//!
//! ```text
//! cargo run -p hddm-bench --release --bin scheduler [points]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use hddm_cluster::{fluid_bound, mixed_fleet, schedule, straggler_costs, Assignment};
use hddm_sched::{parallel_for, PoolConfig};

fn main() {
    let points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    // ---------------- Part 1: fleet simulation ----------------
    let fleet = mixed_fleet(8, 8);
    let costs = straggler_costs(points, 0.05, 0.8, 42);
    let bound = fluid_bound(&fleet, &costs);

    println!("Work-preempting scheduler ablation");
    println!(
        "fleet: 8x daint (25.0x ref) + 8x tave (12.5x ref); {points} points, straggler tail 10% @ ~4.6x"
    );
    println!("fluid (perfect-balance) bound: {bound:.2} s\n");
    println!("  policy                      makespan [s]   vs bound   mean idle");
    for (label, policy) in [
        ("static equal split", Assignment::StaticEqual),
        ("static speed-proportional", Assignment::StaticProportional),
        (
            "work stealing, chunk 512",
            Assignment::WorkStealing { chunk: 512 },
        ),
        (
            "work stealing, chunk 64",
            Assignment::WorkStealing { chunk: 64 },
        ),
        (
            "work stealing, chunk 8",
            Assignment::WorkStealing { chunk: 8 },
        ),
    ] {
        let r = schedule(&fleet, &costs, policy);
        println!(
            "  {label:<27} {:>10.2}   {:>7.3}x   {:>7.1}%",
            r.makespan,
            r.makespan / bound,
            100.0 * r.idle_fraction
        );
    }

    // Chunk-size sweep: the quantization knee.
    println!("\n  stealing chunk sweep (makespan / bound):");
    print!("   ");
    for chunk in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let r = schedule(&fleet, &costs, Assignment::WorkStealing { chunk });
        print!(" {chunk}:{:.3}", r.makespan / bound);
    }
    println!();

    // ---------------- Part 2: the real pool on this host ----------------
    // Static split = one giant chunk per worker (grain = n/threads);
    // stealing = fine grain. Work = spin for a cost drawn from the same
    // straggler distribution. Report per-worker item balance.
    let n = 2_000usize;
    let threads = 4usize;
    let task_costs = straggler_costs(n, 20e-6, 0.8, 7);
    let spun = AtomicU64::new(0);
    let spin = |seconds: f64| {
        let t0 = std::time::Instant::now();
        let mut x = 0u64;
        while t0.elapsed().as_secs_f64() < seconds {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(x);
        }
        // ORDERING: Relaxed — keeps the spin loop's result observable to
        // the optimizer; the count itself is never read for ordering.
        spun.fetch_add(1, Ordering::Relaxed);
    };

    println!("\nreal pool on this host ({threads} workers, {n} tasks, ~20 us mean):");
    for (label, grain) in [
        ("static split (grain n/T)", n.div_ceil(threads)),
        ("work stealing (grain 4)", 4usize),
    ] {
        let t0 = std::time::Instant::now();
        let stats = parallel_for(n, &PoolConfig { threads, grain }, |i| spin(task_costs[i]));
        let wall = t0.elapsed().as_secs_f64();
        let max_items = stats.items_per_worker.iter().max().copied().unwrap_or(0);
        let min_items = stats.items_per_worker.iter().min().copied().unwrap_or(0);
        println!(
            "  {label:<27} wall {wall:>7.3} s   items/worker {:?} (spread {})",
            stats.items_per_worker,
            max_items - min_items
        );
    }
    println!(
        "\n(single-core hosts timeshare the workers, so wall times converge; the\n\
         items-per-worker spread still shows stealing's balancing behaviour)"
    );
}
