//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Storage scheme** — dense matrix (`gold`, [23]) vs hash table
//!    ([22]) vs the paper's compressed chains, the three ASG storage
//!    options Sec. IV-B opens with.
//! 2. **Surplus matrix reordering** — chains with reordered (streaming)
//!    surplus rows vs the same chains gathering rows in original grid
//!    order.
//! 3. **Zero-skip early exit** — the `goto zero` shortcut of Fig. 5 on/off.
//! 4. **GPU launch geometry** — block-size sweep around the paper's 128
//!    and shared-memory vs global-memory `xpv` staging (roofline model).
//!
//! ```text
//! cargo run -p hddm-bench --release --bin ablations [points-per-case]
//! ```

use hddm_bench::{random_points, synthetic_surpluses, time_avg, KernelCase, NDOFS};
use hddm_compress::CompressedGrid;
use hddm_gpu::{CudaInterpolator, Device, LaunchOptions};
use hddm_kernels::{gold, hashtab, x86, HashState, Scratch};

fn main() {
    let points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    println!("Ablation studies (ndofs = {NDOFS}, avg over {points} random points)");

    for (name, level) in [("7k", 3u8), ("300k", 4u8)] {
        println!("\nbuilding \"{name}\" case (level {level})...");
        let case = KernelCase::build(name, level, NDOFS);
        let surplus = synthetic_surpluses(&case.grid, NDOFS, 0xA5A5 + level as u64);
        let hashed = HashState::new(&case.grid, &surplus, NDOFS);
        let cg = CompressedGrid::build(&case.grid);
        let xs = random_points(59, points, 0xBEEF);
        let mut out = vec![0.0; NDOFS];
        let mut scratch = Scratch::default();
        let mut xpv = vec![0.0; cg.xps().len()];

        println!(
            "  \"{name}\": {} points, {} level sets, nfreq {}",
            case.grid.len(),
            hashed.num_level_sets(),
            cg.nfreq()
        );

        // --- Ablation 1: storage scheme.
        let mut iter = xs.chunks_exact(59).cycle();
        let t_gold = time_avg(points, || {
            gold::interpolate(&case.dense, iter.next().unwrap(), &mut out);
        });
        let mut iter = xs.chunks_exact(59).cycle();
        let t_hash = time_avg(points, || {
            hashtab::interpolate(&hashed, iter.next().unwrap(), &mut out);
        });
        let mut iter = xs.chunks_exact(59).cycle();
        let t_chain = time_avg(points, || {
            x86::interpolate(
                &case.compressed,
                iter.next().unwrap(),
                &mut scratch,
                &mut out,
            );
        });
        println!("\n  storage scheme              time [sec]    vs dense");
        for (label, t) in [
            ("dense matrix (gold, [23])", t_gold),
            ("hash table ([22])", t_hash),
            ("compressed chains (ours)", t_chain),
        ] {
            println!("  {label:<27} {t:>10.6}   {:>6.2}x", t_gold / t);
        }

        // --- Ablation 2: surplus reordering.
        let reordered = cg.reorder_rows(&surplus, NDOFS);
        let mut iter = xs.chunks_exact(59).cycle();
        let t_ordered = time_avg(points, || {
            cg.interpolate_scalar(&reordered, NDOFS, iter.next().unwrap(), &mut xpv, &mut out);
        });
        let mut iter = xs.chunks_exact(59).cycle();
        let t_gather = time_avg(points, || {
            cg.interpolate_scalar_unordered(
                &surplus,
                NDOFS,
                iter.next().unwrap(),
                &mut xpv,
                &mut out,
            );
        });
        println!("\n  surplus rows                time [sec]");
        println!("  reordered (streaming)       {t_ordered:>10.6}");
        println!(
            "  grid order (gathered)       {t_gather:>10.6}   reordering gain: {:.2}x",
            t_gather / t_ordered
        );

        // --- Ablation 3: zero-skip early exit.
        let mut iter = xs.chunks_exact(59).cycle();
        let t_skip = time_avg(points, || {
            x86::interpolate(
                &case.compressed,
                iter.next().unwrap(),
                &mut scratch,
                &mut out,
            );
        });
        let mut iter = xs.chunks_exact(59).cycle();
        let t_noskip = time_avg(points, || {
            x86::interpolate_no_skip(
                &case.compressed,
                iter.next().unwrap(),
                &mut scratch,
                &mut out,
            );
        });
        println!("\n  chain walk                  time [sec]");
        println!("  with zero-skip (Fig. 5)     {t_skip:>10.6}");
        println!(
            "  without early exit          {t_noskip:>10.6}   skip gain: {:.2}x",
            t_noskip / t_skip
        );

        // --- Ablation 4: GPU launch geometry (roofline model).
        println!("\n  GPU launch (P100 model)     modeled [sec]     flops      dram [MB]  blocks");
        let x0: Vec<f64> = xs[..59].to_vec();
        for (label, opts) in [
            (
                "block  32, shared xpv",
                LaunchOptions {
                    block_size: 32,
                    stage_xpv_shared: true,
                },
            ),
            ("block 128, shared xpv", LaunchOptions::default()),
            (
                "block 256, shared xpv",
                LaunchOptions {
                    block_size: 256,
                    stage_xpv_shared: true,
                },
            ),
            (
                "block 512, shared xpv",
                LaunchOptions {
                    block_size: 512,
                    stage_xpv_shared: true,
                },
            ),
            (
                "block 128, global xpv",
                LaunchOptions {
                    block_size: 128,
                    stage_xpv_shared: false,
                },
            ),
        ] {
            let gpu = CudaInterpolator::with_options(Device::p100(), &case.compressed, opts)
                .expect("launch");
            let t = gpu.interpolate(&x0, &mut out);
            println!(
                "  {label:<27} {:>10.6}   {:>10.3e}  {:>8.2}  {:>6}",
                t.modeled_seconds,
                t.flops,
                t.dram_bytes / 1e6,
                t.blocks
            );
        }
    }

    println!("\nReading: the compressed chains beat both incumbent storage schemes, and");
    println!("the Fig. 5 zero-skip early exit is the dominant share of the chain-walk win.");
    println!("The surplus reordering shows little effect on this single-socket host —");
    println!("its target is the many-thread / GPU memory systems of the paper's nodes,");
    println!("where scattered row gathers serialize on DRAM (cf. the global-xpv row of");
    println!("the device model, which pays uncoalesced transactions for the same reason).");
}
