//! Sweep diagnostics: per-scenario solve telemetry plus fleet-level
//! scheduling summaries, serialized to JSON through the serde shim
//! (bit-exact `f64`, the checkpoint convention).

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use hddm_cluster::ScheduleResult;

use crate::cache::{CacheStats, CachedSurface};
use crate::hash::HashId;

/// How a scenario's solve interacted with the policy-surface cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKind {
    /// Solved from the constant steady-state guess.
    Cold,
    /// Warm started from a nearby cached surface.
    Warm,
    /// Identical scenario already solved; surface reused verbatim.
    Exact,
}

impl CacheKind {
    /// The JSON/display spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheKind::Cold => "cold",
            CacheKind::Warm => "warm",
            CacheKind::Exact => "exact",
        }
    }
}

impl std::fmt::Display for CacheKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Manual serde impls: the offline serde_derive shim only expands named
// structs, so the enum serializes as its display string by hand.
impl Serialize for CacheKind {
    fn serialize_json(&self, out: &mut String) {
        serde::write_json_string(self.as_str(), out);
    }
}

impl Deserialize for CacheKind {
    fn deserialize_json(v: &serde::value::Value) -> Result<Self, String> {
        match String::deserialize_json(v)?.as_str() {
            "cold" => Ok(CacheKind::Cold),
            "warm" => Ok(CacheKind::Warm),
            "exact" => Ok(CacheKind::Exact),
            other => Err(format!("unknown cache kind {other:?}")),
        }
    }
}

/// One scenario's solve telemetry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario display name.
    pub name: String,
    /// Deterministic content hash (the cache key). Serialized as a
    /// fixed-width hex string: JSON numbers above 2⁵³ lose precision in
    /// `f64`-based readers, which would corrupt persisted cache keys.
    pub hash: HashId,
    /// Time-iteration steps executed (0 for an exact cache hit).
    pub steps: usize,
    /// Whether the final sup policy change beat the tolerance.
    pub converged: bool,
    /// Final `‖p − pnext‖_∞`.
    pub final_sup_change: f64,
    /// Point solves that fell back after solver failure, summed over
    /// steps.
    pub solver_failures: usize,
    /// Total grid points of the final policy (summed over states).
    pub grid_points: usize,
    /// Wall-clock seconds for this scenario.
    pub wall_seconds: f64,
    /// Cache interaction.
    pub cache: CacheKind,
    /// Hash of the cached scenario a warm start came from (`None` for
    /// cold solves and exact hits).
    pub warm_source: Option<HashId>,
    /// Name of the fleet worker the scenario was assigned to.
    pub worker: String,
}

impl ScenarioReport {
    /// The report of an exact cache hit: zero time-iteration steps, the
    /// cached surface *is* the answer. Shared by the batch executor and
    /// the serving front-end so both describe a hit identically. The
    /// `worker` attribution is left empty for the caller to fill.
    pub fn from_exact_hit(
        name: &str,
        surface: &CachedSurface,
        wall_seconds: f64,
    ) -> ScenarioReport {
        ScenarioReport {
            name: name.to_string(),
            hash: HashId(surface.hash),
            steps: 0,
            converged: true,
            final_sup_change: surface.final_sup_change,
            solver_failures: 0,
            grid_points: surface.grid_points(),
            wall_seconds,
            cache: CacheKind::Exact,
            warm_source: None,
            worker: String::new(),
        }
    }
}

/// Fleet-level scheduling summary (one simulated execution of the
/// per-scenario costs over the heterogeneous worker fleet).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Worker display names, aligned with the schedule's per-worker
    /// vectors.
    pub workers: Vec<String>,
    /// Makespan / busy / task-count telemetry.
    pub schedule: ScheduleResult,
    /// Load imbalance: max over workers of busy seconds divided by the
    /// mean (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl FleetSummary {
    /// Bundles a schedule with its worker names, deriving the imbalance.
    pub fn new(workers: Vec<String>, schedule: ScheduleResult) -> FleetSummary {
        let n = schedule.busy.len().max(1) as f64;
        let mean = schedule.busy.iter().sum::<f64>() / n;
        let max = schedule.busy.iter().cloned().fold(0.0, f64::max);
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        FleetSummary {
            workers,
            schedule,
            imbalance,
        }
    }
}

/// The complete record of one sweep: every scenario's telemetry, the
/// planned (estimated-cost) and replayed (measured-cost) fleet
/// schedules, and cache totals.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Per-scenario reports, in scenario-set order.
    pub scenarios: Vec<ScenarioReport>,
    /// Fleet schedule computed from the pre-run cost estimates.
    pub planned: FleetSummary,
    /// Fleet schedule replayed with the measured per-scenario costs.
    pub replayed: FleetSummary,
    /// Exact cache hits in this sweep.
    pub exact_hits: usize,
    /// Warm starts in this sweep.
    pub warm_starts: usize,
    /// Cold solves in this sweep.
    pub cold_solves: usize,
    /// Lifetime counters of the cache instance that served the sweep,
    /// including persisted-store telemetry (disk hits, evictions, skipped
    /// artifacts). Unlike the per-sweep counts above, these accumulate
    /// across sweeps sharing the cache.
    pub cache_stats: CacheStats,
    /// Host wall-clock seconds for the whole sweep.
    pub total_wall_seconds: f64,
}

impl SweepReport {
    /// Whether every scenario converged.
    pub fn all_converged(&self) -> bool {
        self.scenarios.iter().all(|s| s.converged)
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("sweep report serialization cannot fail")
    }

    /// Writes the JSON report to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a report back from JSON text.
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_cluster::{mixed_fleet, schedule, straggler_costs, Assignment};

    fn summary() -> FleetSummary {
        let fleet = mixed_fleet(1, 1);
        let costs = straggler_costs(32, 0.05, 0.5, 5);
        let s = schedule(&fleet, &costs, Assignment::WorkStealing { chunk: 2 });
        FleetSummary::new(fleet.iter().map(|w| w.name.clone()).collect(), s)
    }

    #[test]
    fn sweep_report_roundtrips_through_json() {
        let report = SweepReport {
            scenarios: vec![ScenarioReport {
                name: "demo/beta=0.95".into(),
                hash: HashId(0xDEAD_BEEF_CAFE_F00D),
                steps: 12,
                converged: true,
                final_sup_change: 3.25e-7,
                solver_failures: 0,
                grid_points: 82,
                wall_seconds: 0.125,
                cache: CacheKind::Warm,
                warm_source: Some(HashId(42)),
                worker: "daint-0".into(),
            }],
            planned: summary(),
            replayed: summary(),
            exact_hits: 0,
            warm_starts: 1,
            cold_solves: 0,
            cache_stats: CacheStats {
                entries: 1,
                warm_hits: 1,
                misses: 1,
                ..CacheStats::default()
            },
            total_wall_seconds: 0.25,
        };
        let json = report.to_json();
        // Hashes cross JSON as fixed-width hex strings, never as numbers
        // an f64-based reader would round above 2^53.
        assert!(json.contains("\"deadbeefcafef00d\""), "json: {json}");
        assert!(json.contains("\"000000000000002a\""), "json: {json}");
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(back.scenarios.len(), 1);
        let s = &back.scenarios[0];
        assert_eq!(s.hash, HashId(0xDEAD_BEEF_CAFE_F00D));
        assert_eq!(s.cache, CacheKind::Warm);
        assert_eq!(s.warm_source, Some(HashId(42)));
        assert_eq!(back.cache_stats, report.cache_stats);
        assert_eq!(s.final_sup_change.to_bits(), 3.25e-7f64.to_bits());
        assert_eq!(back.planned.workers, report.planned.workers);
        assert_eq!(
            back.planned.schedule.makespan.to_bits(),
            report.planned.schedule.makespan.to_bits()
        );
        assert!(back.all_converged());
    }

    #[test]
    fn imbalance_is_max_over_mean_busy() {
        let s = ScheduleResult {
            makespan: 4.0,
            busy: vec![4.0, 2.0],
            tasks: vec![8, 4],
            idle_fraction: 0.25,
        };
        let f = FleetSummary::new(vec!["a".into(), "b".into()], s);
        assert!((f.imbalance - 4.0 / 3.0).abs() < 1e-12);
    }
}
