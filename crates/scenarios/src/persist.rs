//! The persistent, versioned, content-addressed policy-surface store.
//!
//! The in-memory [`SurfaceCache`](crate::SurfaceCache) loses every solved
//! surface at process exit; this module gives it a durable backing
//! directory so run N+1 of the same sweep does zero solves. Layout:
//!
//! ```text
//! <cache-dir>/
//!   manifest.json            # version + entry index (insertion order)
//!   surface-<16-hex>.json    # one record per surface, keyed by hash
//! ```
//!
//! The manifest is the index: one [`ManifestEntry`] per surface with the
//! hash, state-space shape, parameter fingerprint, and cost metadata —
//! everything lookups and cost estimation need *without* touching the
//! record files. Surfaces themselves are loaded lazily on first hit.
//!
//! Durability rules:
//!
//! * every file (manifest and records) is written atomically — serialized
//!   to a dot-prefixed temp file in the same directory, then renamed — so
//!   a crashed sweep never leaves a torn index or a half-written surface;
//! * an unknown manifest format version is skipped with a warning (the
//!   store starts empty), never a panic;
//! * a corrupt or truncated record file is skipped with a warning at load
//!   time, dropped from the index, and counted in the telemetry;
//! * eviction is LRU-by-insertion with configurable max-entries and
//!   max-bytes bounds ([`EvictionPolicy`]), applied on every deposit, so
//!   the directory provably never exceeds the configured budget.
//!
//! Known limitation: record-file reads and writes happen under the
//! owning cache's mutex, so concurrent sweep threads serialize on disk
//! restores. Correct, but it leaves lazy-restore parallelism on the
//! table; moving the I/O outside the lock (clone entry metadata, read,
//! re-validate, re-lock to insert) is the planned follow-on for the
//! async serving front-end.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use hddm_core::StateRecord;

use crate::cache::{CachedSurface, ShapeKey};
use crate::hash::HashId;

/// Current on-disk format version of the manifest and record files.
pub const PERSIST_VERSION: u32 = 1;

/// The index file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Size bounds of a persistent store, enforced on every deposit by
/// evicting the oldest entries first (LRU-by-insertion). `None` means
/// unbounded in that dimension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Maximum number of persisted surfaces.
    pub max_entries: Option<usize>,
    /// Maximum total bytes of the persisted record files.
    pub max_bytes: Option<u64>,
}

/// One surface's row in the manifest index: everything a lookup needs to
/// decide exact/warm/miss — and a cost estimate — without reading the
/// record file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Scenario content hash (hex-encoded in JSON).
    pub hash: HashId,
    /// State-space shape of the cached surface.
    pub shape: ShapeKey,
    /// Parameter fingerprint of the producing scenario.
    pub fingerprint: Vec<f64>,
    /// Time-iteration steps the producing solve took.
    pub steps: usize,
    /// Measured wall-clock seconds of the producing solve.
    pub cost_seconds: f64,
    /// Size of the record file in bytes (the eviction currency).
    pub bytes: u64,
    /// Record file name, relative to the cache directory.
    pub file: String,
}

/// The parsed manifest (used for reading; writing streams borrowed
/// entries directly to avoid cloning the index).
#[derive(Clone, Debug, Deserialize)]
struct Manifest {
    version: u32,
    entries: Vec<ManifestEntry>,
}

/// The on-disk form of one cached surface (used for reading; writing
/// streams borrowed fields).
#[derive(Clone, Debug, Deserialize)]
struct SurfaceFile {
    version: u32,
    hash: HashId,
    shape: ShapeKey,
    fingerprint: Vec<f64>,
    domain_lo: Vec<f64>,
    domain_hi: Vec<f64>,
    records: Vec<StateRecord>,
    steps: usize,
    final_sup_change: f64,
    cost_seconds: f64,
}

fn warn(message: &str) {
    eprintln!("hddm-scenarios: warning: {message}");
}

/// Record file name for a hash.
pub fn surface_file_name(hash: u64) -> String {
    format!("surface-{}.json", HashId(hash))
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename. The dot-prefixed temp name can never be mistaken for a
/// record file, and a crash between the two steps leaves the previous
/// version of `path` intact.
fn write_atomic(dir: &Path, name: &str, text: &str) -> Result<(), String> {
    let tmp = dir.join(format!(".tmp-{}-{name}", std::process::id()));
    let target = dir.join(name);
    fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, &target).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), target.display())
    })?;
    Ok(())
}

/// The persistent backing store of a `SurfaceCache`: a cache directory,
/// its parsed manifest index, and the eviction policy. All mutation goes
/// through the owning cache's lock.
#[derive(Debug)]
pub(crate) struct Store {
    dir: PathBuf,
    policy: EvictionPolicy,
    entries: Vec<ManifestEntry>,
    evictions: usize,
    skipped: usize,
}

impl Store {
    /// Opens (or initializes) a cache directory: creates it if missing,
    /// loads the manifest index, and sweeps leftover temp files from
    /// crashed writers. An unreadable, unparseable, or version-mismatched
    /// manifest is skipped with a warning — the store starts empty and
    /// the index is rewritten at the current version on the next deposit.
    /// Record files the index does not reference (crash leftovers, or the
    /// remains of a skipped manifest) are deleted, so they cannot leak
    /// past the eviction budget forever.
    pub fn open<P: AsRef<Path>>(dir: P, policy: EvictionPolicy) -> Result<Store, String> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;

        let mut store = Store {
            dir,
            policy,
            entries: Vec::new(),
            evictions: 0,
            skipped: 0,
        };
        let manifest_path = store.dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            match fs::read_to_string(&manifest_path) {
                Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                    Ok(manifest) if manifest.version == PERSIST_VERSION => {
                        store.entries = manifest.entries;
                    }
                    Ok(manifest) => {
                        warn(&format!(
                            "cache manifest {} has unknown format version {} (expected \
                             {PERSIST_VERSION}); ignoring {} persisted entr(ies)",
                            manifest_path.display(),
                            manifest.version,
                            manifest.entries.len()
                        ));
                        // The now-unreferenced record files are counted
                        // (and deleted) by the sweep below.
                        store.skipped += 1;
                    }
                    Err(e) => {
                        warn(&format!(
                            "corrupt cache manifest {} ({e}); starting empty",
                            manifest_path.display()
                        ));
                        store.skipped += 1;
                    }
                },
                Err(e) => {
                    warn(&format!(
                        "unreadable cache manifest {} ({e}); starting empty",
                        manifest_path.display()
                    ));
                    store.skipped += 1;
                }
            }
        }

        // Sweep files the index does not account for: temp files from
        // crashed writers, and record files orphaned by a crash between
        // the record write and the manifest write — or by a skipped
        // manifest above. Without this, unindexed files would accumulate
        // outside the eviction budget forever.
        if let Ok(listing) = fs::read_dir(&store.dir) {
            for entry in listing.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                } else if name.starts_with("surface-")
                    && name.ends_with(".json")
                    && !store.entries.iter().any(|e| e.file == name)
                {
                    warn(&format!("removing unindexed cache record {name}"));
                    let _ = fs::remove_file(entry.path());
                    store.skipped += 1;
                }
            }
        }
        Ok(store)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of persisted surfaces in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total bytes of the persisted record files per the index.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Entries evicted over this store's lifetime.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Corrupt / version-mismatched artifacts skipped over this store's
    /// lifetime.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Iterates the index in insertion (= eviction) order.
    pub fn entries(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.iter()
    }

    /// Deposits a surface: writes its record file atomically, updates the
    /// index, applies the eviction policy, and rewrites the manifest
    /// atomically. Returns the hashes of any evicted surfaces so the
    /// in-memory cache can drop them too.
    pub fn insert(&mut self, surface: &CachedSurface) -> Result<Vec<u64>, String> {
        let name = surface_file_name(surface.hash);
        let json = surface_json(surface);
        let bytes = json.len() as u64;
        write_atomic(&self.dir, &name, &json)?;

        let entry = ManifestEntry {
            hash: HashId(surface.hash),
            shape: surface.shape,
            fingerprint: surface.fingerprint.clone(),
            steps: surface.steps,
            cost_seconds: surface.cost_seconds,
            bytes,
            file: name,
        };
        // Re-deposits of the same scenario replace in place (last writer
        // wins, like the in-memory map) and keep their eviction slot.
        match self.entries.iter_mut().find(|e| e.hash == entry.hash) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }

        let mut evicted = Vec::new();
        loop {
            let over_entries = self
                .policy
                .max_entries
                .is_some_and(|m| self.entries.len() > m);
            let over_bytes = self
                .policy
                .max_bytes
                .is_some_and(|m| self.total_bytes() > m);
            if self.entries.is_empty() || !(over_entries || over_bytes) {
                break;
            }
            let gone = self.entries.remove(0);
            let _ = fs::remove_file(self.dir.join(&gone.file));
            self.evictions += 1;
            evicted.push(gone.hash.0);
        }

        // A budget smaller than a single surface evicts the deposit
        // itself: the directory bound still holds, but the surface must
        // not silently vanish from the in-memory tier too — that would
        // disable all caching. Keep it in memory (exclude it from the
        // evicted list) and say so.
        if let Some(pos) = evicted.iter().position(|&h| h == surface.hash) {
            warn(&format!(
                "cache budget is too small for a single surface ({bytes} bytes); \
                 surface {} stays in memory only",
                HashId(surface.hash)
            ));
            evicted.remove(pos);
        }

        self.write_manifest()?;
        Ok(evicted)
    }

    /// Loads the surface for `hash` from disk, validating it end to end
    /// (format version, hash/shape/fingerprint agreement with the index,
    /// structural record invariants). A file that fails any check is
    /// skipped with a warning, dropped from the index, and deleted;
    /// returns `None` in that case or when the hash is not persisted.
    pub fn load(&mut self, hash: u64) -> Option<CachedSurface> {
        let idx = self.entries.iter().position(|e| e.hash.0 == hash)?;
        let path = self.dir.join(&self.entries[idx].file);
        match read_surface(&path, &self.entries[idx]) {
            Ok(surface) => Some(surface),
            Err(e) => {
                warn(&format!(
                    "skipping corrupt cached surface {} ({e})",
                    path.display()
                ));
                let gone = self.entries.remove(idx);
                let _ = fs::remove_file(self.dir.join(&gone.file));
                self.skipped += 1;
                // Best-effort: drop the dead row from the on-disk index
                // too, so the next process does not rediscover it.
                if let Err(e) = self.write_manifest() {
                    warn(&format!("failed to rewrite cache manifest: {e}"));
                }
                None
            }
        }
    }

    /// Rewrites the manifest atomically from the in-memory index.
    fn write_manifest(&self) -> Result<(), String> {
        let mut out = String::new();
        out.push('{');
        serde::write_key("version", &mut out);
        PERSIST_VERSION.serialize_json(&mut out);
        out.push(',');
        serde::write_key("entries", &mut out);
        self.entries.serialize_json(&mut out);
        out.push('}');
        write_atomic(&self.dir, MANIFEST_FILE, &out)
    }
}

/// Serializes a surface to its on-disk JSON record (borrowed fields — no
/// clone of the record rows).
fn surface_json(surface: &CachedSurface) -> String {
    let mut out = String::new();
    out.push('{');
    serde::write_key("version", &mut out);
    PERSIST_VERSION.serialize_json(&mut out);
    out.push(',');
    serde::write_key("hash", &mut out);
    HashId(surface.hash).serialize_json(&mut out);
    out.push(',');
    serde::write_key("shape", &mut out);
    surface.shape.serialize_json(&mut out);
    out.push(',');
    serde::write_key("fingerprint", &mut out);
    surface.fingerprint.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_lo", &mut out);
    surface.domain_lo.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_hi", &mut out);
    surface.domain_hi.serialize_json(&mut out);
    out.push(',');
    serde::write_key("records", &mut out);
    surface.records.serialize_json(&mut out);
    out.push(',');
    serde::write_key("steps", &mut out);
    surface.steps.serialize_json(&mut out);
    out.push(',');
    serde::write_key("final_sup_change", &mut out);
    surface.final_sup_change.serialize_json(&mut out);
    out.push(',');
    serde::write_key("cost_seconds", &mut out);
    surface.cost_seconds.serialize_json(&mut out);
    out.push('}');
    out
}

/// Reads and fully validates one record file against its index row.
fn read_surface(path: &Path, entry: &ManifestEntry) -> Result<CachedSurface, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let file: SurfaceFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if file.version != PERSIST_VERSION {
        return Err(format!(
            "record format version {} (expected {PERSIST_VERSION})",
            file.version
        ));
    }
    if file.hash != entry.hash {
        return Err(format!(
            "record hash {} does not match index hash {}",
            file.hash, entry.hash
        ));
    }
    if file.shape != entry.shape {
        return Err("record shape does not match index shape".into());
    }
    if file.fingerprint != entry.fingerprint {
        return Err("record fingerprint does not match index fingerprint".into());
    }
    let shape = file.shape;
    if file.records.len() != shape.num_states {
        return Err(format!(
            "{} state records for {} discrete states",
            file.records.len(),
            shape.num_states
        ));
    }
    if file.domain_lo.len() != shape.dim || file.domain_hi.len() != shape.dim {
        return Err(format!(
            "domain box dims {}/{} do not match shape dim {}",
            file.domain_lo.len(),
            file.domain_hi.len(),
            shape.dim
        ));
    }
    for (lo, hi) in file.domain_lo.iter().zip(&file.domain_hi) {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("degenerate domain box [{lo}, {hi}]"));
        }
    }
    for (z, record) in file.records.iter().enumerate() {
        record
            .validate(shape.dim, shape.ndofs)
            .map_err(|e| format!("state record {z}: {e}"))?;
    }
    Ok(CachedSurface {
        hash: file.hash.0,
        shape,
        fingerprint: file.fingerprint,
        domain_lo: file.domain_lo,
        domain_hi: file.domain_hi,
        records: file.records,
        steps: file.steps,
        final_sup_change: file.final_sup_change,
        cost_seconds: file.cost_seconds,
    })
}
