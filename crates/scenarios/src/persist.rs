//! The persistent, versioned, content-addressed policy-surface store.
//!
//! The in-memory [`SurfaceCache`](crate::SurfaceCache) loses every solved
//! surface at process exit; this module gives it a durable backing
//! directory so run N+1 of the same sweep does zero solves. Layout:
//!
//! ```text
//! <cache-dir>/
//!   manifest.json            # version + entry index (insertion order)
//!   surface-<16-hex>.bin     # one binary record per surface, keyed by hash
//!   surface-<16-hex>.json    # legacy JSON records (read-back only)
//! ```
//!
//! The manifest is the index: one [`ManifestEntry`] per surface with the
//! hash, state-space shape, parameter fingerprint, and cost metadata —
//! everything lookups and cost estimation need *without* touching the
//! record files. Surfaces themselves are loaded lazily on first hit.
//!
//! Record format: new deposits are written in a versioned binary
//! columnar layout (`.bin`, see [`encode_record`]) — a checksummed
//! 40-byte header followed by length-prefixed sections in which every
//! field is one contiguous little-endian array, 8-byte aligned, so the
//! `f64` payloads (fingerprint, domain box, surpluses) land in the same
//! structure-of-arrays shape the kernels' `PointBlock` consumes and the
//! restore is a bounds-checked copy instead of a float parse. Records
//! from before the binary format (`.json`) read back transparently: the
//! manifest names each record file, and the reader dispatches on the
//! extension.
//!
//! Durability rules:
//!
//! * every file (manifest and records) is written atomically *and
//!   durably* — serialized to a dot-prefixed temp file in the same
//!   directory, fsynced, renamed, and the directory fsynced after — so
//!   a crash at any point leaves either the previous version or the
//!   complete new one, never a torn or empty file that a rename alone
//!   (buffered in the page cache) could still surface;
//! * an unknown manifest format version is skipped with a warning (the
//!   store starts empty), never a panic;
//! * a corrupt or truncated record file is skipped with a warning at load
//!   time, dropped from the index, and counted in the telemetry;
//! * eviction is LRU-by-insertion with configurable max-entries and
//!   max-bytes bounds ([`EvictionPolicy`]), applied on every deposit, so
//!   the directory provably never exceeds the configured budget.
//!
//! Concurrency: the index lives behind an `RwLock`, so any number of
//! readers can consult it simultaneously, and **record-file I/O happens
//! outside every lock**. The read path is: snapshot the [`ManifestEntry`]
//! under the read lock, release it, read + validate the record file with
//! no lock held, then hand the surface to the owning cache for promotion.
//! Deposits serialize against each other on a writer mutex (the manifest
//! rewrite must be ordered), but the record file itself is written before
//! the mutex is taken — concurrent readers never wait on a writer's disk
//! I/O, and vice versa. This removes the single-hot-path bottleneck the
//! serving front-end needs gone: N clients restoring N different surfaces
//! proceed in parallel.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use serde::{Deserialize, Serialize};

use hddm_core::StateRecord;

use crate::cache::{CachedSurface, ShapeKey};
use crate::hash::{fingerprint_distance, HashId, ScenarioHasher};

/// Current on-disk format version of the manifest and legacy JSON
/// record files.
pub const PERSIST_VERSION: u32 = 1;

/// Current version of the binary columnar record format.
pub const BINARY_RECORD_VERSION: u32 = 1;

/// Magic bytes opening every binary record file.
pub const RECORD_MAGIC: [u8; 8] = *b"HDDMSURF";

/// The index file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Size bounds of a persistent store, enforced on every deposit by
/// evicting the oldest entries first (LRU-by-insertion). `None` means
/// unbounded in that dimension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Maximum number of persisted surfaces.
    pub max_entries: Option<usize>,
    /// Maximum total bytes of the persisted record files.
    pub max_bytes: Option<u64>,
}

/// One surface's row in the manifest index: everything a lookup needs to
/// decide exact/warm/miss — and a cost estimate — without reading the
/// record file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Scenario content hash (hex-encoded in JSON).
    pub hash: HashId,
    /// State-space shape of the cached surface.
    pub shape: ShapeKey,
    /// Parameter fingerprint of the producing scenario.
    pub fingerprint: Vec<f64>,
    /// Time-iteration steps the producing solve took.
    pub steps: usize,
    /// Measured wall-clock seconds of the producing solve.
    pub cost_seconds: f64,
    /// Size of the record file in bytes (the eviction currency).
    pub bytes: u64,
    /// Record file name, relative to the cache directory.
    pub file: String,
}

/// The parsed manifest (used for reading; writing streams borrowed
/// entries directly to avoid cloning the index).
#[derive(Clone, Debug, Deserialize)]
struct Manifest {
    version: u32,
    entries: Vec<ManifestEntry>,
}

/// The on-disk form of one cached surface (used for reading; writing
/// streams borrowed fields).
#[derive(Clone, Debug, Deserialize)]
struct SurfaceFile {
    version: u32,
    hash: HashId,
    shape: ShapeKey,
    fingerprint: Vec<f64>,
    domain_lo: Vec<f64>,
    domain_hi: Vec<f64>,
    records: Vec<StateRecord>,
    steps: usize,
    final_sup_change: f64,
    cost_seconds: f64,
}

fn warn(message: &str) {
    eprintln!("hddm-scenarios: warning: {message}");
}

/// Record file name for a hash (the binary format new deposits write).
pub fn surface_file_name(hash: u64) -> String {
    format!("surface-{}.bin", HashId(hash))
}

/// Record file name of the legacy JSON format (read-back only; kept
/// public for migration tooling and the legacy-compatibility tests).
pub fn legacy_surface_file_name(hash: u64) -> String {
    format!("surface-{}.json", HashId(hash))
}

/// Writes `bytes` to `path` atomically **and durably**: temp file in the
/// same directory, fsync, rename, fsync the directory. The dot-prefixed
/// temp name can never be mistaken for a record file, and a crash
/// between any two steps leaves the previous version of `path` intact.
/// Without the temp-file fsync, a crash shortly *after* the rename could
/// surface the new name over still-unwritten data (an empty or truncated
/// record despite the atomic contract); without the directory fsync, the
/// rename itself may not survive the crash. The temp name carries a
/// process-wide counter on top of the pid: record files are written
/// outside the store's locks, so two threads depositing the same surface
/// concurrently must not collide on the temp path.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), String> {
    static TMP_COUNTER: AtomicUsize = AtomicUsize::new(0);
    // ORDERING: Relaxed — temp-name uniqueness needs only RMW atomicity;
    // no other memory is synchronized through the counter.
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".tmp-{}-{unique}-{name}", std::process::id()));
    let target = dir.join(name);
    let write_synced = || -> std::io::Result<()> {
        use std::io::Write;
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    };
    write_synced().map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("write {}: {e}", tmp.display())
    })?;
    fs::rename(&tmp, &target).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), target.display())
    })?;
    // Make the rename durable: fsync the directory so the new directory
    // entry reaches disk. Best effort — not every platform lets a
    // directory be opened and synced (the data itself is already safe).
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The persistent backing store of a `SurfaceCache`: a cache directory,
/// its parsed manifest index, and the eviction policy.
///
/// Lock discipline (all internal — the owning cache never holds its own
/// shard locks across a store call):
///
/// * `index` (`RwLock`) — the manifest rows. Read-mostly; lookups and
///   cost estimation take the read lock, snapshot what they need, and
///   release before any file I/O.
/// * `writer` (`Mutex`) — serializes mutations (deposit, corrupt-entry
///   discard) so the manifest on disk is always the last writer's view.
///   Record-file writes happen *before* the writer lock is taken.
#[derive(Debug)]
pub(crate) struct Store {
    dir: PathBuf,
    policy: EvictionPolicy,
    index: RwLock<Vec<ManifestEntry>>,
    writer: Mutex<()>,
    evictions: AtomicUsize,
    skipped: AtomicUsize,
    poisonings: AtomicUsize,
}

impl Store {
    /// Opens (or initializes) a cache directory: creates it if missing,
    /// loads the manifest index, and sweeps leftover temp files from
    /// crashed writers. An unreadable, unparseable, or version-mismatched
    /// manifest is skipped with a warning — the store starts empty and
    /// the index is rewritten at the current version on the next deposit.
    /// Record files the index does not reference (crash leftovers, or the
    /// remains of a skipped manifest) are deleted, so they cannot leak
    /// past the eviction budget forever.
    pub fn open<P: AsRef<Path>>(dir: P, policy: EvictionPolicy) -> Result<Store, String> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;

        let mut entries = Vec::new();
        let mut skipped = 0usize;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            match fs::read_to_string(&manifest_path) {
                Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                    Ok(manifest) if manifest.version == PERSIST_VERSION => {
                        entries = manifest.entries;
                    }
                    Ok(manifest) => {
                        warn(&format!(
                            "cache manifest {} has unknown format version {} (expected \
                             {PERSIST_VERSION}); ignoring {} persisted entr(ies)",
                            manifest_path.display(),
                            manifest.version,
                            manifest.entries.len()
                        ));
                        // The now-unreferenced record files are counted
                        // (and deleted) by the sweep below.
                        skipped += 1;
                    }
                    Err(e) => {
                        warn(&format!(
                            "corrupt cache manifest {} ({e}); starting empty",
                            manifest_path.display()
                        ));
                        skipped += 1;
                    }
                },
                Err(e) => {
                    warn(&format!(
                        "unreadable cache manifest {} ({e}); starting empty",
                        manifest_path.display()
                    ));
                    skipped += 1;
                }
            }
        }

        // Sweep files the index does not account for: temp files from
        // crashed writers, and record files orphaned by a crash between
        // the record write and the manifest write — or by a skipped
        // manifest above. Without this, unindexed files would accumulate
        // outside the eviction budget forever.
        if let Ok(listing) = fs::read_dir(&dir) {
            for entry in listing.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                } else if name.starts_with("surface-")
                    && (name.ends_with(".json") || name.ends_with(".bin"))
                    && !entries.iter().any(|e| e.file == name)
                {
                    warn(&format!("removing unindexed cache record {name}"));
                    let _ = fs::remove_file(entry.path());
                    skipped += 1;
                }
            }
        }
        Ok(Store {
            dir,
            policy,
            index: RwLock::new(entries),
            writer: Mutex::new(()),
            evictions: AtomicUsize::new(0),
            skipped: AtomicUsize::new(skipped),
            poisonings: AtomicUsize::new(0),
        })
    }

    // Poisoned guards are recovered, cleared, and counted: the guarded
    // state (the index vector) is consistent at every point a panic can
    // interrupt it, so a crashing thread must not cascade. The count
    // rolls up into `CacheStats::lock_poisonings`.

    fn index_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<ManifestEntry>> {
        self.index.read().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.index.clear_poison();
            poisoned.into_inner()
        })
    }

    fn index_write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<ManifestEntry>> {
        self.index.write().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.index.clear_poison();
            poisoned.into_inner()
        })
    }

    fn writer_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.writer.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Poisoned store locks recovered over this store's lifetime.
    pub fn poisonings(&self) -> usize {
        // ORDERING: Relaxed — statistics read; staleness is acceptable.
        self.poisonings.load(Ordering::Relaxed)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of persisted surfaces in the index.
    pub fn len(&self) -> usize {
        self.index_read().len()
    }

    /// Total bytes of the persisted record files per the index.
    pub fn total_bytes(&self) -> u64 {
        self.index_read().iter().map(|e| e.bytes).sum()
    }

    /// Entries evicted over this store's lifetime.
    pub fn evictions(&self) -> usize {
        // ORDERING: Relaxed — statistics read; staleness is acceptable.
        self.evictions.load(Ordering::Relaxed)
    }

    /// Corrupt / version-mismatched artifacts skipped over this store's
    /// lifetime.
    pub fn skipped(&self) -> usize {
        // ORDERING: Relaxed — statistics read; staleness is acceptable.
        self.skipped.load(Ordering::Relaxed)
    }

    /// Whether `hash` is currently indexed.
    pub fn contains(&self, hash: u64) -> bool {
        self.index_read().iter().any(|e| e.hash.0 == hash)
    }

    /// Snapshot of the index row for `hash`, if persisted. The clone is
    /// deliberate: the caller reads the record file *after* releasing the
    /// index lock.
    pub fn entry(&self, hash: u64) -> Option<ManifestEntry> {
        self.index_read().iter().find(|e| e.hash.0 == hash).cloned()
    }

    /// The nearest persisted same-shape neighbour within `radius` whose
    /// hash `exclude` does not claim (entries already promoted into
    /// memory were scanned there), per the manifest index alone — no file
    /// I/O, shared read lock only. Used by the warm-start lookup and cost
    /// estimation so both always pick the same neighbour.
    pub fn best_candidate<F: Fn(u64) -> bool>(
        &self,
        shape: ShapeKey,
        fingerprint: &[f64],
        radius: f64,
        exclude: F,
    ) -> Option<(f64, ManifestEntry)> {
        let index = self.index_read();
        let mut best: Option<(f64, &ManifestEntry)> = None;
        for entry in index.iter() {
            if entry.shape != shape || exclude(entry.hash.0) {
                continue;
            }
            let d = fingerprint_distance(&entry.fingerprint, fingerprint);
            if d <= radius && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, entry));
            }
        }
        best.map(|(d, entry)| (d, entry.clone()))
    }

    /// Reads and validates the record file for an index snapshot taken
    /// earlier, dispatching on the file extension the index names
    /// (binary for new deposits, JSON for legacy records). **Holds no
    /// lock** — this is the disk restore the serving front-end runs
    /// concurrently across threads. On failure the caller must
    /// [`Store::discard`] the entry.
    pub fn read_record(&self, entry: &ManifestEntry) -> Result<CachedSurface, String> {
        let path = self.dir.join(&entry.file);
        let surface = if entry.file.ends_with(".json") {
            let text = fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
            decode_legacy_record_json(&text)?
        } else {
            let bytes = fs::read(&path).map_err(|e| format!("read: {e}"))?;
            decode_record(&bytes)?
        };
        if surface.hash != entry.hash.0 {
            return Err(format!(
                "record hash {} does not match index hash {}",
                HashId(surface.hash),
                entry.hash
            ));
        }
        if surface.shape != entry.shape {
            return Err("record shape does not match index shape".into());
        }
        if surface.fingerprint != entry.fingerprint {
            return Err("record fingerprint does not match index fingerprint".into());
        }
        Ok(surface)
    }

    /// Drops `hash` from the index (corrupt record file), deletes the
    /// file, counts the skip, and rewrites the manifest so the next
    /// process does not rediscover the dead row. Idempotent: a concurrent
    /// discard of the same hash is a no-op.
    pub fn discard(&self, hash: u64) {
        let _writer = self.writer_lock();
        let gone = {
            let mut index = self.index_write();
            match index.iter().position(|e| e.hash.0 == hash) {
                Some(pos) => index.remove(pos),
                None => return, // another thread already discarded it
            }
        };
        let _ = fs::remove_file(self.dir.join(&gone.file));
        // ORDERING: Relaxed — statistics tally; no ordering dependency.
        self.skipped.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.write_manifest() {
            warn(&format!("failed to rewrite cache manifest: {e}"));
        }
    }

    /// Deposits a surface: writes its record file atomically (**before**
    /// taking any lock), then — under the writer mutex — updates the
    /// index, applies the eviction policy, and rewrites the manifest
    /// atomically. Returns the hashes of any evicted surfaces so the
    /// in-memory cache can drop them too.
    pub fn insert(&self, surface: &CachedSurface) -> Result<Vec<u64>, String> {
        let name = surface_file_name(surface.hash);
        let encoded = encode_record(surface);
        let bytes = encoded.len() as u64;
        // Record-file I/O outside every lock: the atomic temp+rename
        // means concurrent writers of the same hash race to an
        // interchangeable result (identical scenario ⇒ identical surface
        // up to cost telemetry), and readers never see a torn file.
        write_atomic(&self.dir, &name, &encoded)?;

        let entry = ManifestEntry {
            hash: HashId(surface.hash),
            shape: surface.shape,
            fingerprint: surface.fingerprint.clone(),
            steps: surface.steps,
            cost_seconds: surface.cost_seconds,
            bytes,
            file: name,
        };

        let _writer = self.writer_lock();
        let mut evicted = Vec::new();
        let mut evicted_files: Vec<String> = Vec::new();
        let mut replaced_file: Option<String> = None;
        {
            let mut index = self.index_write();
            // Re-deposits of the same scenario replace in place (last
            // writer wins, like the in-memory map) and keep their
            // eviction slot. A replaced legacy record keeps a different
            // file name (`.json`) — remove it below so the old copy
            // cannot linger outside the index.
            match index.iter_mut().find(|e| e.hash == entry.hash) {
                Some(slot) => {
                    if slot.file != entry.file {
                        replaced_file = Some(std::mem::take(&mut slot.file));
                    }
                    *slot = entry;
                }
                None => index.push(entry),
            }

            loop {
                let over_entries = self.policy.max_entries.is_some_and(|m| index.len() > m);
                let total: u64 = index.iter().map(|e| e.bytes).sum();
                let over_bytes = self.policy.max_bytes.is_some_and(|m| total > m);
                if index.is_empty() || !(over_entries || over_bytes) {
                    break;
                }
                let gone = index.remove(0);
                // ORDERING: Relaxed — statistics tally; the index update
                // itself is ordered by the RwLock write guard.
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted.push(gone.hash.0);
                evicted_files.push(gone.file);
            }
        }
        // Evicted record files are deleted only after the index guard is
        // gone: readers (`load`) share that RwLock and must never block
        // on disk I/O. The writer mutex still serializes the deletions
        // with the manifest rewrite below, so a crash between the two
        // leaves at worst an orphaned file, never a dangling index row.
        for file in &evicted_files {
            let _ = fs::remove_file(self.dir.join(file));
        }

        // A budget smaller than a single surface evicts the deposit
        // itself: the directory bound still holds, but the surface must
        // not silently vanish from the in-memory tier too — that would
        // disable all caching. Keep it in memory (exclude it from the
        // evicted list) and say so.
        if let Some(pos) = evicted.iter().position(|&h| h == surface.hash) {
            warn(&format!(
                "cache budget is too small for a single surface ({bytes} bytes); \
                 surface {} stays in memory only",
                HashId(surface.hash)
            ));
            evicted.remove(pos);
        }
        if let Some(old) = replaced_file {
            let _ = fs::remove_file(self.dir.join(&old));
        }

        self.write_manifest()?;
        Ok(evicted)
    }

    /// Rewrites the manifest atomically from the in-memory index.
    fn write_manifest(&self) -> Result<(), String> {
        let mut out = String::new();
        out.push('{');
        serde::write_key("version", &mut out);
        PERSIST_VERSION.serialize_json(&mut out);
        out.push(',');
        serde::write_key("entries", &mut out);
        self.index_read().serialize_json(&mut out);
        out.push('}');
        write_atomic(&self.dir, MANIFEST_FILE, out.as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Binary columnar record format
// ---------------------------------------------------------------------------
//
// ```text
// header (40 bytes):
//   0..8    magic "HDDMSURF"
//   8..12   u32  format version (BINARY_RECORD_VERSION)
//   12..16  u32  reserved (zero; keeps the header 8-byte aligned)
//   16..24  u64  payload length in bytes
//   24..32  u64  FNV-1a-64 checksum of the payload
//   32..40  u64  FNV-1a-64 checksum of header bytes 0..32
// payload (all integers/floats little-endian, sections in order):
//   u64 hash · u64 dim · u64 ndofs · u64 num_states · u64 steps
//   f64 final_sup_change · f64 cost_seconds
//   u64 len + f64[len]  fingerprint
//   u64 len + f64[len]  domain_lo
//   u64 len + f64[len]  domain_hi
//   num_states × state record:
//     u64 len + (u32 index, u16 l, u16 i)[len]   xps      (8 B/entry)
//     u64 len + u32[len] (+ zero pad to 8 B)     chains
//     u64 len + u32[len] (+ zero pad to 8 B)     order
//     u64 nfreq
//     u64 len + f64[len]                         surplus
// ```
//
// Every section is one contiguous array of its field (columnar /
// structure-of-arrays, the layout `PointBlock` and the batch kernels
// consume) and every f64 section starts 8-byte aligned, so a restore is
// a bounds-checked memcpy per section — no float parsing. `f64` goes
// through `to_le_bytes`/`from_le_bytes`, so the round trip is bit-exact
// including NaN payloads and signed zeros (stronger than the JSON path,
// which nulls out non-finite values).

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hasher = ScenarioHasher::default();
    hasher.write_bytes(bytes);
    hasher.finish()
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64_section(out: &mut Vec<u8>, vs: &[f64]) {
    push_u64(out, vs.len() as u64);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_u32_section(out: &mut Vec<u8>, vs: &[u32]) {
    push_u64(out, vs.len() as u64);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
    if vs.len() % 2 == 1 {
        out.extend_from_slice(&0u32.to_le_bytes()); // keep 8-byte alignment
    }
}

/// Encodes a surface into the versioned binary columnar record format.
pub fn encode_record(surface: &CachedSurface) -> Vec<u8> {
    let mut payload = Vec::new();
    push_u64(&mut payload, surface.hash);
    push_u64(&mut payload, surface.shape.dim as u64);
    push_u64(&mut payload, surface.shape.ndofs as u64);
    push_u64(&mut payload, surface.shape.num_states as u64);
    push_u64(&mut payload, surface.steps as u64);
    payload.extend_from_slice(&surface.final_sup_change.to_le_bytes());
    payload.extend_from_slice(&surface.cost_seconds.to_le_bytes());
    push_f64_section(&mut payload, &surface.fingerprint);
    push_f64_section(&mut payload, &surface.domain_lo);
    push_f64_section(&mut payload, &surface.domain_hi);
    for record in &surface.records {
        push_u64(&mut payload, record.xps.len() as u64);
        for &(index, l, i) in &record.xps {
            payload.extend_from_slice(&index.to_le_bytes());
            payload.extend_from_slice(&l.to_le_bytes());
            payload.extend_from_slice(&i.to_le_bytes());
        }
        push_u32_section(&mut payload, &record.chains);
        push_u32_section(&mut payload, &record.order);
        push_u64(&mut payload, record.nfreq as u64);
        push_f64_section(&mut payload, &record.surplus);
    }

    let mut out = Vec::with_capacity(40 + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&BINARY_RECORD_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    push_u64(&mut out, payload.len() as u64);
    push_u64(&mut out, fnv64(&payload));
    let header_checksum = fnv64(&out[..32]);
    push_u64(&mut out, header_checksum);
    out.extend_from_slice(&payload);
    out
}

/// A bounds-checked little-endian reader over a record payload. Every
/// length is validated against the remaining bytes *before* any
/// allocation, so a corrupt or truncated record fails with a typed error
/// (→ the store's skip-and-warn path), never a panic or a huge alloc.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!(
                "truncated record: wanted {n} bytes at offset {}, {} remain",
                self.at,
                self.bytes.len() - self.at
            ));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A section length, validated so `len × elem_bytes` fits in the
    /// remaining payload.
    fn section_len(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let len = self.u64()?;
        let remaining = (self.bytes.len() - self.at) as u64;
        if len
            .checked_mul(elem_bytes as u64)
            .is_none_or(|b| b > remaining)
        {
            return Err(format!(
                "corrupt record: section of {len} × {elem_bytes}-byte elements \
                 exceeds the {remaining} remaining bytes"
            ));
        }
        Ok(len as usize)
    }

    fn f64_section(&mut self) -> Result<Vec<f64>, String> {
        let len = self.section_len(8)?;
        let raw = self.take(len * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u32_section(&mut self) -> Result<Vec<u32>, String> {
        let len = self.section_len(4)?;
        let raw = self.take(len * 4)?;
        let vs = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if len % 2 == 1 {
            self.take(4)?; // alignment pad
        }
        Ok(vs)
    }
}

/// Decodes and fully self-validates a binary record. Cross-checks
/// against the manifest row happen in [`Store::read_record`].
pub fn decode_record(bytes: &[u8]) -> Result<CachedSurface, String> {
    if bytes.len() < 40 {
        return Err(format!("truncated record header ({} bytes)", bytes.len()));
    }
    if bytes[..8] != RECORD_MAGIC {
        return Err("not a binary surface record (bad magic)".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != BINARY_RECORD_VERSION {
        return Err(format!(
            "binary record format version {version} (expected {BINARY_RECORD_VERSION})"
        ));
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload_checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let header_checksum = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    if fnv64(&bytes[..32]) != header_checksum {
        return Err("record header checksum mismatch".into());
    }
    let payload = &bytes[40..];
    if payload.len() as u64 != payload_len {
        return Err(format!(
            "record payload is {} bytes, header says {payload_len}",
            payload.len()
        ));
    }
    if fnv64(payload) != payload_checksum {
        return Err("record payload checksum mismatch".into());
    }

    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let hash = r.u64()?;
    let shape = ShapeKey {
        dim: r.u64()? as usize,
        ndofs: r.u64()? as usize,
        num_states: r.u64()? as usize,
    };
    let steps = r.u64()? as usize;
    let final_sup_change = r.f64()?;
    let cost_seconds = r.f64()?;
    let fingerprint = r.f64_section()?;
    let domain_lo = r.f64_section()?;
    let domain_hi = r.f64_section()?;
    if shape.num_states > payload.len() / 8 {
        return Err(format!(
            "corrupt record: {} discrete states exceed the payload",
            shape.num_states
        ));
    }
    let mut records = Vec::with_capacity(shape.num_states);
    for _ in 0..shape.num_states {
        let nxps = r.section_len(8)?;
        let raw = r.take(nxps * 8)?;
        let xps = raw
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u16::from_le_bytes(c[4..6].try_into().unwrap()),
                    u16::from_le_bytes(c[6..8].try_into().unwrap()),
                )
            })
            .collect();
        let chains = r.u32_section()?;
        let order = r.u32_section()?;
        let nfreq = r.u64()? as usize;
        let surplus = r.f64_section()?;
        records.push(StateRecord {
            xps,
            chains,
            order,
            nfreq,
            surplus,
        });
    }
    if r.at != payload.len() {
        return Err(format!(
            "corrupt record: {} trailing bytes after the last section",
            payload.len() - r.at
        ));
    }

    validate_surface(CachedSurface {
        hash,
        shape,
        fingerprint,
        domain_lo,
        domain_hi,
        records,
        steps,
        final_sup_change,
        cost_seconds,
    })
}

/// Serializes a surface to the legacy on-disk JSON record (borrowed
/// fields — no clone of the record rows). Kept public so the
/// compatibility tests and the serving bench can produce (and time)
/// legacy records; new deposits always write the binary format.
pub fn legacy_record_json(surface: &CachedSurface) -> String {
    let mut out = String::new();
    out.push('{');
    serde::write_key("version", &mut out);
    PERSIST_VERSION.serialize_json(&mut out);
    out.push(',');
    serde::write_key("hash", &mut out);
    HashId(surface.hash).serialize_json(&mut out);
    out.push(',');
    serde::write_key("shape", &mut out);
    surface.shape.serialize_json(&mut out);
    out.push(',');
    serde::write_key("fingerprint", &mut out);
    surface.fingerprint.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_lo", &mut out);
    surface.domain_lo.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_hi", &mut out);
    surface.domain_hi.serialize_json(&mut out);
    out.push(',');
    serde::write_key("records", &mut out);
    surface.records.serialize_json(&mut out);
    out.push(',');
    serde::write_key("steps", &mut out);
    surface.steps.serialize_json(&mut out);
    out.push(',');
    serde::write_key("final_sup_change", &mut out);
    surface.final_sup_change.serialize_json(&mut out);
    out.push(',');
    serde::write_key("cost_seconds", &mut out);
    surface.cost_seconds.serialize_json(&mut out);
    out.push('}');
    out
}

/// Decodes and fully self-validates a legacy JSON record. Cross-checks
/// against the manifest row happen in [`Store::read_record`].
pub fn decode_legacy_record_json(text: &str) -> Result<CachedSurface, String> {
    let file: SurfaceFile = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if file.version != PERSIST_VERSION {
        return Err(format!(
            "record format version {} (expected {PERSIST_VERSION})",
            file.version
        ));
    }
    validate_surface(CachedSurface {
        hash: file.hash.0,
        shape: file.shape,
        fingerprint: file.fingerprint,
        domain_lo: file.domain_lo,
        domain_hi: file.domain_hi,
        records: file.records,
        steps: file.steps,
        final_sup_change: file.final_sup_change,
        cost_seconds: file.cost_seconds,
    })
}

/// The semantic validation every decoded record passes regardless of
/// format: consistent shapes, a sane domain box, well-formed compressed
/// state records.
fn validate_surface(surface: CachedSurface) -> Result<CachedSurface, String> {
    let shape = surface.shape;
    if surface.records.len() != shape.num_states {
        return Err(format!(
            "{} state records for {} discrete states",
            surface.records.len(),
            shape.num_states
        ));
    }
    if surface.domain_lo.len() != shape.dim || surface.domain_hi.len() != shape.dim {
        return Err(format!(
            "domain box dims {}/{} do not match shape dim {}",
            surface.domain_lo.len(),
            surface.domain_hi.len(),
            shape.dim
        ));
    }
    for (lo, hi) in surface.domain_lo.iter().zip(&surface.domain_hi) {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("degenerate domain box [{lo}, {hi}]"));
        }
    }
    for (z, record) in surface.records.iter().enumerate() {
        record
            .validate(shape.dim, shape.ndofs)
            .map_err(|e| format!("state record {z}: {e}"))?;
    }
    Ok(surface)
}
