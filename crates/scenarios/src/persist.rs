//! The persistent, versioned, content-addressed policy-surface store.
//!
//! The in-memory [`SurfaceCache`](crate::SurfaceCache) loses every solved
//! surface at process exit; this module gives it a durable backing
//! directory so run N+1 of the same sweep does zero solves. Layout:
//!
//! ```text
//! <cache-dir>/
//!   manifest.json            # version + entry index (insertion order)
//!   surface-<16-hex>.json    # one record per surface, keyed by hash
//! ```
//!
//! The manifest is the index: one [`ManifestEntry`] per surface with the
//! hash, state-space shape, parameter fingerprint, and cost metadata —
//! everything lookups and cost estimation need *without* touching the
//! record files. Surfaces themselves are loaded lazily on first hit.
//!
//! Durability rules:
//!
//! * every file (manifest and records) is written atomically — serialized
//!   to a dot-prefixed temp file in the same directory, then renamed — so
//!   a crashed sweep never leaves a torn index or a half-written surface;
//! * an unknown manifest format version is skipped with a warning (the
//!   store starts empty), never a panic;
//! * a corrupt or truncated record file is skipped with a warning at load
//!   time, dropped from the index, and counted in the telemetry;
//! * eviction is LRU-by-insertion with configurable max-entries and
//!   max-bytes bounds ([`EvictionPolicy`]), applied on every deposit, so
//!   the directory provably never exceeds the configured budget.
//!
//! Concurrency: the index lives behind an `RwLock`, so any number of
//! readers can consult it simultaneously, and **record-file I/O happens
//! outside every lock**. The read path is: snapshot the [`ManifestEntry`]
//! under the read lock, release it, read + validate the record file with
//! no lock held, then hand the surface to the owning cache for promotion.
//! Deposits serialize against each other on a writer mutex (the manifest
//! rewrite must be ordered), but the record file itself is written before
//! the mutex is taken — concurrent readers never wait on a writer's disk
//! I/O, and vice versa. This removes the single-hot-path bottleneck the
//! serving front-end needs gone: N clients restoring N different surfaces
//! proceed in parallel.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use serde::{Deserialize, Serialize};

use hddm_core::StateRecord;

use crate::cache::{CachedSurface, ShapeKey};
use crate::hash::{fingerprint_distance, HashId};

/// Current on-disk format version of the manifest and record files.
pub const PERSIST_VERSION: u32 = 1;

/// The index file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Size bounds of a persistent store, enforced on every deposit by
/// evicting the oldest entries first (LRU-by-insertion). `None` means
/// unbounded in that dimension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Maximum number of persisted surfaces.
    pub max_entries: Option<usize>,
    /// Maximum total bytes of the persisted record files.
    pub max_bytes: Option<u64>,
}

/// One surface's row in the manifest index: everything a lookup needs to
/// decide exact/warm/miss — and a cost estimate — without reading the
/// record file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Scenario content hash (hex-encoded in JSON).
    pub hash: HashId,
    /// State-space shape of the cached surface.
    pub shape: ShapeKey,
    /// Parameter fingerprint of the producing scenario.
    pub fingerprint: Vec<f64>,
    /// Time-iteration steps the producing solve took.
    pub steps: usize,
    /// Measured wall-clock seconds of the producing solve.
    pub cost_seconds: f64,
    /// Size of the record file in bytes (the eviction currency).
    pub bytes: u64,
    /// Record file name, relative to the cache directory.
    pub file: String,
}

/// The parsed manifest (used for reading; writing streams borrowed
/// entries directly to avoid cloning the index).
#[derive(Clone, Debug, Deserialize)]
struct Manifest {
    version: u32,
    entries: Vec<ManifestEntry>,
}

/// The on-disk form of one cached surface (used for reading; writing
/// streams borrowed fields).
#[derive(Clone, Debug, Deserialize)]
struct SurfaceFile {
    version: u32,
    hash: HashId,
    shape: ShapeKey,
    fingerprint: Vec<f64>,
    domain_lo: Vec<f64>,
    domain_hi: Vec<f64>,
    records: Vec<StateRecord>,
    steps: usize,
    final_sup_change: f64,
    cost_seconds: f64,
}

fn warn(message: &str) {
    eprintln!("hddm-scenarios: warning: {message}");
}

/// Record file name for a hash.
pub fn surface_file_name(hash: u64) -> String {
    format!("surface-{}.json", HashId(hash))
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename. The dot-prefixed temp name can never be mistaken for a
/// record file, and a crash between the two steps leaves the previous
/// version of `path` intact. The temp name carries a process-wide counter
/// on top of the pid: record files are now written outside the store's
/// locks, so two threads depositing the same surface concurrently must
/// not collide on the temp path.
fn write_atomic(dir: &Path, name: &str, text: &str) -> Result<(), String> {
    static TMP_COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".tmp-{}-{unique}-{name}", std::process::id()));
    let target = dir.join(name);
    fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, &target).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), target.display())
    })?;
    Ok(())
}

/// The persistent backing store of a `SurfaceCache`: a cache directory,
/// its parsed manifest index, and the eviction policy.
///
/// Lock discipline (all internal — the owning cache never holds its own
/// shard locks across a store call):
///
/// * `index` (`RwLock`) — the manifest rows. Read-mostly; lookups and
///   cost estimation take the read lock, snapshot what they need, and
///   release before any file I/O.
/// * `writer` (`Mutex`) — serializes mutations (deposit, corrupt-entry
///   discard) so the manifest on disk is always the last writer's view.
///   Record-file writes happen *before* the writer lock is taken.
#[derive(Debug)]
pub(crate) struct Store {
    dir: PathBuf,
    policy: EvictionPolicy,
    index: RwLock<Vec<ManifestEntry>>,
    writer: Mutex<()>,
    evictions: AtomicUsize,
    skipped: AtomicUsize,
    poisonings: AtomicUsize,
}

impl Store {
    /// Opens (or initializes) a cache directory: creates it if missing,
    /// loads the manifest index, and sweeps leftover temp files from
    /// crashed writers. An unreadable, unparseable, or version-mismatched
    /// manifest is skipped with a warning — the store starts empty and
    /// the index is rewritten at the current version on the next deposit.
    /// Record files the index does not reference (crash leftovers, or the
    /// remains of a skipped manifest) are deleted, so they cannot leak
    /// past the eviction budget forever.
    pub fn open<P: AsRef<Path>>(dir: P, policy: EvictionPolicy) -> Result<Store, String> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;

        let mut entries = Vec::new();
        let mut skipped = 0usize;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            match fs::read_to_string(&manifest_path) {
                Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                    Ok(manifest) if manifest.version == PERSIST_VERSION => {
                        entries = manifest.entries;
                    }
                    Ok(manifest) => {
                        warn(&format!(
                            "cache manifest {} has unknown format version {} (expected \
                             {PERSIST_VERSION}); ignoring {} persisted entr(ies)",
                            manifest_path.display(),
                            manifest.version,
                            manifest.entries.len()
                        ));
                        // The now-unreferenced record files are counted
                        // (and deleted) by the sweep below.
                        skipped += 1;
                    }
                    Err(e) => {
                        warn(&format!(
                            "corrupt cache manifest {} ({e}); starting empty",
                            manifest_path.display()
                        ));
                        skipped += 1;
                    }
                },
                Err(e) => {
                    warn(&format!(
                        "unreadable cache manifest {} ({e}); starting empty",
                        manifest_path.display()
                    ));
                    skipped += 1;
                }
            }
        }

        // Sweep files the index does not account for: temp files from
        // crashed writers, and record files orphaned by a crash between
        // the record write and the manifest write — or by a skipped
        // manifest above. Without this, unindexed files would accumulate
        // outside the eviction budget forever.
        if let Ok(listing) = fs::read_dir(&dir) {
            for entry in listing.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                } else if name.starts_with("surface-")
                    && name.ends_with(".json")
                    && !entries.iter().any(|e| e.file == name)
                {
                    warn(&format!("removing unindexed cache record {name}"));
                    let _ = fs::remove_file(entry.path());
                    skipped += 1;
                }
            }
        }
        Ok(Store {
            dir,
            policy,
            index: RwLock::new(entries),
            writer: Mutex::new(()),
            evictions: AtomicUsize::new(0),
            skipped: AtomicUsize::new(skipped),
            poisonings: AtomicUsize::new(0),
        })
    }

    // Poisoned guards are recovered, cleared, and counted: the guarded
    // state (the index vector) is consistent at every point a panic can
    // interrupt it, so a crashing thread must not cascade. The count
    // rolls up into `CacheStats::lock_poisonings`.

    fn index_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<ManifestEntry>> {
        self.index.read().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.index.clear_poison();
            poisoned.into_inner()
        })
    }

    fn index_write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<ManifestEntry>> {
        self.index.write().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.index.clear_poison();
            poisoned.into_inner()
        })
    }

    fn writer_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            self.writer.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Poisoned store locks recovered over this store's lifetime.
    pub fn poisonings(&self) -> usize {
        self.poisonings.load(Ordering::Relaxed)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of persisted surfaces in the index.
    pub fn len(&self) -> usize {
        self.index_read().len()
    }

    /// Total bytes of the persisted record files per the index.
    pub fn total_bytes(&self) -> u64 {
        self.index_read().iter().map(|e| e.bytes).sum()
    }

    /// Entries evicted over this store's lifetime.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Corrupt / version-mismatched artifacts skipped over this store's
    /// lifetime.
    pub fn skipped(&self) -> usize {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Whether `hash` is currently indexed.
    pub fn contains(&self, hash: u64) -> bool {
        self.index_read().iter().any(|e| e.hash.0 == hash)
    }

    /// Snapshot of the index row for `hash`, if persisted. The clone is
    /// deliberate: the caller reads the record file *after* releasing the
    /// index lock.
    pub fn entry(&self, hash: u64) -> Option<ManifestEntry> {
        self.index_read().iter().find(|e| e.hash.0 == hash).cloned()
    }

    /// The nearest persisted same-shape neighbour within `radius` whose
    /// hash `exclude` does not claim (entries already promoted into
    /// memory were scanned there), per the manifest index alone — no file
    /// I/O, shared read lock only. Used by the warm-start lookup and cost
    /// estimation so both always pick the same neighbour.
    pub fn best_candidate<F: Fn(u64) -> bool>(
        &self,
        shape: ShapeKey,
        fingerprint: &[f64],
        radius: f64,
        exclude: F,
    ) -> Option<(f64, ManifestEntry)> {
        let index = self.index_read();
        let mut best: Option<(f64, &ManifestEntry)> = None;
        for entry in index.iter() {
            if entry.shape != shape || exclude(entry.hash.0) {
                continue;
            }
            let d = fingerprint_distance(&entry.fingerprint, fingerprint);
            if d <= radius && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, entry));
            }
        }
        best.map(|(d, entry)| (d, entry.clone()))
    }

    /// Reads and validates the record file for an index snapshot taken
    /// earlier. **Holds no lock** — this is the disk restore the serving
    /// front-end runs concurrently across threads. On failure the caller
    /// must [`Store::discard`] the entry.
    pub fn read_record(&self, entry: &ManifestEntry) -> Result<CachedSurface, String> {
        read_surface(&self.dir.join(&entry.file), entry)
    }

    /// Drops `hash` from the index (corrupt record file), deletes the
    /// file, counts the skip, and rewrites the manifest so the next
    /// process does not rediscover the dead row. Idempotent: a concurrent
    /// discard of the same hash is a no-op.
    pub fn discard(&self, hash: u64) {
        let _writer = self.writer_lock();
        let gone = {
            let mut index = self.index_write();
            match index.iter().position(|e| e.hash.0 == hash) {
                Some(pos) => index.remove(pos),
                None => return, // another thread already discarded it
            }
        };
        let _ = fs::remove_file(self.dir.join(&gone.file));
        self.skipped.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.write_manifest() {
            warn(&format!("failed to rewrite cache manifest: {e}"));
        }
    }

    /// Deposits a surface: writes its record file atomically (**before**
    /// taking any lock), then — under the writer mutex — updates the
    /// index, applies the eviction policy, and rewrites the manifest
    /// atomically. Returns the hashes of any evicted surfaces so the
    /// in-memory cache can drop them too.
    pub fn insert(&self, surface: &CachedSurface) -> Result<Vec<u64>, String> {
        let name = surface_file_name(surface.hash);
        let json = surface_json(surface);
        let bytes = json.len() as u64;
        // Record-file I/O outside every lock: the atomic temp+rename
        // means concurrent writers of the same hash race to an
        // interchangeable result (identical scenario ⇒ identical surface
        // up to cost telemetry), and readers never see a torn file.
        write_atomic(&self.dir, &name, &json)?;

        let entry = ManifestEntry {
            hash: HashId(surface.hash),
            shape: surface.shape,
            fingerprint: surface.fingerprint.clone(),
            steps: surface.steps,
            cost_seconds: surface.cost_seconds,
            bytes,
            file: name,
        };

        let _writer = self.writer_lock();
        let mut evicted = Vec::new();
        {
            let mut index = self.index_write();
            // Re-deposits of the same scenario replace in place (last
            // writer wins, like the in-memory map) and keep their
            // eviction slot.
            match index.iter_mut().find(|e| e.hash == entry.hash) {
                Some(slot) => *slot = entry,
                None => index.push(entry),
            }

            loop {
                let over_entries = self.policy.max_entries.is_some_and(|m| index.len() > m);
                let total: u64 = index.iter().map(|e| e.bytes).sum();
                let over_bytes = self.policy.max_bytes.is_some_and(|m| total > m);
                if index.is_empty() || !(over_entries || over_bytes) {
                    break;
                }
                let gone = index.remove(0);
                let _ = fs::remove_file(self.dir.join(&gone.file));
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted.push(gone.hash.0);
            }
        }

        // A budget smaller than a single surface evicts the deposit
        // itself: the directory bound still holds, but the surface must
        // not silently vanish from the in-memory tier too — that would
        // disable all caching. Keep it in memory (exclude it from the
        // evicted list) and say so.
        if let Some(pos) = evicted.iter().position(|&h| h == surface.hash) {
            warn(&format!(
                "cache budget is too small for a single surface ({bytes} bytes); \
                 surface {} stays in memory only",
                HashId(surface.hash)
            ));
            evicted.remove(pos);
        }

        self.write_manifest()?;
        Ok(evicted)
    }

    /// Rewrites the manifest atomically from the in-memory index.
    fn write_manifest(&self) -> Result<(), String> {
        let mut out = String::new();
        out.push('{');
        serde::write_key("version", &mut out);
        PERSIST_VERSION.serialize_json(&mut out);
        out.push(',');
        serde::write_key("entries", &mut out);
        self.index_read().serialize_json(&mut out);
        out.push('}');
        write_atomic(&self.dir, MANIFEST_FILE, &out)
    }
}

/// Serializes a surface to its on-disk JSON record (borrowed fields — no
/// clone of the record rows).
fn surface_json(surface: &CachedSurface) -> String {
    let mut out = String::new();
    out.push('{');
    serde::write_key("version", &mut out);
    PERSIST_VERSION.serialize_json(&mut out);
    out.push(',');
    serde::write_key("hash", &mut out);
    HashId(surface.hash).serialize_json(&mut out);
    out.push(',');
    serde::write_key("shape", &mut out);
    surface.shape.serialize_json(&mut out);
    out.push(',');
    serde::write_key("fingerprint", &mut out);
    surface.fingerprint.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_lo", &mut out);
    surface.domain_lo.serialize_json(&mut out);
    out.push(',');
    serde::write_key("domain_hi", &mut out);
    surface.domain_hi.serialize_json(&mut out);
    out.push(',');
    serde::write_key("records", &mut out);
    surface.records.serialize_json(&mut out);
    out.push(',');
    serde::write_key("steps", &mut out);
    surface.steps.serialize_json(&mut out);
    out.push(',');
    serde::write_key("final_sup_change", &mut out);
    surface.final_sup_change.serialize_json(&mut out);
    out.push(',');
    serde::write_key("cost_seconds", &mut out);
    surface.cost_seconds.serialize_json(&mut out);
    out.push('}');
    out
}

/// Reads and fully validates one record file against its index row.
fn read_surface(path: &Path, entry: &ManifestEntry) -> Result<CachedSurface, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let file: SurfaceFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if file.version != PERSIST_VERSION {
        return Err(format!(
            "record format version {} (expected {PERSIST_VERSION})",
            file.version
        ));
    }
    if file.hash != entry.hash {
        return Err(format!(
            "record hash {} does not match index hash {}",
            file.hash, entry.hash
        ));
    }
    if file.shape != entry.shape {
        return Err("record shape does not match index shape".into());
    }
    if file.fingerprint != entry.fingerprint {
        return Err("record fingerprint does not match index fingerprint".into());
    }
    let shape = file.shape;
    if file.records.len() != shape.num_states {
        return Err(format!(
            "{} state records for {} discrete states",
            file.records.len(),
            shape.num_states
        ));
    }
    if file.domain_lo.len() != shape.dim || file.domain_hi.len() != shape.dim {
        return Err(format!(
            "domain box dims {}/{} do not match shape dim {}",
            file.domain_lo.len(),
            file.domain_hi.len(),
            shape.dim
        ));
    }
    for (lo, hi) in file.domain_lo.iter().zip(&file.domain_hi) {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("degenerate domain box [{lo}, {hi}]"));
        }
    }
    for (z, record) in file.records.iter().enumerate() {
        record
            .validate(shape.dim, shape.ndofs)
            .map_err(|e| format!("state record {z}: {e}"))?;
    }
    Ok(CachedSurface {
        hash: file.hash.0,
        shape,
        fingerprint: file.fingerprint,
        domain_lo: file.domain_lo,
        domain_hi: file.domain_hi,
        records: file.records,
        steps: file.steps,
        final_sup_change: file.final_sup_change,
        cost_seconds: file.cost_seconds,
    })
}
