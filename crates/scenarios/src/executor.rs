//! The batch executor: runs a [`ScenarioSet`] through the time-iteration
//! driver, scheduling scenarios across the simulated heterogeneous fleet
//! (`hddm_cluster::hetero`) and across host threads
//! (`hddm_sched::parallel_for_init`), with the policy-surface cache
//! supplying exact hits and warm starts.
//!
//! Cost model feedback: the fleet assignment is computed from
//! per-scenario cost estimates. Before anything has run, the estimate is
//! an analytic point-count model; once the cache holds measured costs of
//! nearby scenarios, those replace the analytic guess — so a second
//! sweep's assignment reflects what the first sweep actually cost. The
//! report carries both the planned schedule (estimates) and the replay
//! of the measured costs, making the estimate error visible.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use hddm_asg::regular_grid_size;
use hddm_cluster::{mixed_fleet, schedule_with_map, Assignment, WorkerSpec};
use hddm_core::{DriverConfig, OlgStep, TimeIteration};
use hddm_kernels::KernelKind;
use hddm_sched::{parallel_for_init, PoolConfig};
use hddm_solver::NewtonOptions;

use crate::cache::{project_policy, Lookup, ShapeKey, SurfaceCache};
use crate::hash::{fingerprint, scenario_hash, HashId};
use crate::persist::EvictionPolicy;
use crate::report::{CacheKind, FleetSummary, ScenarioReport, SweepReport};
use crate::scenario::{Scenario, ScenarioSet};

/// Executor configuration: the simulated fleet the sweep is scheduled
/// onto, the host resources it actually runs with, and the (optional)
/// persistent policy-surface cache directory.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Simulated heterogeneous fleet the scenarios are assigned to.
    pub fleet: Vec<WorkerSpec>,
    /// Assignment policy over the fleet.
    pub assignment: Assignment,
    /// Host threads running scenarios concurrently (scenario-level
    /// `parallel_for`; each scenario's own point solves use
    /// `SolveSettings::solver_threads`).
    pub threads: usize,
    /// Interpolation kernel for policy evaluations.
    pub kernel: KernelKind,
    /// Whether nearby cached surfaces may seed warm starts.
    pub warm_start: bool,
    /// Persistent policy-surface cache directory. `None` keeps the cache
    /// purely in memory; `Some(dir)` makes [`ExecutorConfig::open_cache`]
    /// load the on-disk index at startup and write every solved surface
    /// through, so an identical sweep in a later process does zero
    /// solves.
    pub cache_dir: Option<PathBuf>,
    /// Size bounds of the persistent cache (LRU-by-insertion eviction);
    /// ignored without `cache_dir`.
    pub cache_eviction: EvictionPolicy,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            fleet: mixed_fleet(2, 2),
            assignment: Assignment::WorkStealing { chunk: 1 },
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            kernel: KernelKind::Avx2,
            warm_start: true,
            cache_dir: None,
            cache_eviction: EvictionPolicy::default(),
        }
    }
}

impl ExecutorConfig {
    /// A deterministic single-threaded executor: scenarios run in set
    /// order, so warm-start provenance is reproducible run to run.
    pub fn serial() -> ExecutorConfig {
        ExecutorConfig {
            threads: 1,
            ..ExecutorConfig::default()
        }
    }

    /// Opens the cache this configuration asks for: persistent (index
    /// loaded, surfaces lazily restored, deposits written through) when
    /// `cache_dir` is set, purely in-memory otherwise.
    pub fn open_cache(&self) -> Result<SurfaceCache, String> {
        match &self.cache_dir {
            Some(dir) => SurfaceCache::open_with(dir, self.cache_eviction),
            None => Ok(SurfaceCache::default()),
        }
    }
}

/// The scenario's state-space shape, derivable without solving the
/// steady state.
fn shape_of(scenario: &Scenario) -> ShapeKey {
    ShapeKey {
        dim: scenario.calibration.dim(),
        ndofs: scenario.calibration.ndofs(),
        num_states: scenario.calibration.num_states(),
    }
}

/// Analytic cost estimate in arbitrary reference units: grid points ×
/// discrete states × dof rows × step budget. Only relative magnitudes
/// matter to the assignment.
fn analytic_cost(scenario: &Scenario) -> f64 {
    let shape = shape_of(scenario);
    let points = regular_grid_size(shape.dim, scenario.solve.start_level) as f64;
    points * shape.num_states as f64 * shape.ndofs as f64 * scenario.solve.max_steps as f64 * 1e-6
}

/// Estimated cost of one scenario: the measured cost of the nearest
/// cached neighbour when available (the feedback path), otherwise the
/// analytic model.
fn estimate_cost(scenario: &Scenario, cache: &SurfaceCache) -> f64 {
    cache
        .estimated_cost(shape_of(scenario), &fingerprint(scenario))
        .unwrap_or_else(|| analytic_cost(scenario))
}

fn driver_config(scenario: &Scenario, kernel: KernelKind) -> DriverConfig {
    let s = &scenario.solve;
    DriverConfig {
        kernel,
        start_level: s.start_level,
        refine_epsilon: s.refine_epsilon,
        max_level: s.max_level,
        pool: PoolConfig {
            threads: s.solver_threads,
            grain: 1,
        },
        max_steps: s.max_steps,
        tolerance: s.tolerance,
        ..Default::default()
    }
}

/// Solves one scenario against the cache and returns its report (with
/// `worker` left for the caller to fill in). Converged surfaces are
/// deposited back into the cache, measured cost included.
fn solve_one(
    scenario: &Scenario,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<ScenarioReport, String> {
    let start = Instant::now();
    let hash = scenario_hash(scenario);
    let shape = shape_of(scenario);
    let fp = fingerprint(scenario);
    let tolerance = scenario.solve.tolerance;

    let looked_up = cache.lookup(hash, shape, &fp, config.warm_start);
    if let Lookup::Exact(surface) = &looked_up {
        // Identical scenario already solved: the surface is the answer.
        let grid_points = surface
            .records
            .iter()
            .map(|r| r.surplus.len() / shape.ndofs)
            .sum();
        return Ok(ScenarioReport {
            name: scenario.name.clone(),
            hash: HashId(hash),
            steps: 0,
            converged: true,
            final_sup_change: surface.final_sup_change,
            solver_failures: 0,
            grid_points,
            wall_seconds: start.elapsed().as_secs_f64(),
            cache: CacheKind::Exact,
            warm_source: None,
            worker: String::new(),
        });
    }

    let model = scenario.build_model()?;
    let newton = NewtonOptions {
        max_iterations: scenario.solve.newton_max_iterations,
        ..Default::default()
    };
    let step = OlgStep { model, newton };
    let dconfig = driver_config(scenario, config.kernel);

    let (mut ti, cache_tag, warm_source) = match looked_up {
        Lookup::Warm(surface) => match project_policy(
            &surface.restore_policy(),
            &step.model.lower,
            &step.model.upper,
            scenario.solve.start_level,
            config.kernel,
        ) {
            Ok(projected) => (
                TimeIteration::with_policy(step, dconfig, projected, 0),
                CacheKind::Warm,
                Some(HashId(surface.hash)),
            ),
            Err(e) => {
                // An incompatible cached surface (possible once surfaces
                // arrive from disk) must not abort the sweep: fall back
                // to the cold start the scenario would have had anyway.
                eprintln!(
                    "hddm-scenarios: warning: warm start of {:?} from surface \
                     {} failed ({e}); solving cold",
                    scenario.name,
                    HashId(surface.hash)
                );
                (TimeIteration::new(step, dconfig), CacheKind::Cold, None)
            }
        },
        Lookup::Miss => (TimeIteration::new(step, dconfig), CacheKind::Cold, None),
        Lookup::Exact(_) => unreachable!("exact hits return early"),
    };

    let reports = ti.run();
    let last = reports.last().expect("max_steps ≥ 1 yields ≥ 1 report");
    let converged = last.sup_change < tolerance;
    let wall = start.elapsed().as_secs_f64();
    if converged {
        cache.store_policy(
            hash,
            shape,
            fp,
            &ti.policy,
            reports.len(),
            last.sup_change,
            wall,
        );
    }
    Ok(ScenarioReport {
        name: scenario.name.clone(),
        hash: HashId(hash),
        steps: reports.len(),
        converged,
        final_sup_change: last.sup_change,
        solver_failures: reports.iter().map(|r| r.solver_failures).sum(),
        grid_points: ti.policy.points_per_state().iter().sum(),
        wall_seconds: wall,
        cache: cache_tag,
        warm_source,
        worker: String::new(),
    })
}

/// Runs a single scenario outside any sweep (cold-versus-warm
/// comparisons, CLI one-offs). The report's worker is `"local"`.
pub fn run_single(
    scenario: &Scenario,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<ScenarioReport, String> {
    scenario.validate()?;
    let mut report = solve_one(scenario, cache, config)?;
    report.worker = "local".into();
    Ok(report)
}

/// Runs a whole scenario set: estimates costs (cache feedback first,
/// analytic model otherwise), assigns scenarios to the simulated fleet,
/// executes them across host threads, then replays the schedule with the
/// measured costs. Returns the full [`SweepReport`].
pub fn run_set(
    set: &ScenarioSet,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<SweepReport, String> {
    if set.is_empty() {
        return Err("empty scenario set".into());
    }
    for scenario in &set.scenarios {
        scenario.validate()?;
    }
    if config.fleet.is_empty() {
        return Err("executor fleet is empty".into());
    }

    let estimates: Vec<f64> = set
        .scenarios
        .iter()
        .map(|s| estimate_cost(s, cache))
        .collect();
    let (planned, map) = schedule_with_map(&config.fleet, &estimates, config.assignment);
    let worker_names: Vec<String> = config.fleet.iter().map(|w| w.name.clone()).collect();

    let sweep_start = Instant::now();
    let n = set.len();
    let results: Mutex<Vec<Option<Result<ScenarioReport, String>>>> = Mutex::new(vec![None; n]);
    parallel_for_init(
        n,
        &PoolConfig {
            threads: config.threads,
            grain: 1,
        },
        || (),
        |(), i| {
            let mut result = solve_one(&set.scenarios[i], cache, config);
            if let Ok(report) = &mut result {
                report.worker = worker_names[map[i]].clone();
            }
            results.lock().unwrap()[i] = Some(result);
        },
    );
    let total_wall_seconds = sweep_start.elapsed().as_secs_f64();

    let mut scenarios = Vec::with_capacity(n);
    for (i, slot) in results.into_inner().unwrap().into_iter().enumerate() {
        let report =
            slot.unwrap_or_else(|| Err(format!("scenario {i} was never executed (pool bug)")))?;
        scenarios.push(report);
    }

    let measured: Vec<f64> = scenarios.iter().map(|s| s.wall_seconds).collect();
    let (replayed, _) = schedule_with_map(&config.fleet, &measured, config.assignment);

    let count = |kind: CacheKind| scenarios.iter().filter(|s| s.cache == kind).count();
    Ok(SweepReport {
        exact_hits: count(CacheKind::Exact),
        warm_starts: count(CacheKind::Warm),
        cold_solves: count(CacheKind::Cold),
        scenarios,
        planned: FleetSummary::new(worker_names.clone(), planned),
        replayed: FleetSummary::new(worker_names, replayed),
        cache_stats: cache.stats(),
        total_wall_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Knob;
    use hddm_olg::Calibration;

    fn base() -> Scenario {
        let mut s = Scenario::from_calibration("exec", Calibration::small(4, 3, 2, 0.03));
        s.solve.tolerance = 1e-6;
        s.solve.max_steps = 50;
        s
    }

    #[test]
    fn single_scenario_converges_and_populates_the_cache() {
        let cache = SurfaceCache::default();
        let report = run_single(&base(), &cache, &ExecutorConfig::serial()).unwrap();
        assert!(report.converged, "sup change {}", report.final_sup_change);
        assert_eq!(report.cache, CacheKind::Cold);
        assert!(report.steps > 0);
        assert_eq!(cache.stats().entries, 1);

        // Identical scenario again: exact hit, no solving.
        let again = run_single(&base(), &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(again.cache, CacheKind::Exact);
        assert_eq!(again.steps, 0);
        assert_eq!(again.warm_source, None);
    }

    #[test]
    fn warm_start_beats_cold_start_on_a_nearby_scenario() {
        let cache = SurfaceCache::default();
        let config = ExecutorConfig::serial();
        run_single(&base(), &cache, &config).unwrap();

        let mut nearby = base();
        Knob::Beta.apply(&mut nearby, 0.9525).unwrap();
        nearby.name = "exec/nearby".into();

        let warm = run_single(&nearby, &cache, &config).unwrap();
        assert_eq!(warm.cache, CacheKind::Warm, "expected a warm start");
        assert!(warm.converged);

        let cold_cache = SurfaceCache::default();
        let cold = run_single(&nearby, &cold_cache, &config).unwrap();
        assert_eq!(cold.cache, CacheKind::Cold);
        assert!(cold.converged);
        assert!(
            warm.steps < cold.steps,
            "warm {} vs cold {} steps",
            warm.steps,
            cold.steps
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let cache = SurfaceCache::default();
        let config = ExecutorConfig::serial();
        run_single(&base(), &cache, &config).unwrap();
        let mut nearby = base();
        Knob::Beta.apply(&mut nearby, 0.9525).unwrap();
        let cold_config = ExecutorConfig {
            warm_start: false,
            ..ExecutorConfig::serial()
        };
        let report = run_single(&nearby, &cache, &cold_config).unwrap();
        assert_eq!(report.cache, CacheKind::Cold);
        // Telemetry agrees with what was served: the disabled warm path
        // counts as a miss, not a warm hit.
        let stats = cache.stats();
        assert_eq!(stats.warm_hits, 0);
        assert_eq!(stats.misses, 2); // the seeding cold solve + this one
    }

    #[test]
    fn run_set_schedules_every_scenario_and_counts_cache_traffic() {
        let cache = SurfaceCache::default();
        let set =
            ScenarioSet::grid(&base(), &[(Knob::Beta, vec![0.949, 0.95, 0.951, 0.952])]).unwrap();
        let report = run_set(&set, &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(report.scenarios.len(), 4);
        assert!(report.all_converged());
        // Serial execution: the first scenario is cold, the rest warm
        // start off the growing cache.
        assert_eq!(report.cold_solves, 1);
        assert_eq!(report.warm_starts, 3);
        assert_eq!(report.exact_hits, 0);
        // Every scenario is attributed to a fleet worker.
        let names: std::collections::HashSet<_> = report.planned.workers.iter().cloned().collect();
        for s in &report.scenarios {
            assert!(names.contains(&s.worker), "unknown worker {:?}", s.worker);
        }
        assert_eq!(report.planned.schedule.tasks.iter().sum::<usize>(), 4);
        // Re-running the identical set is all exact hits.
        let second = run_set(&set, &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(second.exact_hits, 4);
        assert_eq!(second.cold_solves, 0);
    }

    #[test]
    fn cost_feedback_changes_the_estimates_after_a_sweep() {
        let cache = SurfaceCache::default();
        let scenario = base();
        let analytic = estimate_cost(&scenario, &cache);
        run_single(&scenario, &cache, &ExecutorConfig::serial()).unwrap();
        let fed_back = estimate_cost(&scenario, &cache);
        // The measured wall clock of the real solve replaces the
        // analytic unit-model estimate.
        assert_ne!(analytic.to_bits(), fed_back.to_bits());
        assert!(fed_back > 0.0);
    }

    #[test]
    fn empty_sets_and_empty_fleets_are_rejected() {
        let cache = SurfaceCache::default();
        let err = run_set(
            &ScenarioSet { scenarios: vec![] },
            &cache,
            &ExecutorConfig::serial(),
        )
        .unwrap_err();
        assert!(err.contains("empty"));
        let err = run_set(
            &ScenarioSet::single(base()),
            &cache,
            &ExecutorConfig {
                fleet: vec![],
                ..ExecutorConfig::serial()
            },
        )
        .unwrap_err();
        assert!(err.contains("fleet"));
    }
}
