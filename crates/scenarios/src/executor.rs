//! The batch executor: runs a [`ScenarioSet`] through the time-iteration
//! driver, scheduling scenarios across the simulated heterogeneous fleet
//! (`hddm_cluster::hetero`) and across host threads
//! (`hddm_sched::parallel_for_init`), with the policy-surface cache
//! supplying exact hits and warm starts.
//!
//! Two entry points:
//!
//! * [`run_set`] — the one-shot sweep: execute the whole set, block, and
//!   return the full [`SweepReport`];
//! * [`run_batch`] — the incremental form the serving front-end builds
//!   on: accept a batch, return immediately with a [`BatchHandle`], and
//!   stream per-scenario results as they complete ([`BatchHandle::recv`]);
//!   [`BatchHandle::join`] waits for the rest and assembles the same
//!   [`SweepReport`] `run_set` produces (`run_set` *is*
//!   `run_batch(...)` + `join`).
//!
//! Result collection is lock-free on the hot path: each pool worker owns
//! a cloned channel sender (via `parallel_for_init`'s per-worker state)
//! and sends `(index, result)` as each scenario finishes — no shared
//! `Mutex<Vec<...>>` serializing completions. Failures are typed
//! ([`ExecutorError`]), never bare strings.
//!
//! Cost model feedback: the fleet assignment is computed from
//! per-scenario cost estimates. Before anything has run, the estimate is
//! an analytic point-count model; once the cache holds measured costs of
//! nearby scenarios, those replace the analytic guess — so a second
//! sweep's assignment reflects what the first sweep actually cost. The
//! report carries both the planned schedule (estimates) and the replay
//! of the measured costs, making the estimate error visible.

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use hddm_asg::regular_grid_size;
use hddm_cluster::{mixed_fleet, schedule_with_map, Assignment, WorkerSpec};
use hddm_core::{DriverConfig, OlgStep, TimeIteration};
use hddm_gpu::ExecutionBackend;
use hddm_kernels::KernelKind;
use hddm_sched::{parallel_for_init, PoolConfig};
use hddm_solver::NewtonOptions;
use hddm_telemetry::Registry;

use crate::cache::{project_policy_with, Lookup, ShapeKey, SurfaceCache};
use crate::hash::{fingerprint, scenario_hash, HashId};
use crate::persist::EvictionPolicy;
use crate::report::{CacheKind, FleetSummary, ScenarioReport, SweepReport};
use crate::scenario::{Scenario, ScenarioSet};

/// One streamed completion: the scenario's index within its set plus its
/// result.
type BatchItem = (usize, Result<ScenarioReport, ExecutorError>);

/// Why the executor could not run (or finish) a scenario or a set.
/// Typed so callers — the serving front-end above all — can route each
/// failure: reject the request, fail one ticket, or fall back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutorError {
    /// The scenario set contained no scenarios.
    EmptySet,
    /// The simulated fleet contained no workers.
    EmptyFleet,
    /// A scenario failed validation before execution.
    InvalidScenario {
        /// Display name of the offending scenario.
        name: String,
        /// The validation diagnostic.
        reason: String,
    },
    /// The scenario's OLG model could not be built (steady-state /
    /// calibration failure at execution time).
    Model {
        /// Display name of the offending scenario.
        name: String,
        /// The model-construction diagnostic.
        reason: String,
    },
    /// A pool worker died without delivering this scenario's result
    /// (a bug or a panic in the worker).
    MissingResult {
        /// Index of the undelivered scenario within its set.
        index: usize,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorError::EmptySet => write!(f, "empty scenario set"),
            ExecutorError::EmptyFleet => write!(f, "executor fleet is empty"),
            ExecutorError::InvalidScenario { name, reason } => {
                write!(f, "invalid scenario {name:?}: {reason}")
            }
            ExecutorError::Model { name, reason } => {
                write!(f, "model build failed for scenario {name:?}: {reason}")
            }
            ExecutorError::MissingResult { index } => {
                write!(f, "scenario {index} was never executed (worker lost)")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Executor configuration: the simulated fleet the sweep is scheduled
/// onto, the host resources it actually runs with, and the (optional)
/// persistent policy-surface cache directory.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Simulated heterogeneous fleet the scenarios are assigned to.
    pub fleet: Vec<WorkerSpec>,
    /// Assignment policy over the fleet.
    pub assignment: Assignment,
    /// Host threads running scenarios concurrently (scenario-level
    /// `parallel_for`; each scenario's own point solves use
    /// `SolveSettings::solver_threads`).
    pub threads: usize,
    /// Interpolation kernel for policy evaluations.
    pub kernel: KernelKind,
    /// Which engine evaluates batched `PointBlock` calls (warm-start
    /// projection, driver hierarchization/change measurement). The GPU
    /// variant shares one device pool across every scenario the
    /// executor runs, so a served surface is uploaded once and re-used.
    pub backend: ExecutionBackend,
    /// Whether nearby cached surfaces may seed warm starts.
    pub warm_start: bool,
    /// Persistent policy-surface cache directory. `None` keeps the cache
    /// purely in memory; `Some(dir)` makes [`ExecutorConfig::open_cache`]
    /// load the on-disk index at startup and write every solved surface
    /// through, so an identical sweep in a later process does zero
    /// solves.
    pub cache_dir: Option<PathBuf>,
    /// Size bounds of the persistent cache (LRU-by-insertion eviction);
    /// ignored without `cache_dir`.
    pub cache_eviction: EvictionPolicy,
    /// Registry receiving driver phase spans (`hddm_solve_*_seconds`) and
    /// per-scenario solve timings. `None` (the default) routes them to the
    /// cache's own registry, so one snapshot covers cache and solve
    /// activity together.
    pub telemetry: Option<Registry>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            fleet: mixed_fleet(2, 2),
            assignment: Assignment::WorkStealing { chunk: 1 },
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            kernel: KernelKind::Avx2,
            backend: ExecutionBackend::Cpu,
            warm_start: true,
            cache_dir: None,
            cache_eviction: EvictionPolicy::default(),
            telemetry: None,
        }
    }
}

impl ExecutorConfig {
    /// A deterministic single-threaded executor: scenarios run in set
    /// order, so warm-start provenance is reproducible run to run.
    pub fn serial() -> ExecutorConfig {
        ExecutorConfig {
            threads: 1,
            ..ExecutorConfig::default()
        }
    }

    /// Opens the cache this configuration asks for: persistent (index
    /// loaded, surfaces lazily restored, deposits written through) when
    /// `cache_dir` is set, purely in-memory otherwise.
    pub fn open_cache(&self) -> Result<SurfaceCache, String> {
        match &self.cache_dir {
            Some(dir) => SurfaceCache::open_with(dir, self.cache_eviction),
            None => Ok(SurfaceCache::default()),
        }
    }
}

/// The scenario's state-space shape ([`ShapeKey::of`] — the shared
/// derivation the serving front-end uses too).
fn shape_of(scenario: &Scenario) -> ShapeKey {
    ShapeKey::of(scenario)
}

/// Analytic cost estimate in arbitrary reference units: grid points ×
/// discrete states × dof rows × step budget. Only relative magnitudes
/// matter to the assignment.
fn analytic_cost(scenario: &Scenario) -> f64 {
    let shape = shape_of(scenario);
    let points = regular_grid_size(shape.dim, scenario.solve.start_level) as f64;
    points * shape.num_states as f64 * shape.ndofs as f64 * scenario.solve.max_steps as f64 * 1e-6
}

/// Estimated cost of one scenario: the measured cost of the nearest
/// cached neighbour when available (the feedback path), otherwise the
/// analytic model.
fn estimate_cost(scenario: &Scenario, cache: &SurfaceCache) -> f64 {
    cache
        .estimated_cost(shape_of(scenario), &fingerprint(scenario))
        .unwrap_or_else(|| analytic_cost(scenario))
}

fn driver_config(
    scenario: &Scenario,
    kernel: KernelKind,
    backend: ExecutionBackend,
    telemetry: Registry,
) -> DriverConfig {
    let s = &scenario.solve;
    DriverConfig {
        kernel,
        backend,
        telemetry: Some(telemetry),
        start_level: s.start_level,
        refine_epsilon: s.refine_epsilon,
        max_level: s.max_level,
        pool: PoolConfig {
            threads: s.solver_threads,
            grain: 1,
        },
        max_steps: s.max_steps,
        tolerance: s.tolerance,
        ..Default::default()
    }
}

/// Solves one scenario against the cache and returns its report (with
/// `worker` left for the caller to fill in). Converged surfaces are
/// deposited back into the cache, measured cost included.
fn solve_one(
    scenario: &Scenario,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<ScenarioReport, ExecutorError> {
    let start = Instant::now();
    let hash = scenario_hash(scenario);
    let shape = shape_of(scenario);
    let fp = fingerprint(scenario);
    let tolerance = scenario.solve.tolerance;

    let looked_up = cache.lookup(hash, shape, &fp, config.warm_start);
    if let Lookup::Exact(surface) = &looked_up {
        // Identical scenario already solved: the surface is the answer.
        return Ok(ScenarioReport::from_exact_hit(
            &scenario.name,
            surface,
            start.elapsed().as_secs_f64(),
        ));
    }

    let model = scenario
        .build_model()
        .map_err(|reason| ExecutorError::Model {
            name: scenario.name.clone(),
            reason,
        })?;
    let newton = NewtonOptions {
        max_iterations: scenario.solve.newton_max_iterations,
        ..Default::default()
    };
    let step = OlgStep { model, newton };
    let registry = config
        .telemetry
        .clone()
        .unwrap_or_else(|| cache.registry().clone());
    let dconfig = driver_config(
        scenario,
        config.kernel,
        config.backend.clone(),
        registry.clone(),
    );

    let (mut ti, cache_tag, warm_source) = match looked_up {
        Lookup::Warm(surface) => match project_policy_with(
            &surface.restore_policy(),
            &step.model.lower,
            &step.model.upper,
            scenario.solve.start_level,
            config.kernel,
            &config.backend,
        ) {
            Ok(projected) => (
                TimeIteration::with_policy(step, dconfig, projected, 0),
                CacheKind::Warm,
                Some(HashId(surface.hash)),
            ),
            Err(e) => {
                // An incompatible cached surface (possible once surfaces
                // arrive from disk) must not abort the sweep: fall back
                // to the cold start the scenario would have had anyway.
                eprintln!(
                    "hddm-scenarios: warning: warm start of {:?} from surface \
                     {} failed ({e}); solving cold",
                    scenario.name,
                    HashId(surface.hash)
                );
                (TimeIteration::new(step, dconfig), CacheKind::Cold, None)
            }
        },
        Lookup::Miss => (TimeIteration::new(step, dconfig), CacheKind::Cold, None),
        Lookup::Exact(_) => unreachable!("exact hits return early"),
    };

    let reports = ti.run();
    let last = reports.last().expect("max_steps ≥ 1 yields ≥ 1 report");
    let converged = last.sup_change < tolerance;
    let wall = start.elapsed().as_secs_f64();
    registry
        .histogram("hddm_solve_scenario_seconds")
        .record(wall);
    if converged {
        cache.store_policy(
            hash,
            shape,
            fp,
            &ti.policy,
            reports.len(),
            last.sup_change,
            wall,
        );
    }
    Ok(ScenarioReport {
        name: scenario.name.clone(),
        hash: HashId(hash),
        steps: reports.len(),
        converged,
        final_sup_change: last.sup_change,
        solver_failures: reports.iter().map(|r| r.solver_failures).sum(),
        grid_points: ti.policy.points_per_state().iter().sum(),
        wall_seconds: wall,
        cache: cache_tag,
        warm_source,
        worker: String::new(),
    })
}

/// Runs a single scenario outside any sweep (cold-versus-warm
/// comparisons, CLI one-offs). The report's worker is `"local"`.
pub fn run_single(
    scenario: &Scenario,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<ScenarioReport, ExecutorError> {
    scenario
        .validate()
        .map_err(|reason| ExecutorError::InvalidScenario {
            name: scenario.name.clone(),
            reason,
        })?;
    let mut report = solve_one(scenario, cache, config)?;
    report.worker = "local".into();
    Ok(report)
}

/// A dispatched batch: per-scenario results stream out of
/// [`BatchHandle::recv`] as pool workers complete them (in completion
/// order, not set order); [`BatchHandle::join`] waits for the rest and
/// assembles the full [`SweepReport`]. Dropping the handle waits for the
/// batch to finish (results are discarded).
pub struct BatchHandle {
    rx: Receiver<BatchItem>,
    slots: Vec<Option<Result<ScenarioReport, ExecutorError>>>,
    delivered: usize,
    planned: FleetSummary,
    fleet: Vec<WorkerSpec>,
    assignment: Assignment,
    cache: SurfaceCache,
    started: Instant,
    worker: Option<JoinHandle<()>>,
}

impl BatchHandle {
    /// Number of scenarios in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch is empty (never true: empty sets are rejected).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The fleet schedule planned from the pre-run cost estimates.
    pub fn planned(&self) -> &FleetSummary {
        &self.planned
    }

    /// The next completed scenario, blocking until one finishes:
    /// `(index within the set, its result)`. `None` once every result
    /// has been delivered — or when the executor thread died without
    /// delivering the rest (the missing ones surface as
    /// [`ExecutorError::MissingResult`] from [`BatchHandle::join`]).
    pub fn recv(&mut self) -> Option<BatchItem> {
        if self.delivered == self.slots.len() {
            return None;
        }
        match self.rx.recv() {
            Ok((i, result)) => {
                self.slots[i] = Some(result.clone());
                self.delivered += 1;
                Some((i, result))
            }
            Err(_) => None, // executor thread gone; join() reports the holes
        }
    }

    /// Waits for every remaining scenario and assembles the
    /// [`SweepReport`] (identical to what [`run_set`] returns). The first
    /// per-scenario error in set order fails the whole batch, matching
    /// the historical whole-set semantics; callers that want per-scenario
    /// error routing stream through [`BatchHandle::recv`] instead.
    pub fn join(mut self) -> Result<SweepReport, ExecutorError> {
        while self.recv().is_some() {}
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let total_wall_seconds = self.started.elapsed().as_secs_f64();

        let mut scenarios = Vec::with_capacity(self.slots.len());
        for (i, slot) in std::mem::take(&mut self.slots).into_iter().enumerate() {
            match slot {
                Some(Ok(report)) => scenarios.push(report),
                Some(Err(e)) => return Err(e),
                None => return Err(ExecutorError::MissingResult { index: i }),
            }
        }

        let measured: Vec<f64> = scenarios.iter().map(|s| s.wall_seconds).collect();
        let (replayed, _) = schedule_with_map(&self.fleet, &measured, self.assignment);
        let worker_names: Vec<String> = self.fleet.iter().map(|w| w.name.clone()).collect();

        let count = |kind: CacheKind| scenarios.iter().filter(|s| s.cache == kind).count();
        Ok(SweepReport {
            exact_hits: count(CacheKind::Exact),
            warm_starts: count(CacheKind::Warm),
            cold_solves: count(CacheKind::Cold),
            scenarios,
            planned: self.planned.clone(),
            replayed: FleetSummary::new(worker_names, replayed),
            cache_stats: self.cache.stats(),
            total_wall_seconds,
        })
    }
}

impl Drop for BatchHandle {
    fn drop(&mut self) {
        // Never leak a running executor thread: drain whatever is still
        // coming and join. A panic in the worker is swallowed here (the
        // handle is being discarded); `join()` propagates it instead.
        while self.delivered < self.slots.len() && self.rx.recv().is_ok() {
            self.delivered += 1;
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Dispatches a scenario batch to the pool and returns immediately with
/// a [`BatchHandle`] streaming per-scenario results. This is the
/// incremental entry point the serving front-end coalesces micro-batches
/// onto; [`run_set`] is the blocking wrapper.
///
/// Validates the whole batch up front (typed [`ExecutorError`]s), plans
/// the fleet assignment from current cost estimates, then executes on a
/// detached worker thread running the scenario-level pool.
pub fn run_batch(
    set: ScenarioSet,
    cache: SurfaceCache,
    config: ExecutorConfig,
) -> Result<BatchHandle, ExecutorError> {
    if set.is_empty() {
        return Err(ExecutorError::EmptySet);
    }
    for scenario in &set.scenarios {
        scenario
            .validate()
            .map_err(|reason| ExecutorError::InvalidScenario {
                name: scenario.name.clone(),
                reason,
            })?;
    }
    if config.fleet.is_empty() {
        return Err(ExecutorError::EmptyFleet);
    }

    let estimates: Vec<f64> = set
        .scenarios
        .iter()
        .map(|s| estimate_cost(s, &cache))
        .collect();
    let (planned, map) = schedule_with_map(&config.fleet, &estimates, config.assignment);
    let worker_names: Vec<String> = config.fleet.iter().map(|w| w.name.clone()).collect();
    let planned = FleetSummary::new(worker_names.clone(), planned);

    let n = set.len();
    let (tx, rx): (Sender<BatchItem>, Receiver<BatchItem>) = channel();

    let started = Instant::now();
    let fleet = config.fleet.clone();
    let assignment = config.assignment;
    let thread_cache = cache.clone();
    let worker = std::thread::spawn(move || {
        let pool = PoolConfig {
            threads: config.threads,
            grain: 1,
        };
        // Each pool worker owns a cloned sender (per-worker init state):
        // completions stream out lock-free instead of serializing on a
        // shared results mutex.
        parallel_for_init(
            n,
            &pool,
            || tx.clone(),
            |tx, i| {
                let mut result = solve_one(&set.scenarios[i], &thread_cache, &config);
                if let Ok(report) = &mut result {
                    report.worker = worker_names[map[i]].clone();
                }
                let _ = tx.send((i, result));
            },
        );
    });

    Ok(BatchHandle {
        rx,
        slots: vec![None; n],
        delivered: 0,
        planned,
        fleet,
        assignment,
        cache,
        started,
        worker: Some(worker),
    })
}

/// Runs a whole scenario set: estimates costs (cache feedback first,
/// analytic model otherwise), assigns scenarios to the simulated fleet,
/// executes them across host threads, then replays the schedule with the
/// measured costs. Returns the full [`SweepReport`]. Equivalent to
/// [`run_batch`] followed by [`BatchHandle::join`].
pub fn run_set(
    set: &ScenarioSet,
    cache: &SurfaceCache,
    config: &ExecutorConfig,
) -> Result<SweepReport, ExecutorError> {
    run_batch(set.clone(), cache.clone(), config.clone())?.join()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Knob;
    use hddm_olg::Calibration;

    fn base() -> Scenario {
        let mut s = Scenario::from_calibration("exec", Calibration::small(4, 3, 2, 0.03));
        s.solve.tolerance = 1e-6;
        s.solve.max_steps = 50;
        s
    }

    #[test]
    fn single_scenario_converges_and_populates_the_cache() {
        let cache = SurfaceCache::default();
        let report = run_single(&base(), &cache, &ExecutorConfig::serial()).unwrap();
        assert!(report.converged, "sup change {}", report.final_sup_change);
        assert_eq!(report.cache, CacheKind::Cold);
        assert!(report.steps > 0);
        assert_eq!(cache.stats().entries, 1);

        // Identical scenario again: exact hit, no solving.
        let again = run_single(&base(), &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(again.cache, CacheKind::Exact);
        assert_eq!(again.steps, 0);
        assert_eq!(again.warm_source, None);
    }

    #[test]
    fn warm_start_beats_cold_start_on_a_nearby_scenario() {
        let cache = SurfaceCache::default();
        let config = ExecutorConfig::serial();
        run_single(&base(), &cache, &config).unwrap();

        let mut nearby = base();
        Knob::Beta.apply(&mut nearby, 0.9525).unwrap();
        nearby.name = "exec/nearby".into();

        let warm = run_single(&nearby, &cache, &config).unwrap();
        assert_eq!(warm.cache, CacheKind::Warm, "expected a warm start");
        assert!(warm.converged);

        let cold_cache = SurfaceCache::default();
        let cold = run_single(&nearby, &cold_cache, &config).unwrap();
        assert_eq!(cold.cache, CacheKind::Cold);
        assert!(cold.converged);
        assert!(
            warm.steps < cold.steps,
            "warm {} vs cold {} steps",
            warm.steps,
            cold.steps
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let cache = SurfaceCache::default();
        let config = ExecutorConfig::serial();
        run_single(&base(), &cache, &config).unwrap();
        let mut nearby = base();
        Knob::Beta.apply(&mut nearby, 0.9525).unwrap();
        let cold_config = ExecutorConfig {
            warm_start: false,
            ..ExecutorConfig::serial()
        };
        let report = run_single(&nearby, &cache, &cold_config).unwrap();
        assert_eq!(report.cache, CacheKind::Cold);
        // Telemetry agrees with what was served: the disabled warm path
        // counts as a miss, not a warm hit.
        let stats = cache.stats();
        assert_eq!(stats.warm_hits, 0);
        assert_eq!(stats.misses, 2); // the seeding cold solve + this one
    }

    #[test]
    fn run_set_schedules_every_scenario_and_counts_cache_traffic() {
        let cache = SurfaceCache::default();
        let set =
            ScenarioSet::grid(&base(), &[(Knob::Beta, vec![0.949, 0.95, 0.951, 0.952])]).unwrap();
        let report = run_set(&set, &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(report.scenarios.len(), 4);
        assert!(report.all_converged());
        // Serial execution: the first scenario is cold, the rest warm
        // start off the growing cache.
        assert_eq!(report.cold_solves, 1);
        assert_eq!(report.warm_starts, 3);
        assert_eq!(report.exact_hits, 0);
        // Every scenario is attributed to a fleet worker.
        let names: std::collections::HashSet<_> = report.planned.workers.iter().cloned().collect();
        for s in &report.scenarios {
            assert!(names.contains(&s.worker), "unknown worker {:?}", s.worker);
        }
        assert_eq!(report.planned.schedule.tasks.iter().sum::<usize>(), 4);
        // Re-running the identical set is all exact hits.
        let second = run_set(&set, &cache, &ExecutorConfig::serial()).unwrap();
        assert_eq!(second.exact_hits, 4);
        assert_eq!(second.cold_solves, 0);
    }

    #[test]
    fn run_batch_streams_results_as_they_complete() {
        let cache = SurfaceCache::default();
        let set = ScenarioSet::grid(&base(), &[(Knob::Beta, vec![0.949, 0.95, 0.951])]).unwrap();
        let mut handle = run_batch(set.clone(), cache.clone(), ExecutorConfig::serial()).unwrap();
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.planned().schedule.tasks.iter().sum::<usize>(), 3);

        let mut seen = Vec::new();
        while let Some((i, result)) = handle.recv() {
            let report = result.unwrap();
            assert!(report.converged);
            assert_eq!(report.name, set.scenarios[i].name);
            seen.push(i);
        }
        assert_eq!(seen.len(), 3);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "every index delivered exactly once");

        // join() after streaming still assembles the aggregate report.
        let report = handle.join().unwrap();
        assert_eq!(report.scenarios.len(), 3);
        assert!(report.all_converged());
        assert_eq!(report.cold_solves + report.warm_starts, 3);
    }

    #[test]
    fn cost_feedback_changes_the_estimates_after_a_sweep() {
        let cache = SurfaceCache::default();
        let scenario = base();
        let analytic = estimate_cost(&scenario, &cache);
        run_single(&scenario, &cache, &ExecutorConfig::serial()).unwrap();
        let fed_back = estimate_cost(&scenario, &cache);
        // The measured wall clock of the real solve replaces the
        // analytic unit-model estimate.
        assert_ne!(analytic.to_bits(), fed_back.to_bits());
        assert!(fed_back > 0.0);
    }

    #[test]
    fn empty_sets_and_empty_fleets_are_rejected_with_typed_errors() {
        let cache = SurfaceCache::default();
        let err = run_set(
            &ScenarioSet { scenarios: vec![] },
            &cache,
            &ExecutorConfig::serial(),
        )
        .unwrap_err();
        assert_eq!(err, ExecutorError::EmptySet);
        assert!(err.to_string().contains("empty"));
        let err = run_set(
            &ScenarioSet::single(base()),
            &cache,
            &ExecutorConfig {
                fleet: vec![],
                ..ExecutorConfig::serial()
            },
        )
        .unwrap_err();
        assert_eq!(err, ExecutorError::EmptyFleet);
        assert!(err.to_string().contains("fleet"));

        // Invalid scenarios are named in the typed error.
        let mut bad = base();
        bad.solve.tolerance = -1.0;
        let err = run_single(&bad, &cache, &ExecutorConfig::serial()).unwrap_err();
        match err {
            ExecutorError::InvalidScenario { name, reason } => {
                assert_eq!(name, "exec");
                assert!(reason.contains("tolerance"), "{reason}");
            }
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }
}
