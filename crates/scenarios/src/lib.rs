//! # hddm-scenarios — batched multi-calibration experiment runner
//!
//! The paper solves *one* calibrated OLG economy per run. This crate turns
//! the solver into a scenario engine in the spirit of GPU-accelerated
//! simulation-optimization fleets: define a family of counterfactuals
//! (calibration overrides, shock/Markov variants, box-policy reforms,
//! refinement + solver settings), batch them through the time-iteration
//! driver over the simulated heterogeneous fleet, and reuse solved policy
//! surfaces across nearby scenarios instead of restarting every solve from
//! the constant steady-state guess.
//!
//! * [`scenario`] — the [`Scenario`] type plus [`ScenarioSet`] builders
//!   for cartesian grid sweeps and seeded Monte-Carlo sweeps over
//!   [`hddm_olg::Calibration`];
//! * [`hash`] — a deterministic, platform-stable content hash of
//!   everything that affects a scenario's solution (FNV-1a over canonical
//!   little-endian bit patterns), the cache key;
//! * [`cache`] — the content-addressed policy-surface cache: solved
//!   [`hddm_core::PolicySet`] rows flattened through the `hddm_compress`
//!   pipeline ([`hddm_core::StateRecord`]), exact-hit reuse, and
//!   nearest-neighbour warm starts projected onto the new scenario's
//!   domain box;
//! * [`persist`] — the versioned persistent backing store: a cache
//!   directory with a `manifest.json` index and one atomically-written
//!   JSON record per surface, lazy restoration, LRU-by-insertion
//!   eviction, and corrupt-artifact skipping — run N+1 of the same sweep
//!   does zero solves;
//! * [`executor`] — the batch executor: per-scenario cost estimates
//!   (fed back from measured costs of completed scenarios), fleet
//!   assignment via [`hddm_cluster::hetero::schedule_with_map`], and
//!   host-side execution through [`hddm_sched::parallel_for_init`];
//! * [`report`] — per-scenario and fleet-level diagnostics
//!   ([`ScenarioReport`], [`SweepReport`]) serialized to JSON through the
//!   serde shim (bit-exact `f64`, the checkpoint convention).
//!
//! ```
//! use hddm_scenarios::{ExecutorConfig, Scenario, ScenarioSet, SurfaceCache, Knob};
//! use hddm_olg::Calibration;
//!
//! let base = Scenario::from_calibration("demo", Calibration::small(4, 3, 2, 0.03));
//! let set = ScenarioSet::grid(&base, &[(Knob::Beta, vec![0.94, 0.95])]).unwrap();
//! let cache = SurfaceCache::default();
//! let report = hddm_scenarios::run_set(&set, &cache, &ExecutorConfig::serial()).unwrap();
//! assert!(report.all_converged());
//! assert_eq!(report.scenarios.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod hash;
pub mod persist;
pub mod report;
pub mod scenario;

pub use cache::{
    project_policy_with, CacheStats, CachedSurface, Lookup, NeighbourInfo, ProjectionError,
    RestoreHook, ShapeKey, SurfaceCache,
};
pub use executor::{run_batch, run_set, run_single, BatchHandle, ExecutorConfig, ExecutorError};
pub use hash::{
    fingerprint, fingerprint_distance, fingerprint_distances, scenario_hash, HashId, ScenarioHasher,
};
pub use persist::{EvictionPolicy, ManifestEntry, MANIFEST_FILE, PERSIST_VERSION};
pub use report::{CacheKind, FleetSummary, ScenarioReport, SweepReport};
pub use scenario::{Knob, Scenario, ScenarioSet, SolveSettings};
