//! The content-addressed policy-surface cache.
//!
//! Every converged scenario solve deposits its policy surface — one
//! compressed interpolant per discrete state, flattened through the
//! `hddm_compress` pipeline into [`StateRecord`] rows — keyed by the
//! deterministic scenario hash. A later solve of the *same* scenario is
//! an exact hit and skips the solver entirely; a solve of a *nearby*
//! scenario (same state-space shape, close parameter fingerprint) warm
//! starts from the cached surface projected onto its own domain box
//! instead of the constant steady-state guess, cutting the
//! time-iteration count.
//!
//! Measured solve costs ride along on each entry, so the executor's
//! fleet assignment improves as the cache fills (cost estimates are fed
//! back from actual runs of nearby scenarios).
//!
//! ## Concurrency architecture
//!
//! The cache is a cheaply clonable handle (`Arc` inside) over a **sharded
//! read path**: entries live in `RwLock`-guarded shards selected by hash,
//! so concurrent exact-hit readers only contend when they hit the same
//! shard — and even then only on a shared read lock. Record-file I/O for
//! lazy disk restores happens **outside every lock** (see
//! [`crate::persist`]); a per-entry in-flight guard ensures each surface
//! is restored from disk at most once no matter how many readers race for
//! it (losers wait on a condvar and are handed the winner's `Arc`).
//!
//! Poisoned locks are recovered, not propagated: every guarded region
//! leaves the cache structurally consistent (promotion and deposit are
//! single `HashMap` operations), so a panicking sweep thread must not
//! poison the cache for every other thread. Recoveries are counted in
//! [`CacheStats::lock_poisonings`].

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use serde::{Deserialize, Serialize};

use hddm_asg::{hierarchize, regular_grid, BoxDomain};
use hddm_compress::CompressedGrid;
use hddm_core::{PolicySet, StateRecord};
use hddm_gpu::ExecutionBackend;
use hddm_kernels::{CompressedState, KernelKind, PointBlock, Scratch};
use hddm_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::hash::{fingerprint_distances, HashId};
use crate::persist::{EvictionPolicy, ManifestEntry, Store};

/// Number of `RwLock` shards the in-memory map is split across. A small
/// power of two: enough that a serving front-end's reader threads rarely
/// collide, small enough that whole-cache scans (warm-start search, cost
/// estimation) stay cheap.
const SHARD_COUNT: usize = 16;

/// The state-space shape a cached surface was solved on. Warm starts
/// require an exact shape match: a surface over a different
/// dimensionality or state count is not even interpretable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShapeKey {
    /// Continuous dimensionality `d`.
    pub dim: usize,
    /// Coefficients per grid point.
    pub ndofs: usize,
    /// Number of discrete Markov states.
    pub num_states: usize,
}

impl ShapeKey {
    /// The state-space shape of a scenario, derivable without solving
    /// the steady state. The single source of truth for the cache
    /// identity — the executor's solve-time lookups and the serving
    /// front-end's admission probe must derive the shape identically.
    pub fn of(scenario: &crate::scenario::Scenario) -> ShapeKey {
        ShapeKey {
            dim: scenario.calibration.dim(),
            ndofs: scenario.calibration.ndofs(),
            num_states: scenario.calibration.num_states(),
        }
    }
}

/// One cached policy surface with its provenance and cost telemetry.
#[derive(Clone, Debug)]
pub struct CachedSurface {
    /// Content hash of the producing scenario.
    pub hash: u64,
    /// State-space shape.
    pub shape: ShapeKey,
    /// Parameter fingerprint of the producing scenario.
    pub fingerprint: Vec<f64>,
    /// Domain box lower bounds the surface was solved on.
    pub domain_lo: Vec<f64>,
    /// Domain box upper bounds.
    pub domain_hi: Vec<f64>,
    /// Per-state compressed interpolants (the `hddm_compress` arrays).
    pub records: Vec<StateRecord>,
    /// Time-iteration steps the producing solve took.
    pub steps: usize,
    /// Final sup policy change of the producing solve.
    pub final_sup_change: f64,
    /// Measured wall-clock seconds of the producing solve (cost
    /// feedback for the fleet assignment).
    pub cost_seconds: f64,
}

impl CachedSurface {
    /// Rebuilds the policy set from the compressed records.
    pub fn restore_policy(&self) -> PolicySet {
        let domain = BoxDomain::new(self.domain_lo.clone(), self.domain_hi.clone());
        let states = self
            .records
            .iter()
            .map(|r| r.restore(self.shape.dim, self.shape.ndofs))
            .collect();
        PolicySet::new(states, domain)
    }

    /// Total grid points of the surface (summed over discrete states).
    pub fn grid_points(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.surplus.len() / self.shape.ndofs.max(1))
            .sum()
    }
}

/// Outcome of a cache lookup.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Identical scenario already solved: reuse the surface verbatim.
    Exact(Arc<CachedSurface>),
    /// A nearby scenario's surface is available for a warm start.
    Warm(Arc<CachedSurface>),
    /// Nothing usable cached; solve cold.
    Miss,
}

/// Nearest same-shape cached neighbour of a fingerprint — the metadata a
/// serving front-end reports on a near miss without restoring anything
/// from disk. Returned by [`SurfaceCache::nearest_neighbour`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighbourInfo {
    /// Content hash of the neighbouring cached scenario.
    pub hash: HashId,
    /// Fingerprint distance to the query (see
    /// [`fingerprint_distance`](crate::hash::fingerprint_distance)).
    pub distance: f64,
    /// Measured wall-clock seconds of the neighbour's producing solve.
    pub cost_seconds: f64,
}

/// Cache telemetry counters — in-memory traffic plus, when a persistent
/// backing directory is attached, the on-disk store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Entries currently held in memory (summed over shards).
    pub entries: usize,
    /// Surfaces currently persisted in the backing directory (0 for a
    /// purely in-memory cache).
    pub persisted_entries: usize,
    /// Total bytes of the persisted record files.
    pub persisted_bytes: u64,
    /// Exact-hash hits served (from memory or disk).
    pub exact_hits: usize,
    /// Warm-start hits served (from memory or disk).
    pub warm_hits: usize,
    /// Lookups that found nothing usable.
    pub misses: usize,
    /// Hits whose surface was lazily restored from the backing directory
    /// (a subset of `exact_hits + warm_hits`).
    pub disk_hits: usize,
    /// Persisted surfaces evicted by the size policy.
    pub evictions: usize,
    /// Corrupt, truncated, or version-mismatched persisted artifacts
    /// skipped with a warning.
    pub skipped: usize,
    /// Poisoned shard/store locks recovered (a sweep thread panicked
    /// while holding a cache lock; the guarded state is crash-consistent
    /// by construction, so the lock is cleared and reused).
    pub lock_poisonings: usize,
    /// High-water mark of simultaneously in-flight disk restores — the
    /// direct evidence that record-file I/O runs outside the cache locks
    /// (a single-mutex cache can never exceed 1).
    pub concurrent_restores_peak: usize,
}

/// Instrumentation hook invoked during every record-file restore, with
/// the hash being restored, **outside all cache locks**. Tests use it to
/// prove restore concurrency (rendezvous of N readers) and to count
/// per-hash restore attempts; production code leaves it unset.
pub type RestoreHook = Arc<dyn Fn(u64) + Send + Sync>;

/// One shard of the in-memory map. `seq` is the global deposit sequence
/// number — the deterministic tie-breaker that replaces the old
/// cache-wide insertion-order vector (nearest-neighbour searches prefer
/// the earliest deposit among equal distances, independent of shard
/// layout).
#[derive(Default)]
struct Shard {
    by_hash: HashMap<u64, ShardEntry>,
}

struct ShardEntry {
    seq: u64,
    surface: Arc<CachedSurface>,
}

/// The cache's registry-backed instruments. Traffic counters are
/// incremented inline on the hot paths; derived quantities (entry counts,
/// store-side totals, lock recoveries) are gauges refreshed by
/// [`SurfaceCache::refresh_gauges`] — both before every [`SurfaceCache::stats`]
/// read and from the registry's collect hook, so a
/// [`Registry::snapshot`] and a `stats()` call taken at the same quiescent
/// instant agree bit for bit.
struct CacheInstruments {
    registry: Registry,
    exact_hits: Arc<Counter>,
    warm_hits: Arc<Counter>,
    misses: Arc<Counter>,
    disk_hits: Arc<Counter>,
    entries: Arc<Gauge>,
    persisted_entries: Arc<Gauge>,
    persisted_bytes: Arc<Gauge>,
    evictions: Arc<Gauge>,
    skipped: Arc<Gauge>,
    lock_poisonings: Arc<Gauge>,
    restores_peak: Arc<Gauge>,
    restore_seconds: Arc<Histogram>,
    deposit_seconds: Arc<Histogram>,
    evict_seconds: Arc<Histogram>,
}

impl CacheInstruments {
    fn new(registry: Registry) -> CacheInstruments {
        CacheInstruments {
            exact_hits: registry.counter("hddm_cache_exact_hits_total"),
            warm_hits: registry.counter("hddm_cache_warm_hits_total"),
            misses: registry.counter("hddm_cache_misses_total"),
            disk_hits: registry.counter("hddm_cache_disk_hits_total"),
            entries: registry.gauge("hddm_cache_entries"),
            persisted_entries: registry.gauge("hddm_cache_persisted_entries"),
            persisted_bytes: registry.gauge("hddm_cache_persisted_bytes"),
            evictions: registry.gauge("hddm_cache_evictions"),
            skipped: registry.gauge("hddm_cache_skipped"),
            lock_poisonings: registry.gauge("hddm_cache_lock_poisonings"),
            restores_peak: registry.gauge("hddm_cache_concurrent_restores_peak"),
            restore_seconds: registry.histogram("hddm_cache_restore_seconds"),
            deposit_seconds: registry.histogram("hddm_cache_deposit_seconds"),
            evict_seconds: registry.histogram("hddm_cache_evict_seconds"),
            registry,
        }
    }
}

struct CacheInner {
    shards: Vec<RwLock<Shard>>,
    /// Global deposit counter (insertion order across shards).
    seq: AtomicU64,
    /// Persistent backing store, when attached.
    store: RwLock<Option<Arc<Store>>>,
    /// Maximum fingerprint distance a warm start may bridge.
    warm_radius: f64,
    metrics: CacheInstruments,
    lock_poisonings: AtomicUsize,
    /// Hashes whose disk restore is currently in flight; guards
    /// restore-once promotion.
    inflight: Mutex<HashSet<u64>>,
    inflight_cv: Condvar,
    restoring_now: AtomicUsize,
    restore_peak: AtomicUsize,
    restore_hook: RwLock<Option<RestoreHook>>,
}

/// The shared, thread-safe surface cache — a cheap clonable handle; all
/// clones observe the same entries and telemetry. Nearest-neighbour scan
/// order is deposit order (a global sequence number), so warm-start
/// choices stay deterministic given a deterministic execution order.
///
/// Optionally backed by a persistent cache directory (see
/// [`SurfaceCache::open`] and [`SurfaceCache::persist_to`]): the on-disk
/// index is consulted on misses, hit surfaces are lazily restored from
/// their record files — concurrently, outside any lock, at most once per
/// entry — and promoted into memory, and every deposit is written through
/// atomically.
#[derive(Clone)]
pub struct SurfaceCache {
    inner: Arc<CacheInner>,
}

impl Default for SurfaceCache {
    fn default() -> Self {
        SurfaceCache::new(0.05)
    }
}

impl SurfaceCache {
    /// An empty in-memory cache accepting warm starts within
    /// `warm_radius` fingerprint distance (see [`fingerprint_distance`]).
    pub fn new(warm_radius: f64) -> SurfaceCache {
        let registry = Registry::new();
        let cache = SurfaceCache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARD_COUNT)
                    .map(|_| RwLock::new(Shard::default()))
                    .collect(),
                seq: AtomicU64::new(0),
                store: RwLock::new(None),
                warm_radius,
                metrics: CacheInstruments::new(registry.clone()),
                lock_poisonings: AtomicUsize::new(0),
                inflight: Mutex::new(HashSet::new()),
                inflight_cv: Condvar::new(),
                restoring_now: AtomicUsize::new(0),
                restore_peak: AtomicUsize::new(0),
                restore_hook: RwLock::new(None),
            }),
        };
        // The hook holds a Weak so the registry (owned by the inner) never
        // keeps the cache alive; once every handle is dropped, the hook
        // silently becomes a no-op.
        let weak = Arc::downgrade(&cache.inner);
        registry.on_collect(move || {
            if let Some(inner) = weak.upgrade() {
                SurfaceCache { inner }.refresh_gauges();
            }
        });
        cache
    }

    /// The registry holding this cache's instruments
    /// (`hddm_cache_*`) — and, for solves routed through
    /// [`crate::executor`] without an explicit telemetry override, the
    /// driver's `hddm_solve_*` phase spans too.
    pub fn registry(&self) -> &Registry {
        &self.inner.metrics.registry
    }

    /// Refreshes the derived gauges (entry counts, store totals, lock
    /// recoveries, restore high-water mark) from their sources. Invoked
    /// before every [`SurfaceCache::stats`] read and by the registry's
    /// collect hook ahead of each snapshot.
    fn refresh_gauges(&self) {
        let entries: usize = (0..SHARD_COUNT)
            .map(|i| self.shard_read(i).by_hash.len())
            .sum();
        let (persisted_entries, persisted_bytes, evictions, skipped, store_poisonings) =
            match self.store() {
                Some(store) => (
                    store.len(),
                    store.total_bytes(),
                    store.evictions(),
                    store.skipped(),
                    store.poisonings(),
                ),
                None => (0, 0, 0, 0, 0),
            };
        let m = &self.inner.metrics;
        m.entries.set(entries as u64);
        m.persisted_entries.set(persisted_entries as u64);
        m.persisted_bytes.set(persisted_bytes);
        m.evictions.set(evictions as u64);
        m.skipped.set(skipped as u64);
        // ORDERING: Relaxed — recovery tally scrape; staleness by an
        // in-flight recovery is acceptable for exposition.
        let poisonings = self.inner.lock_poisonings.load(Ordering::Relaxed);
        m.lock_poisonings
            .set((poisonings + store_poisonings) as u64);
        // ORDERING: Relaxed — the peak is maintained by atomic fetch_max
        // (RMWs on one atomic are totally ordered); this scrape infers
        // nothing about other memory from the value.
        let peak = self.inner.restore_peak.load(Ordering::Relaxed);
        m.restores_peak.set(peak as u64);
    }

    /// Opens a cache backed by the persistent directory `dir` (created if
    /// missing) with an unbounded eviction policy. The on-disk index is
    /// loaded immediately; surfaces are restored lazily on first hit.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<SurfaceCache, String> {
        SurfaceCache::open_with(dir, EvictionPolicy::default())
    }

    /// [`SurfaceCache::open`] with an explicit eviction policy.
    pub fn open_with<P: AsRef<Path>>(
        dir: P,
        policy: EvictionPolicy,
    ) -> Result<SurfaceCache, String> {
        let cache = SurfaceCache::default();
        *cache.store_write() = Some(Arc::new(Store::open(dir, policy)?));
        Ok(cache)
    }

    /// Attaches a persistent directory to an existing cache (unbounded
    /// policy) and flushes every in-memory surface to it. Subsequent
    /// deposits are written through.
    pub fn persist_to<P: AsRef<Path>>(&self, dir: P) -> Result<(), String> {
        self.persist_to_with(dir, EvictionPolicy::default())
    }

    /// [`SurfaceCache::persist_to`] with an explicit eviction policy.
    pub fn persist_to_with<P: AsRef<Path>>(
        &self,
        dir: P,
        policy: EvictionPolicy,
    ) -> Result<(), String> {
        let store = Store::open(dir, policy)?;
        // Flush in deposit order so the on-disk LRU order matches the
        // in-memory insertion order.
        let mut surfaces: Vec<(u64, Arc<CachedSurface>)> = Vec::new();
        for i in 0..SHARD_COUNT {
            let shard = self.shard_read(i);
            surfaces.extend(
                shard
                    .by_hash
                    .values()
                    .map(|e| (e.seq, Arc::clone(&e.surface))),
            );
        }
        surfaces.sort_by_key(|(seq, _)| *seq);
        let mut dropped = Vec::new();
        for (_, surface) in &surfaces {
            dropped.extend(store.insert(surface)?);
        }
        // A hash evicted mid-flush may have been re-deposited by a later
        // insert of the same flush; only drop from memory what the store
        // really ended up without.
        dropped.retain(|&h| !store.contains(h));
        for hash in dropped {
            self.shard_write(shard_of(hash)).by_hash.remove(&hash);
        }
        *self.store_write() = Some(Arc::new(store));
        Ok(())
    }

    /// The persistent directory backing this cache, if one is attached.
    pub fn cache_dir(&self) -> Option<std::path::PathBuf> {
        self.store().map(|s| s.dir().to_path_buf())
    }

    /// Number of `RwLock` shards the in-memory map is split across.
    pub fn shard_count(&self) -> usize {
        SHARD_COUNT
    }

    /// Entries currently held by each shard — per-shard telemetry for
    /// concurrency tests and load inspection.
    pub fn shard_entries(&self) -> Vec<usize> {
        (0..SHARD_COUNT)
            .map(|i| self.shard_read(i).by_hash.len())
            .collect()
    }

    /// Installs an instrumentation hook invoked (outside all locks) for
    /// every record-file restore; see [`RestoreHook`]. Pass-through for
    /// tests and latency tracing — not part of the caching semantics.
    pub fn set_restore_hook(&self, hook: RestoreHook) {
        *self.recover_rw_write(&self.inner.restore_hook) = Some(hook);
    }

    // ----- lock plumbing (poisoning-recovering) ------------------------

    fn recover_rw_read<'a, T>(&self, lock: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
        lock.read().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.inner.lock_poisonings.fetch_add(1, Ordering::Relaxed);
            lock.clear_poison();
            poisoned.into_inner()
        })
    }

    fn recover_rw_write<'a, T>(&self, lock: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
        lock.write().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.inner.lock_poisonings.fetch_add(1, Ordering::Relaxed);
            lock.clear_poison();
            poisoned.into_inner()
        })
    }

    fn recover_mutex<'a, T>(&self, lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
        lock.lock().unwrap_or_else(|poisoned| {
            // ORDERING: Relaxed — recovery tally; no ordering dependency.
            self.inner.lock_poisonings.fetch_add(1, Ordering::Relaxed);
            lock.clear_poison();
            poisoned.into_inner()
        })
    }

    fn shard_read(&self, i: usize) -> RwLockReadGuard<'_, Shard> {
        self.recover_rw_read(&self.inner.shards[i])
    }

    fn shard_write(&self, i: usize) -> RwLockWriteGuard<'_, Shard> {
        self.recover_rw_write(&self.inner.shards[i])
    }

    fn store(&self) -> Option<Arc<Store>> {
        self.recover_rw_read(&self.inner.store).clone()
    }

    fn store_write(&self) -> RwLockWriteGuard<'_, Option<Arc<Store>>> {
        self.recover_rw_write(&self.inner.store)
    }

    // ----- disk promotion (restore-once, I/O outside locks) ------------

    /// Loads `hash` from the backing store (if any) and promotes it into
    /// its shard. `None` when there is no store, the hash is not
    /// persisted, or its record file is corrupt (skipped with a warning
    /// and dropped from the index).
    ///
    /// Restore-once guarantee: concurrent callers for the same hash elect
    /// one restorer; the rest wait on a condvar and re-read the shard, so
    /// the record file is read at most once per promotion no matter how
    /// many readers race. Callers for *different* hashes proceed fully in
    /// parallel — the file read holds no lock at all.
    fn promote_from_disk(&self, hash: u64) -> Option<Arc<CachedSurface>> {
        let store = self.store()?;
        loop {
            if let Some(entry) = self.shard_read(shard_of(hash)).by_hash.get(&hash) {
                // Another thread promoted it while we raced for the claim.
                return Some(Arc::clone(&entry.surface));
            }
            {
                let mut inflight = self.recover_mutex(&self.inner.inflight);
                if inflight.contains(&hash) {
                    // A restore of this very hash is in flight: wait for
                    // the winner instead of reading the file twice.
                    while inflight.contains(&hash) {
                        inflight =
                            self.inner
                                .inflight_cv
                                .wait(inflight)
                                .unwrap_or_else(|poisoned| {
                                    // ORDERING: Relaxed — recovery tally.
                                    self.inner.lock_poisonings.fetch_add(1, Ordering::Relaxed);
                                    self.inner.inflight.clear_poison();
                                    poisoned.into_inner()
                                });
                    }
                    continue; // re-check the shard (winner promoted or skipped)
                }
                inflight.insert(hash);
            }

            // The claim MUST be released even if the restore unwinds (a
            // panicking restore hook, an OOM in deserialization): a leaked
            // claim would deadlock every future promotion of this hash.
            // The guard releases + notifies on drop, unwind included.
            struct ClaimGuard<'a> {
                cache: &'a SurfaceCache,
                hash: u64,
            }
            impl Drop for ClaimGuard<'_> {
                fn drop(&mut self) {
                    let mut inflight = self.cache.recover_mutex(&self.cache.inner.inflight);
                    inflight.remove(&self.hash);
                    self.cache.inner.inflight_cv.notify_all();
                }
            }
            let _claim = ClaimGuard { cache: self, hash };

            return self.restore_claimed(&store, hash);
        }
    }

    /// The claimed restore itself: snapshot the index row, read + validate
    /// the record file with **no lock held**, then promote under a single
    /// short shard write lock.
    fn restore_claimed(&self, store: &Store, hash: u64) -> Option<Arc<CachedSurface>> {
        // The shard check in `promote_from_disk` and the claim are not
        // one atomic step: a winner may have promoted (and released the
        // claim) between our miss and our claim. Re-check now that the
        // claim is held — without this, the record file would be read a
        // second time for an already-promoted surface.
        if let Some(entry) = self.shard_read(shard_of(hash)).by_hash.get(&hash) {
            return Some(Arc::clone(&entry.surface));
        }
        let entry: ManifestEntry = store.entry(hash)?;

        // Unwind-safe gauge: decrement on drop so a panicking hook or
        // reader cannot leave `restoring_now` drifted upward forever.
        struct GaugeGuard<'a>(&'a CacheInner);
        impl Drop for GaugeGuard<'_> {
            fn drop(&mut self) {
                // ORDERING: Relaxed — the in-flight count is exact by
                // RMW atomicity alone; nothing is published through it.
                self.0.restoring_now.fetch_sub(1, Ordering::Relaxed);
            }
        }
        // ORDERING: Relaxed — RMWs on one atomic are totally ordered, so
        // `now` is the exact number of concurrent restorers; order
        // against unrelated memory is irrelevant (downgraded from
        // SeqCst, which bought nothing here).
        let now = self.inner.restoring_now.fetch_add(1, Ordering::Relaxed) + 1;
        let _gauge = GaugeGuard(&self.inner);
        // ORDERING: Relaxed — atomic fetch_max maintains the peak
        // exactly; no reader infers other state from it.
        self.inner.restore_peak.fetch_max(now, Ordering::Relaxed);
        let hook = self.recover_rw_read(&self.inner.restore_hook).clone();
        if let Some(hook) = hook {
            hook(hash);
        }
        let span =
            hddm_telemetry::SpanTimer::start(Arc::clone(&self.inner.metrics.restore_seconds));
        let read = store.read_record(&entry);
        span.stop();
        drop(_gauge);

        match read {
            Ok(surface) => {
                let arc = Arc::new(surface);
                let mut shard = self.shard_write(shard_of(hash));
                let entry = shard.by_hash.entry(hash).or_insert_with(|| ShardEntry {
                    // ORDERING: Relaxed — sequence uniqueness comes from
                    // RMW atomicity; insertion order is guarded by the
                    // shard's write lock, not by this atomic.
                    seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
                    surface: Arc::clone(&arc),
                });
                let promoted = Arc::clone(&entry.surface);
                drop(shard);
                self.inner.metrics.disk_hits.inc();
                Some(promoted)
            }
            Err(e) => {
                eprintln!(
                    "hddm-scenarios: warning: skipping corrupt cached surface {} ({e})",
                    HashId(hash)
                );
                store.discard(hash);
                None
            }
        }
    }

    // ----- lookups -----------------------------------------------------

    /// Exact-hash probe for the serving fast path: the surface when
    /// `hash` is cached and compatible (in memory, or lazily restored
    /// from disk — counted as an exact hit, plus a disk hit when a
    /// restore happened), `None` otherwise — **without counting a
    /// miss**. A `None` here means the caller will enqueue the scenario
    /// and the dispatched solve will run the full [`SurfaceCache::lookup`],
    /// which accounts for the miss exactly once; counting it in the
    /// probe too would double every served miss in [`CacheStats`].
    pub fn lookup_exact(
        &self,
        hash: u64,
        shape: ShapeKey,
        fingerprint: &[f64],
    ) -> Option<Arc<CachedSurface>> {
        let entry = {
            let shard = self.shard_read(shard_of(hash));
            shard.by_hash.get(&hash).map(|e| Arc::clone(&e.surface))
        }
        .or_else(|| self.promote_from_disk(hash))?;
        // A colliding hash with an incompatible shape/fingerprint is a
        // miss, exactly as in `lookup`.
        if entry.shape == shape && entry.fingerprint == fingerprint {
            self.inner.metrics.exact_hits.inc();
            Some(entry)
        } else {
            None
        }
    }

    /// Looks up a surface for the scenario identified by `hash`,
    /// `shape`, and `fingerprint`: exact hash match first (memory, then
    /// the persistent index), then — when `allow_warm` — the nearest
    /// same-shape neighbour within the warm radius across memory and
    /// disk. With `allow_warm: false` a non-exact lookup counts as a
    /// miss, so telemetry matches what the executor actually serves.
    ///
    /// An exact-hash candidate whose shape or fingerprint disagrees with
    /// the request is a hash collision, not a hit: serving it would
    /// restore an incompatible surface, so it is demoted to a miss (it
    /// may still qualify as a warm start through the shape-checked
    /// nearest-neighbour path).
    pub fn lookup(
        &self,
        hash: u64,
        shape: ShapeKey,
        fingerprint: &[f64],
        allow_warm: bool,
    ) -> Lookup {
        let exact = {
            let shard = self.shard_read(shard_of(hash));
            shard.by_hash.get(&hash).map(|e| Arc::clone(&e.surface))
        };
        let exact = exact.or_else(|| self.promote_from_disk(hash));
        if let Some(entry) = exact {
            if entry.shape == shape && entry.fingerprint == fingerprint {
                self.inner.metrics.exact_hits.inc();
                return Lookup::Exact(entry);
            }
            // Collision: fall through to the warm path / miss.
        }

        if !allow_warm {
            self.inner.metrics.misses.inc();
            return Lookup::Miss;
        }

        let (best_mem, in_memory) = self.best_memory_candidate(shape, fingerprint);

        // Disk candidates are retried in nearest-first order: a corrupt
        // record file drops out of the index inside the restore, so the
        // next scan finds the next-nearest neighbour.
        loop {
            let best_disk = self.store().and_then(|store| {
                store
                    .best_candidate(shape, fingerprint, self.inner.warm_radius, |h| {
                        in_memory.contains(&h)
                    })
                    .map(|(d, entry)| (d, entry.hash.0))
            });
            let from_disk = match (best_mem.as_ref(), best_disk) {
                (Some((dm, _)), Some((dd, h))) if dd < *dm => Some(h),
                (None, Some((_, h))) => Some(h),
                _ => None,
            };
            match from_disk {
                Some(h) => {
                    if let Some(entry) = self.promote_from_disk(h) {
                        self.inner.metrics.warm_hits.inc();
                        return Lookup::Warm(entry);
                    }
                    // Corrupt candidate was skipped; rescan.
                }
                None => {
                    return match best_mem {
                        Some((_, surface)) => {
                            self.inner.metrics.warm_hits.inc();
                            Lookup::Warm(surface)
                        }
                        None => {
                            self.inner.metrics.misses.inc();
                            Lookup::Miss
                        }
                    };
                }
            }
        }
    }

    /// The nearest same-shape in-memory neighbour within the warm radius
    /// (ties broken toward the earliest deposit — deterministic and
    /// independent of shard/map iteration order), plus the set of all
    /// in-memory hashes (so the disk scan can skip entries already
    /// considered here). Shards are scanned one read lock at a time; a
    /// deposit racing the scan may be missed this round, exactly as it
    /// could have missed the old cache-wide mutex. Candidate fingerprints
    /// are gathered component-major and scored in one blocked
    /// [`fingerprint_distances`] pass **outside every lock** instead of
    /// one scalar distance per entry under the shard guard.
    fn best_memory_candidate(
        &self,
        shape: ShapeKey,
        fingerprint: &[f64],
    ) -> (Option<(f64, Arc<CachedSurface>)>, HashSet<u64>) {
        let mut in_memory = HashSet::new();
        let mut candidates: Vec<(u64, Arc<CachedSurface>)> = Vec::new();
        for i in 0..SHARD_COUNT {
            let shard = self.shard_read(i);
            for (&h, entry) in &shard.by_hash {
                in_memory.insert(h);
                if entry.surface.shape != shape
                    || entry.surface.fingerprint.len() != fingerprint.len()
                {
                    continue;
                }
                candidates.push((entry.seq, Arc::clone(&entry.surface)));
            }
        }
        if candidates.is_empty() {
            return (None, in_memory);
        }
        let ncand = candidates.len();
        let mut soa = vec![0.0; fingerprint.len() * ncand];
        for (c, (_, surface)) in candidates.iter().enumerate() {
            for (k, &v) in surface.fingerprint.iter().enumerate() {
                soa[k * ncand + c] = v;
            }
        }
        let mut distances = vec![0.0; ncand];
        fingerprint_distances(fingerprint, &soa, &mut distances);
        let mut best: Option<(f64, u64, usize)> = None;
        for (c, &d) in distances.iter().enumerate() {
            if d > self.inner.warm_radius {
                continue;
            }
            let seq = candidates[c].0;
            let better = match best {
                None => true,
                Some((bd, bseq, _)) => d < bd || (d == bd && seq < bseq),
            };
            if better {
                best = Some((d, seq, c));
            }
        }
        (
            best.map(|(d, _, c)| (d, Arc::clone(&candidates[c].1))),
            in_memory,
        )
    }

    /// The nearest same-shape cached neighbour of `fingerprint` within
    /// the warm radius — in memory or in the persistent index — without
    /// restoring anything from disk and without touching the hit/miss
    /// telemetry. This is the serving front-end's "near miss" probe: it
    /// answers "what would a warm start use, and what did it cost?"
    /// from index metadata alone.
    pub fn nearest_neighbour(&self, shape: ShapeKey, fingerprint: &[f64]) -> Option<NeighbourInfo> {
        let (best_mem, in_memory) = self.best_memory_candidate(shape, fingerprint);
        let best_mem = best_mem.map(|(d, s)| NeighbourInfo {
            hash: HashId(s.hash),
            distance: d,
            cost_seconds: s.cost_seconds,
        });
        let best_disk = self.store().and_then(|store| {
            store
                .best_candidate(shape, fingerprint, self.inner.warm_radius, |h| {
                    in_memory.contains(&h)
                })
                .map(|(d, entry)| NeighbourInfo {
                    hash: entry.hash,
                    distance: d,
                    cost_seconds: entry.cost_seconds,
                })
        });
        match (best_mem, best_disk) {
            (Some(m), Some(d)) => Some(if d.distance < m.distance { d } else { m }),
            (m, d) => m.or(d),
        }
    }

    /// Deposits a solved policy surface, flattening each state's
    /// compressed interpolant to a [`StateRecord`]. Last writer wins on
    /// hash collisions of identical scenarios (the surfaces are
    /// interchangeable by construction). With a persistent store
    /// attached, the surface is written through atomically and the
    /// eviction policy is applied; surfaces evicted from disk are dropped
    /// from memory too, so the two tiers stay consistent.
    #[allow(clippy::too_many_arguments)]
    pub fn store_policy(
        &self,
        hash: u64,
        shape: ShapeKey,
        fingerprint: Vec<f64>,
        policy: &PolicySet,
        steps: usize,
        final_sup_change: f64,
        cost_seconds: f64,
    ) {
        let deposit_span =
            hddm_telemetry::SpanTimer::start(Arc::clone(&self.inner.metrics.deposit_seconds));
        let records = (0..policy.states.num_states())
            .map(|z| StateRecord::capture(policy.states.state(z)))
            .collect();
        let surface = Arc::new(CachedSurface {
            hash,
            shape,
            fingerprint,
            domain_lo: policy.domain.lo().to_vec(),
            domain_hi: policy.domain.hi().to_vec(),
            records,
            steps,
            final_sup_change,
            cost_seconds,
        });
        {
            let mut shard = self.shard_write(shard_of(hash));
            match shard.by_hash.get_mut(&hash) {
                Some(entry) => entry.surface = Arc::clone(&surface), // keep the eviction slot
                None => {
                    // ORDERING: Relaxed — uniqueness by RMW atomicity;
                    // the shard write lock orders the insertion itself.
                    let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
                    shard.by_hash.insert(
                        hash,
                        ShardEntry {
                            seq,
                            surface: Arc::clone(&surface),
                        },
                    );
                }
            }
        }
        if let Some(store) = self.store() {
            match store.insert(&surface) {
                Ok(evicted) => {
                    if !evicted.is_empty() {
                        let span = hddm_telemetry::SpanTimer::start(Arc::clone(
                            &self.inner.metrics.evict_seconds,
                        ));
                        for h in evicted {
                            self.shard_write(shard_of(h)).by_hash.remove(&h);
                        }
                        span.stop();
                    }
                }
                Err(e) => eprintln!(
                    "hddm-scenarios: warning: failed to persist surface \
                     {hash:016x} ({e}); keeping it in memory only"
                ),
            }
        }
        deposit_span.stop();
    }

    /// The measured cost of the nearest same-shape cached scenario —
    /// in memory or in the persistent index — if any lies within the warm
    /// radius. This is the feedback path from executed scenarios into the
    /// next sweep's fleet assignment; persisted costs make it survive
    /// process restarts.
    pub fn estimated_cost(&self, shape: ShapeKey, fingerprint: &[f64]) -> Option<f64> {
        self.nearest_neighbour(shape, fingerprint)
            .map(|n| n.cost_seconds)
    }

    /// Telemetry snapshot — a structured view over the registry's
    /// instruments. The gauges are refreshed first through the same path
    /// the registry's collect hook uses, so a [`Registry::snapshot`] taken
    /// at the same quiescent instant reports bit-identical values.
    pub fn stats(&self) -> CacheStats {
        self.refresh_gauges();
        let m = &self.inner.metrics;
        CacheStats {
            entries: m.entries.get() as usize,
            persisted_entries: m.persisted_entries.get() as usize,
            persisted_bytes: m.persisted_bytes.get(),
            exact_hits: m.exact_hits.get() as usize,
            warm_hits: m.warm_hits.get() as usize,
            misses: m.misses.get() as usize,
            disk_hits: m.disk_hits.get() as usize,
            evictions: m.evictions.get() as usize,
            skipped: m.skipped.get() as usize,
            lock_poisonings: m.lock_poisonings.get() as usize,
            concurrent_restores_peak: m.restores_peak.get() as usize,
        }
    }
}

/// Shard index of a hash. The scenario hash is FNV-1a — already
/// well-mixed — so the low bits select the shard directly.
#[inline]
fn shard_of(hash: u64) -> usize {
    (hash as usize) % SHARD_COUNT
}

/// Why a cached surface could not be projected onto a target domain box.
/// Surfaces arriving from a persistent directory are data, not code:
/// incompatibilities must surface as errors the executor can catch (and
/// fall back to a cold solve), never as panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProjectionError {
    /// The target box dimensionality differs from the cached surface's.
    DimensionMismatch {
        /// Dimensionality of the cached surface's domain.
        cached: usize,
        /// Dimensionality of the requested target box (lo/hi lengths).
        target_lo: usize,
        /// Length of the target upper-bound vector.
        target_hi: usize,
    },
    /// The cached surface has no discrete states to project.
    EmptySurface,
}

impl std::fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionError::DimensionMismatch {
                cached,
                target_lo,
                target_hi,
            } => write!(
                f,
                "projection dimension mismatch: cached surface is {cached}-dimensional, \
                 target box is {target_lo}/{target_hi}"
            ),
            ProjectionError::EmptySurface => {
                write!(f, "cached surface has no discrete states")
            }
        }
    }
}

impl std::error::Error for ProjectionError {}

/// Projects a cached policy surface onto a new scenario's domain box:
/// evaluates the cached interpolant (clamped into its own box, the
/// paper's domain truncation) on the target's start-level regular grid,
/// hierarchizes, and compresses — producing the warm-start `p⁰` in
/// exactly the representation the driver iterates on.
///
/// The whole target grid is mapped into the cached surface's unit cube
/// once and evaluated per state as **one batched kernel call**
/// ([`hddm_kernels::KernelKind::evaluate_compressed_batch`]) instead of
/// one single-point interpolation per grid point, and the target grid is
/// compressed once — the two hot costs of admitting a warm start on the
/// serving path.
pub fn project_policy(
    cached: &PolicySet,
    target_lo: &[f64],
    target_hi: &[f64],
    start_level: u8,
    kernel: KernelKind,
) -> Result<PolicySet, ProjectionError> {
    project_policy_with(
        cached,
        target_lo,
        target_hi,
        start_level,
        kernel,
        &ExecutionBackend::Cpu,
    )
}

/// [`project_policy`] with an explicit [`ExecutionBackend`]: the
/// per-state batched evaluation of the target grid dispatches through
/// `backend` (the GPU engine re-uses the cached surface's device
/// residency across states and requests); `ExecutionBackend::Cpu`
/// reproduces [`project_policy`] exactly.
pub fn project_policy_with(
    cached: &PolicySet,
    target_lo: &[f64],
    target_hi: &[f64],
    start_level: u8,
    kernel: KernelKind,
    backend: &ExecutionBackend,
) -> Result<PolicySet, ProjectionError> {
    let dim = cached.domain.dim();
    if target_lo.len() != dim || target_hi.len() != dim {
        return Err(ProjectionError::DimensionMismatch {
            cached: dim,
            target_lo: target_lo.len(),
            target_hi: target_hi.len(),
        });
    }
    if cached.states.num_states() == 0 {
        return Err(ProjectionError::EmptySurface);
    }
    let ndofs = cached.states.state(0).ndofs;
    let target = BoxDomain::new(target_lo.to_vec(), target_hi.to_vec());
    let grid = regular_grid(dim, start_level);

    // Target grid → target physical box → clamped into the cached box →
    // the cached surface's unit cube, gathered into one SoA block.
    let mut rows = Vec::with_capacity(grid.len() * dim);
    let mut unit = vec![0.0; dim];
    let mut phys = vec![0.0; dim];
    let mut cached_unit = vec![0.0; dim];
    for i in 0..grid.len() {
        grid.unit_point_of(i, &mut unit);
        target.from_unit(&unit, &mut phys);
        cached.domain.clamp(&mut phys);
        cached.domain.to_unit(&phys, &mut cached_unit);
        rows.extend_from_slice(&cached_unit);
    }
    let block = PointBlock::from_rows(dim, &rows);

    let cg = CompressedGrid::build(&grid); // shared by every state
    let mut scratch = Scratch::default();
    let states = (0..cached.states.num_states())
        .map(|z| {
            let mut values = vec![0.0; grid.len() * ndofs];
            backend.evaluate_batch(
                kernel,
                cached.states.state(z),
                &block,
                &mut scratch,
                &mut values,
            );
            hierarchize(&grid, &mut values, ndofs);
            let reordered = cg.reorder_rows(&values, ndofs);
            CompressedState::from_parts(cg.clone(), reordered, ndofs)
        })
        .collect();
    Ok(PolicySet::new(states, target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hddm_asg::tabulate;
    use hddm_olg::PolicyOracle;

    fn shape() -> ShapeKey {
        ShapeKey {
            dim: 2,
            ndofs: 1,
            num_states: 1,
        }
    }

    /// A one-state policy set interpolating `f(x_phys) = a·x₀ + b·x₁`
    /// over `domain`.
    fn linear_policy(domain: &BoxDomain, a: f64, b: f64) -> PolicySet {
        let grid = regular_grid(2, 3);
        let mut phys = vec![0.0; 2];
        let mut values = tabulate(&grid, 1, |unit, out| {
            domain.from_unit(unit, &mut phys);
            out[0] = a * phys[0] + b * phys[1];
        });
        hierarchize(&grid, &mut values, 1);
        let cg = CompressedGrid::build(&grid);
        let reordered = cg.reorder_rows(&values, 1);
        PolicySet::new(
            vec![CompressedState::from_parts(cg, reordered, 1)],
            domain.clone(),
        )
    }

    #[test]
    fn exact_beats_warm_beats_miss() {
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);

        assert!(matches!(
            cache.lookup(77, shape(), &[0.95, 2.0], true),
            Lookup::Exact(_)
        ));
        // Different hash, close fingerprint → warm.
        match cache.lookup(78, shape(), &[0.953, 2.0], true) {
            Lookup::Warm(s) => assert_eq!(s.hash, 77),
            other => panic!("expected warm, got {other:?}"),
        }
        // Too far → miss.
        assert!(matches!(
            cache.lookup(79, shape(), &[0.5, 2.0], true),
            Lookup::Miss
        ));
        // Different shape → miss even when the fingerprint matches.
        let other_shape = ShapeKey {
            dim: 3,
            ndofs: 1,
            num_states: 1,
        };
        assert!(matches!(
            cache.lookup(80, other_shape, &[0.95, 2.0], true),
            Lookup::Miss
        ));
        let stats = cache.stats();
        assert_eq!(
            (
                stats.entries,
                stats.exact_hits,
                stats.warm_hits,
                stats.misses
            ),
            (1, 1, 1, 2)
        );
    }

    #[test]
    fn warm_lookup_picks_the_nearest_neighbour() {
        let cache = SurfaceCache::new(0.2);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 0.0);
        cache.store_policy(1, shape(), vec![0.90], &policy, 5, 1e-8, 0.1);
        cache.store_policy(2, shape(), vec![0.96], &policy, 5, 1e-8, 0.1);
        cache.store_policy(3, shape(), vec![0.99], &policy, 5, 1e-8, 0.1);
        match cache.lookup(99, shape(), &[0.95], true) {
            Lookup::Warm(s) => assert_eq!(s.hash, 2),
            other => panic!("expected warm, got {other:?}"),
        }
    }

    #[test]
    fn equal_distance_ties_prefer_the_earliest_deposit() {
        // Hashes 10 and 26 land in the same shard (26 % 16 == 10), 11 in
        // another; all three sit at identical fingerprint distance from
        // the query. The winner must be the earliest deposit (seq order),
        // independent of shard layout or HashMap iteration order.
        let cache = SurfaceCache::new(0.2);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 0.0);
        cache.store_policy(26, shape(), vec![0.96], &policy, 5, 1e-8, 0.1);
        cache.store_policy(11, shape(), vec![0.96], &policy, 5, 1e-8, 0.2);
        cache.store_policy(10, shape(), vec![0.96], &policy, 5, 1e-8, 0.3);
        match cache.lookup(99, shape(), &[0.95], true) {
            Lookup::Warm(s) => assert_eq!(s.hash, 26, "earliest deposit wins ties"),
            other => panic!("expected warm, got {other:?}"),
        }
        assert_eq!(cache.estimated_cost(shape(), &[0.95]), Some(0.1));
    }

    #[test]
    fn cached_surface_restores_bitwise() {
        let cache = SurfaceCache::default();
        let domain = BoxDomain::new(vec![-1.0, 2.0], vec![1.0, 5.0]);
        let policy = linear_policy(&domain, 0.7, -0.3);
        cache.store_policy(5, shape(), vec![1.0], &policy, 3, 1e-9, 0.2);
        let Lookup::Exact(surface) = cache.lookup(5, shape(), &[1.0], true) else {
            panic!("expected exact hit");
        };
        let restored = surface.restore_policy();
        let mut oa = policy.oracle(KernelKind::X86);
        let mut ob = restored.oracle(KernelKind::X86);
        let mut a = [0.0];
        let mut b = [0.0];
        for probe in [[-0.5, 2.5], [0.0, 3.0], [0.9, 4.9]] {
            oa.eval(0, &probe, &mut a);
            ob.eval(0, &probe, &mut b);
            assert_eq!(a[0].to_bits(), b[0].to_bits(), "probe {probe:?}");
        }
    }

    #[test]
    fn projection_reproduces_the_surface_on_an_overlapping_box() {
        // Cached: linear surface on [0,1]². Target: the sub-box
        // [0.2,0.8]×[0.1,0.9]. A piecewise-linear interpolant of a linear
        // function is exact, so the projection must reproduce the
        // function on the whole target box.
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let cached = linear_policy(&domain, 2.0, -1.0);
        let projected =
            project_policy(&cached, &[0.2, 0.1], &[0.8, 0.9], 3, KernelKind::X86).unwrap();
        let mut oracle = projected.oracle(KernelKind::X86);
        let mut out = [0.0];
        for probe in [[0.25, 0.3], [0.5, 0.5], [0.75, 0.85]] {
            oracle.eval(0, &probe, &mut out);
            let want = 2.0 * probe[0] - probe[1];
            assert!(
                (out[0] - want).abs() < 1e-10,
                "probe {probe:?}: {} vs {want}",
                out[0]
            );
        }
    }

    #[test]
    fn exact_hash_collisions_are_demoted_to_misses() {
        // Same hash, incompatible shape or fingerprint: serving the entry
        // as an exact hit would restore an unusable surface. The lookup
        // must fall through instead of trusting the bare hash.
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);

        // Colliding hash with a different shape: miss, not exact.
        let other_shape = ShapeKey {
            dim: 3,
            ndofs: 1,
            num_states: 1,
        };
        assert!(matches!(
            cache.lookup(77, other_shape, &[0.95, 2.0], true),
            Lookup::Miss
        ));
        // Colliding hash with a far fingerprint: miss, not exact.
        assert!(matches!(
            cache.lookup(77, shape(), &[0.5, 2.0], true),
            Lookup::Miss
        ));
        // Colliding hash with a *near* (but unequal) fingerprint: the
        // shape-checked nearest-neighbour path may still serve it as a
        // warm start — never as exact.
        match cache.lookup(77, shape(), &[0.951, 2.0], true) {
            Lookup::Warm(s) => assert_eq!(s.hash, 77),
            other => panic!("expected warm, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.exact_hits, 0);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.misses, 2);

        // The genuine exact lookup still works.
        assert!(matches!(
            cache.lookup(77, shape(), &[0.95, 2.0], true),
            Lookup::Exact(_)
        ));
    }

    #[test]
    fn projection_rejects_incompatible_surfaces_without_panicking() {
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let cached = linear_policy(&domain, 1.0, 0.0);
        // Wrong target dimensionality: typed error, no assert.
        let err = project_policy(&cached, &[0.2], &[0.8], 3, KernelKind::X86).unwrap_err();
        assert_eq!(
            err,
            ProjectionError::DimensionMismatch {
                cached: 2,
                target_lo: 1,
                target_hi: 1
            }
        );
        // Mismatched lo/hi lengths are caught too (previously an assert
        // inside BoxDomain).
        let err = project_policy(&cached, &[0.2, 0.1], &[0.8], 3, KernelKind::X86).unwrap_err();
        assert!(matches!(err, ProjectionError::DimensionMismatch { .. }));
        // Both variants render a diagnostic.
        assert!(err.to_string().contains("dimension mismatch"));
        assert!(ProjectionError::EmptySurface
            .to_string()
            .contains("no discrete states"));
    }

    #[test]
    fn cost_feedback_returns_the_nearest_measured_cost() {
        let cache = SurfaceCache::new(0.2);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 0.0);
        assert_eq!(cache.estimated_cost(shape(), &[0.95]), None);
        cache.store_policy(1, shape(), vec![0.90], &policy, 5, 1e-8, 1.5);
        cache.store_policy(2, shape(), vec![0.96], &policy, 5, 1e-8, 2.5);
        assert_eq!(cache.estimated_cost(shape(), &[0.95]), Some(2.5));
        assert_eq!(cache.estimated_cost(shape(), &[0.90]), Some(1.5));
    }

    #[test]
    fn nearest_neighbour_peeks_without_touching_hit_telemetry() {
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);

        let near = cache.nearest_neighbour(shape(), &[0.951, 2.0]).unwrap();
        assert_eq!(near.hash, HashId(77));
        assert!(near.distance > 0.0 && near.distance <= 0.05);
        assert_eq!(near.cost_seconds, 0.5);
        // Out of radius / wrong shape → None.
        assert!(cache.nearest_neighbour(shape(), &[0.5, 2.0]).is_none());
        // The peek is invisible to the hit/miss counters.
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.warm_hits, stats.misses), (0, 0, 0));
    }

    #[test]
    fn lookup_exact_probe_counts_hits_but_never_misses() {
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);

        // Probe misses (unknown hash, colliding fingerprint) count
        // nothing: the enqueued solve's own lookup will account for them.
        assert!(cache.lookup_exact(99, shape(), &[0.95, 2.0]).is_none());
        assert!(cache.lookup_exact(77, shape(), &[0.5, 2.0]).is_none());
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.misses), (0, 0));

        // A probe hit counts as an exact hit, like the full lookup.
        let surface = cache.lookup_exact(77, shape(), &[0.95, 2.0]).unwrap();
        assert_eq!(surface.hash, 77);
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.misses), (1, 0));
    }

    #[test]
    fn clones_share_entries_and_telemetry() {
        let cache = SurfaceCache::new(0.05);
        let clone = cache.clone();
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(7, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);
        assert!(matches!(
            clone.lookup(7, shape(), &[0.95, 2.0], false),
            Lookup::Exact(_)
        ));
        assert_eq!(cache.stats().exact_hits, 1);
        assert_eq!(clone.stats().entries, 1);
    }

    #[test]
    fn poisoned_shard_locks_are_recovered_and_counted() {
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);

        // Panic while holding the write lock of hash 77's shard — the
        // cross-thread situation a crashing sweep thread creates.
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.shards[shard_of(77)].write().unwrap();
            panic!("poison the shard");
        })
        .join();

        // Every path over the poisoned shard still works…
        assert!(matches!(
            cache.lookup(77, shape(), &[0.95, 2.0], true),
            Lookup::Exact(_)
        ));
        cache.store_policy(77 + 16, shape(), vec![0.96, 2.0], &policy, 9, 1e-8, 0.5);
        assert_eq!(cache.stats().entries, 2);
        // …and the recovery is visible in the telemetry.
        assert!(
            cache.stats().lock_poisonings >= 1,
            "poisoning recovery must be counted"
        );
    }

    #[test]
    fn stats_and_registry_snapshot_agree_bit_for_bit() {
        let cache = SurfaceCache::new(0.05);
        let domain = BoxDomain::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let policy = linear_policy(&domain, 1.0, 2.0);
        cache.store_policy(77, shape(), vec![0.95, 2.0], &policy, 9, 1e-8, 0.5);
        // Traffic over every counter class: exact, warm, miss.
        let _ = cache.lookup(77, shape(), &[0.95, 2.0], true);
        let _ = cache.lookup(78, shape(), &[0.953, 2.0], true);
        let _ = cache.lookup(79, shape(), &[0.5, 2.0], true);

        let stats = cache.stats();
        let snap = cache.registry().snapshot();
        let counter = |name: &str| {
            snap.counter(name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let gauge = |name: &str| snap.gauge(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(
            stats.exact_hits as u64,
            counter("hddm_cache_exact_hits_total")
        );
        assert_eq!(
            stats.warm_hits as u64,
            counter("hddm_cache_warm_hits_total")
        );
        assert_eq!(stats.misses as u64, counter("hddm_cache_misses_total"));
        assert_eq!(
            stats.disk_hits as u64,
            counter("hddm_cache_disk_hits_total")
        );
        assert_eq!(stats.entries as u64, gauge("hddm_cache_entries"));
        assert_eq!(
            stats.persisted_entries as u64,
            gauge("hddm_cache_persisted_entries")
        );
        assert_eq!(stats.persisted_bytes, gauge("hddm_cache_persisted_bytes"));
        assert_eq!(stats.evictions as u64, gauge("hddm_cache_evictions"));
        assert_eq!(stats.skipped as u64, gauge("hddm_cache_skipped"));
        assert_eq!(
            stats.lock_poisonings as u64,
            gauge("hddm_cache_lock_poisonings")
        );
        assert_eq!(
            stats.concurrent_restores_peak as u64,
            gauge("hddm_cache_concurrent_restores_peak")
        );
        // Deposits were timed.
        let deposit = snap.histogram("hddm_cache_deposit_seconds").unwrap();
        assert_eq!(deposit.count, 1);
        // Separate caches own separate registries: no cross-talk.
        let other = SurfaceCache::default();
        assert_eq!(
            other
                .registry()
                .snapshot()
                .counter("hddm_cache_misses_total"),
            Some(0)
        );
    }
}
